//! Property-based equivalence: the two execution modes (paper §4) and the
//! tuple-at-a-time baseline must agree on randomized streams, and factory
//! results must not depend on how arrivals are batched.

use datacell::engine::{DataCell, ExecutionMode};
use datacell::{Row, Value};
use datacell_baseline::VolcanoEngine;
use proptest::prelude::*;

fn stream_rows(keys: &[i64], vals: &[i64]) -> Vec<Row> {
    keys.iter()
        .zip(vals)
        .map(|(&k, &v)| vec![Value::Int(k), Value::Int(v)])
        .collect()
}

fn run_datacell(
    sql: &str,
    rows: &[Row],
    mode: ExecutionMode,
    batch: usize,
) -> Vec<Vec<String>> {
    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (k BIGINT, v BIGINT)").unwrap();
    let q = cell.register_query_with_mode(sql, mode).unwrap();
    let mut out = Vec::new();
    for chunk_rows in rows.chunks(batch.max(1)) {
        cell.push_rows("s", chunk_rows).unwrap();
        cell.run_until_idle().unwrap();
        for c in cell.take_results(q).unwrap() {
            let mut batch_rows: Vec<String> = c
                .rows()
                .map(|r| r.iter().map(Value::to_string).collect::<Vec<_>>().join("|"))
                .collect();
            batch_rows.sort();
            out.push(batch_rows.join(";"));
        }
    }
    vec![out]
}

fn run_volcano(sql: &str, rows: &[Row], batch: usize) -> Vec<Vec<String>> {
    let mut engine = VolcanoEngine::new();
    engine.execute("CREATE STREAM s (k BIGINT, v BIGINT)").unwrap();
    let q = engine.register_query(sql).unwrap();
    let mut out = Vec::new();
    for chunk_rows in rows.chunks(batch.max(1)) {
        engine.push_rows("s", chunk_rows).unwrap();
        engine.run_until_idle().unwrap();
        for batch_result in engine.take_results(q) {
            let mut batch_rows: Vec<String> = batch_result
                .iter()
                .map(|r| r.iter().map(Value::to_string).collect::<Vec<_>>().join("|"))
                .collect();
            batch_rows.sort();
            out.push(batch_rows.join(";"));
        }
    }
    vec![out]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental mode must equal full re-evaluation on random streams
    /// (modulo the leading slides where the first window is still filling).
    #[test]
    fn modes_equivalent_on_random_streams(
        keys in prop::collection::vec(0i64..5, 40..160),
        seed in 0u64..1000,
    ) {
        let vals: Vec<i64> = keys.iter().enumerate()
            .map(|(i, k)| (seed as i64).wrapping_mul(31).wrapping_add(i as i64 * 7 + k))
            .collect();
        let rows = stream_rows(&keys, &vals);
        let sql = "SELECT k, SUM(v), COUNT(*), MIN(v), MAX(v) \
                   FROM s [ROWS 16 SLIDE 4] GROUP BY k";
        let reeval = run_datacell(sql, &rows, ExecutionMode::Reevaluate, 16);
        let incr = run_datacell(sql, &rows, ExecutionMode::Incremental, 16);
        let r = &reeval[0];
        let i = &incr[0];
        prop_assert!(r.len() >= i.len());
        let offset = r.len() - i.len();
        for (a, b) in r[offset..].iter().zip(i) {
            prop_assert_eq!(a, b);
        }
    }

    /// Results must be independent of arrival batching (the scheduler may
    /// fire after 1 tuple or after 50 — windows are defined by content).
    #[test]
    fn results_independent_of_batching(
        keys in prop::collection::vec(0i64..4, 30..120),
        batch_a in 1usize..8,
        batch_b in 8usize..40,
    ) {
        let vals: Vec<i64> = keys.iter().map(|k| k * 10 + 1).collect();
        let rows = stream_rows(&keys, &vals);
        let sql = "SELECT COUNT(*), SUM(v) FROM s [ROWS 12 SLIDE 3]";
        let a = run_datacell(sql, &rows, ExecutionMode::Incremental, batch_a);
        let b = run_datacell(sql, &rows, ExecutionMode::Incremental, batch_b);
        prop_assert_eq!(&a[0], &b[0]);
    }

    /// The tuple-at-a-time Volcano engine must agree with DataCell on the
    /// same SQL and the same arrival order.
    #[test]
    fn volcano_baseline_agrees(
        keys in prop::collection::vec(0i64..3, 24..96),
    ) {
        let vals: Vec<i64> = keys.iter().enumerate().map(|(i, k)| i as i64 + k).collect();
        let rows = stream_rows(&keys, &vals);
        let sql = "SELECT k, SUM(v), COUNT(*) FROM s [ROWS 8 SLIDE 2] GROUP BY k";
        let dc = run_datacell(sql, &rows, ExecutionMode::Reevaluate, 8);
        let vo = run_volcano(sql, &rows, 8);
        prop_assert_eq!(&dc[0], &vo[0]);
    }

    /// Unwindowed consume-once semantics: concatenated outputs are a
    /// partition of the input regardless of batching.
    #[test]
    fn consume_once_partitions_input(
        vals in prop::collection::vec(-100i64..100, 1..200),
        batch in 1usize..32,
    ) {
        let rows: Vec<Row> = vals.iter().map(|&v| vec![Value::Int(0), Value::Int(v)]).collect();
        let mut cell = DataCell::default();
        cell.execute("CREATE STREAM s (k BIGINT, v BIGINT)").unwrap();
        let q = cell.register_query("SELECT COUNT(*), SUM(v) FROM s").unwrap();
        let mut count = 0i64;
        let mut sum = 0i64;
        for chunk_rows in rows.chunks(batch) {
            cell.push_rows("s", chunk_rows).unwrap();
            cell.run_until_idle().unwrap();
            for c in cell.take_results(q).unwrap() {
                count += c.row(0)[0].as_int().unwrap();
                sum += c.row(0)[1].as_int().unwrap_or(0);
            }
        }
        prop_assert_eq!(count, vals.len() as i64);
        prop_assert_eq!(sum, vals.iter().sum::<i64>());
    }
}
