//! Restart-equivalence: killing a durable engine mid-stream and reopening
//! it from disk must leave the emitted chunk stream a **byte-identical
//! continuation** of an uninterrupted run — exactly-once across restart,
//! no window fire duplicated or skipped.
//!
//! Method: one scenario (DDL + continuous queries + a batch schedule) is
//! executed twice. The reference run feeds every batch into one engine.
//! The crash run feeds `cut` batches, *drops* the engine without a
//! checkpoint (process-crash semantics: the WAL tail is all that
//! survives), reopens from the same directory, subscribes afresh and
//! feeds the rest. Per query, `pre-crash chunks ++ post-crash chunks`
//! must equal the reference chunks — compared both structurally and by
//! their wire (`CHUNK` frame) encoding.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use datacell::engine::{DataCell, DataCellConfig, QueryId, SyncPolicy, WalConfig};
use datacell::server::protocol::encode_chunk;
use datacell::storage::{Chunk, Row, Value};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("datacell-recovery-{}-{n}", std::process::id()))
}

fn durable_config(dir: &PathBuf) -> DataCellConfig {
    DataCellConfig {
        wal: Some(WalConfig { dir: dir.clone(), sync: SyncPolicy::Never, ..WalConfig::at(dir) }),
        ..DataCellConfig::default()
    }
}

/// One test scenario: setup DDL, continuous queries, and a batch schedule
/// of `(stream, rows)` pushes.
struct Scenario {
    setup: Vec<&'static str>,
    queries: Vec<&'static str>,
    batches: Vec<(&'static str, Vec<Row>)>,
}

fn row2(a: i64, b: i64) -> Row {
    vec![Value::Int(a), Value::Int(b)]
}

fn row3(a: i64, b: i64, c: i64) -> Row {
    vec![Value::Int(a), Value::Int(b), Value::Int(c)]
}

/// Feed `batches[from..to]`, draining each query's chunks after every
/// batch (subscription-order delivery).
fn feed(
    cell: &mut DataCell,
    qids: &[QueryId],
    batches: &[(&str, Vec<Row>)],
    out: &mut [Vec<Chunk>],
) {
    for (stream, rows) in batches {
        cell.push_rows(stream, rows).unwrap();
        cell.run_until_idle().unwrap();
        for (qi, qid) in qids.iter().enumerate() {
            out[qi].extend(cell.take_results(*qid).unwrap());
        }
    }
}

/// Run the scenario uninterrupted (in-memory engine) → reference chunks.
fn reference_run(s: &Scenario, mode: datacell::engine::ExecutionMode) -> Vec<Vec<Chunk>> {
    let mut cell = DataCell::new(DataCellConfig { default_mode: mode, ..Default::default() });
    for ddl in &s.setup {
        cell.execute(ddl).unwrap();
    }
    let qids: Vec<QueryId> =
        s.queries.iter().map(|q| cell.register_query(q).unwrap()).collect();
    let mut out = vec![Vec::new(); qids.len()];
    feed(&mut cell, &qids, &s.batches, &mut out);
    out
}

/// Run the scenario with a crash after `cut` batches → concatenated
/// pre/post chunks per query.
fn crash_run(
    s: &Scenario,
    mode: datacell::engine::ExecutionMode,
    cut: usize,
) -> Vec<Vec<Chunk>> {
    let dir = tmpdir();
    let config =
        DataCellConfig { default_mode: mode, ..durable_config(&dir) };

    let mut out;
    let qids: Vec<QueryId>;
    {
        let mut cell = DataCell::open(config.clone()).unwrap();
        assert!(!cell.recovered(), "fresh WAL dir must not report recovery");
        for ddl in &s.setup {
            cell.execute(ddl).unwrap();
        }
        qids = s.queries.iter().map(|q| cell.register_query(q).unwrap()).collect();
        out = vec![Vec::new(); qids.len()];
        feed(&mut cell, &qids, &s.batches[..cut], &mut out);
        // Crash: drop without checkpoint. Only the WAL tail survives.
        drop(cell);
    }
    {
        let mut cell = DataCell::open(config).unwrap();
        assert!(cell.recovered(), "reopen must recover prior state");
        // Query ids survive the restart.
        assert_eq!(cell.query_ids(), qids);
        feed(&mut cell, &qids, &s.batches[cut..], &mut out);
    }
    std::fs::remove_dir_all(&dir).ok();
    out
}

/// Assert byte-identical chunk streams (structural + wire encoding).
fn assert_continuation(reference: &[Vec<Chunk>], crashed: &[Vec<Chunk>], ctx: &str) {
    for (qi, (want, got)) in reference.iter().zip(crashed).enumerate() {
        assert_eq!(
            want.len(),
            got.len(),
            "{ctx}: query #{qi} chunk count (reference {} vs restart {})",
            want.len(),
            got.len()
        );
        for (ci, (w, g)) in want.iter().zip(got).enumerate() {
            assert_eq!(w, g, "{ctx}: query #{qi} chunk {ci} differs structurally");
            assert_eq!(
                encode_chunk(qi as u64 + 1, ci as u64 + 1, w),
                encode_chunk(qi as u64 + 1, ci as u64 + 1, g),
                "{ctx}: query #{qi} chunk {ci} differs on the wire"
            );
        }
    }
}

/// Crash at every possible batch boundary; both execution modes.
fn check_all_cuts(s: &Scenario) {
    for mode in [
        datacell::engine::ExecutionMode::Reevaluate,
        datacell::engine::ExecutionMode::Incremental,
    ] {
        let reference = reference_run(s, mode);
        for cut in 1..s.batches.len() {
            let crashed = crash_run(s, mode, cut);
            assert_continuation(&reference, &crashed, &format!("{mode:?} cut={cut}"));
        }
    }
}

#[test]
fn windowed_aggregate_survives_restart_at_every_cut() {
    let batches = (0..8)
        .map(|i| {
            let base = i * 3;
            ("s", (0..3).map(|j| row2(base + j, (base + j) * 10)).collect())
        })
        .collect();
    check_all_cuts(&Scenario {
        setup: vec!["CREATE STREAM s (ts BIGINT, v BIGINT)"],
        queries: vec!["SELECT COUNT(*), SUM(v), AVG(v) FROM s [ROWS 6 SLIDE 2]"],
        batches,
    });
}

#[test]
fn grouped_window_with_dimension_table_survives_restart() {
    let batches = (0..6)
        .map(|i| {
            let base = i * 4;
            ("s", (0..4).map(|j| row3(base + j, (base + j) % 3, (base + j) * 2)).collect())
        })
        .collect();
    check_all_cuts(&Scenario {
        setup: vec![
            "CREATE STREAM s (ts BIGINT, k BIGINT, v BIGINT)",
            "CREATE TABLE dim (k BIGINT, w BIGINT)",
            "INSERT INTO dim VALUES (0, 100), (1, 200), (2, 300)",
        ],
        queries: vec![
            "SELECT k, COUNT(*), SUM(v) FROM s [ROWS 8 SLIDE 4] GROUP BY k",
            "SELECT COUNT(*) FROM s",
        ],
        batches,
    });
}

#[test]
fn range_window_survives_restart() {
    // Timestamps advance 2 per tuple so RANGE boundaries land mid-batch.
    let batches = (0..6)
        .map(|i| {
            let base = i * 3;
            ("s", (0..3).map(|j| row2((base + j) * 2, base + j)).collect())
        })
        .collect();
    check_all_cuts(&Scenario {
        setup: vec!["CREATE STREAM s (ts BIGINT, v BIGINT)"],
        queries: vec!["SELECT COUNT(*), SUM(v) FROM s [RANGE 8 ON ts SLIDE 4]"],
        batches,
    });
}

#[test]
fn windowed_stream_join_survives_restart() {
    let mut batches: Vec<(&str, Vec<Row>)> = Vec::new();
    for i in 0..5i64 {
        let base = i * 2;
        batches.push(("l", (0..2).map(|j| row2(base + j, base + j)).collect()));
        batches.push(("r", (0..2).map(|j| row2(base + j, (base + j) * 7)).collect()));
    }
    check_all_cuts(&Scenario {
        setup: vec![
            "CREATE STREAM l (k BIGINT, a BIGINT)",
            "CREATE STREAM r (k BIGINT, b BIGINT)",
        ],
        queries: vec![
            "SELECT COUNT(*), SUM(l.a + r.b) FROM l [ROWS 4 SLIDE 2], r [ROWS 4 SLIDE 2] \
             WHERE l.k = r.k",
        ],
        batches,
    });
}

#[test]
fn double_crash_still_continues_exactly() {
    // Two consecutive crashes (recover → run → crash again → recover).
    let s = Scenario {
        setup: vec!["CREATE STREAM s (ts BIGINT, v BIGINT)"],
        queries: vec!["SELECT COUNT(*), SUM(v) FROM s [ROWS 4 SLIDE 2]"],
        batches: (0..9).map(|i| ("s", vec![row2(i, i * 5), row2(i + 100, i)])).collect(),
    };
    let mode = datacell::engine::ExecutionMode::Incremental;
    let reference = reference_run(&s, mode);

    let dir = tmpdir();
    let config = DataCellConfig { default_mode: mode, ..durable_config(&dir) };
    let mut out = vec![Vec::new()];
    let qids: Vec<QueryId> = {
        let mut cell = DataCell::open(config.clone()).unwrap();
        for ddl in &s.setup {
            cell.execute(ddl).unwrap();
        }
        let qids: Vec<QueryId> =
            s.queries.iter().map(|q| cell.register_query(q).unwrap()).collect();
        feed(&mut cell, &qids, &s.batches[..3], &mut out);
        qids
    };
    {
        let mut cell = DataCell::open(config.clone()).unwrap();
        assert!(cell.recovered());
        feed(&mut cell, &qids, &s.batches[3..6], &mut out);
    }
    {
        let mut cell = DataCell::open(config).unwrap();
        assert!(cell.recovered());
        feed(&mut cell, &qids, &s.batches[6..], &mut out);
    }
    assert_continuation(&reference, &out, "double crash");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_then_crash_recovers_from_snapshot_plus_tail() {
    // A graceful checkpoint mid-run compacts the meta log; subsequent
    // batches land only in the logs. Recovery must stitch both together.
    let s = Scenario {
        setup: vec!["CREATE STREAM s (ts BIGINT, v BIGINT)"],
        queries: vec!["SELECT COUNT(*), SUM(v) FROM s [ROWS 4 SLIDE 2]"],
        batches: (0..8).map(|i| ("s", vec![row2(i, i * 3), row2(i + 50, i)])).collect(),
    };
    let mode = datacell::engine::ExecutionMode::Incremental;
    let reference = reference_run(&s, mode);

    let dir = tmpdir();
    let config = DataCellConfig { default_mode: mode, ..durable_config(&dir) };
    let mut out = vec![Vec::new()];
    let qids: Vec<QueryId> = {
        let mut cell = DataCell::open(config.clone()).unwrap();
        for ddl in &s.setup {
            cell.execute(ddl).unwrap();
        }
        let qids: Vec<QueryId> =
            s.queries.iter().map(|q| cell.register_query(q).unwrap()).collect();
        feed(&mut cell, &qids, &s.batches[..2], &mut out);
        cell.checkpoint().unwrap();
        assert_eq!(cell.wal_stats().unwrap().snapshots, 1);
        feed(&mut cell, &qids, &s.batches[2..5], &mut out);
        qids
    };
    {
        let mut cell = DataCell::open(config).unwrap();
        assert!(cell.recovered());
        feed(&mut cell, &qids, &s.batches[5..], &mut out);
    }
    assert_continuation(&reference, &out, "checkpoint + tail");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_checkpoint_between_rename_and_reset_is_recoverable() {
    // The nastiest checkpoint crash window: snapshot.bin was renamed into
    // place but the meta log was NOT yet reset — the stale pre-snapshot
    // records (DDL included) are still there, terminated by the
    // checkpoint marker. Recovery must skip through the marker instead of
    // re-applying the DDL (which would collide with the snapshot's
    // catalog and brick the directory).
    let dir = tmpdir();
    let config = durable_config(&dir);
    {
        let mut cell = DataCell::open(config.clone()).unwrap();
        cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
        cell.execute("CREATE TABLE dim (k BIGINT)").unwrap();
        cell.execute("INSERT INTO dim VALUES (7)").unwrap();
        cell.register_query("SELECT COUNT(*) FROM s [ROWS 2 SLIDE 2]").unwrap();
        cell.push_rows("s", &[row2(1, 1), row2(2, 2)]).unwrap();
        cell.run_until_idle().unwrap();
    }
    // Capture the pre-checkpoint meta log, then checkpoint (epoch 1).
    let meta_path = dir.join("meta.log");
    let stale = std::fs::read(&meta_path).unwrap();
    {
        let mut cell = DataCell::open(config.clone()).unwrap();
        cell.checkpoint().unwrap();
    }
    // Rebuild the torn state: stale records + the epoch-1 marker, with
    // the epoch-1 snapshot in place (exactly what a crash between the
    // rename and the reset leaves behind).
    let mut torn = stale;
    let mut marker = vec![10u8]; // MetaRecord::Checkpoint tag
    marker.extend_from_slice(&1u64.to_le_bytes());
    datacell::wal::frame::write_record(&mut torn, &marker).unwrap();
    std::fs::write(&meta_path, &torn).unwrap();

    let mut cell = DataCell::open(config).unwrap();
    assert!(cell.recovered());
    let stats = cell.stats();
    assert_eq!(stats.baskets.len(), 1, "stream must exist exactly once");
    assert_eq!(stats.baskets[0].arrived, 2);
    assert_eq!(cell.query_ids().len(), 1);
    // The table insert was not double-applied.
    if let datacell::engine::ExecOutcome::Rows { chunk, .. } =
        cell.execute("SELECT COUNT(*) FROM dim").unwrap()
    {
        assert_eq!(chunk.row(0), vec![Value::Int(1)]);
    } else {
        panic!("expected rows");
    }
    // And the engine keeps working (next checkpoint uses a fresh epoch).
    cell.push_rows("s", &[row2(3, 3), row2(4, 4)]).unwrap();
    cell.run_until_idle().unwrap();
    cell.checkpoint().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auto_checkpoint_bounds_the_meta_log_and_stays_exact() {
    // A tiny checkpoint threshold forces a snapshot on virtually every
    // scheduler pass; the emitted stream must remain byte-identical and
    // the meta log must keep shrinking back (bounded recovery).
    let s = Scenario {
        setup: vec!["CREATE STREAM s (ts BIGINT, v BIGINT)"],
        queries: vec!["SELECT COUNT(*), SUM(v) FROM s [ROWS 4 SLIDE 2]"],
        batches: (0..8).map(|i| ("s", vec![row2(i, i * 2), row2(i + 9, i)])).collect(),
    };
    let mode = datacell::engine::ExecutionMode::Incremental;
    let reference = reference_run(&s, mode);

    let dir = tmpdir();
    let mut config = DataCellConfig { default_mode: mode, ..durable_config(&dir) };
    if let Some(wal) = &mut config.wal {
        wal.checkpoint_meta_bytes = Some(1);
    }
    let mut out = vec![Vec::new()];
    let qids: Vec<QueryId> = {
        let mut cell = DataCell::open(config.clone()).unwrap();
        for ddl in &s.setup {
            cell.execute(ddl).unwrap();
        }
        let qids: Vec<QueryId> =
            s.queries.iter().map(|q| cell.register_query(q).unwrap()).collect();
        feed(&mut cell, &qids, &s.batches[..5], &mut out);
        assert!(
            cell.wal_stats().unwrap().snapshots >= 4,
            "tiny threshold must have auto-checkpointed repeatedly"
        );
        qids
    };
    {
        let mut cell = DataCell::open(config).unwrap();
        assert!(cell.recovered());
        feed(&mut cell, &qids, &s.batches[5..], &mut out);
    }
    assert_continuation(&reference, &out, "auto checkpoint");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lost_stream_log_tail_fails_loudly_instead_of_emitting_wrong_windows() {
    // If the stream log loses batches that fire records already consumed
    // (e.g. a damaged tail under the WAL's truncate-to-valid-prefix
    // policy), recovery must refuse — silently rebuilding windows from
    // clamped slices would emit wrong results with no error.
    let dir = tmpdir();
    let config = DataCellConfig {
        default_mode: datacell::engine::ExecutionMode::Incremental,
        ..durable_config(&dir)
    };
    {
        let mut cell = DataCell::open(config.clone()).unwrap();
        cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
        cell.register_query("SELECT COUNT(*), SUM(v) FROM s [ROWS 2 SLIDE 2]").unwrap();
        for i in 0..4 {
            cell.push_rows("s", &[row2(i, i)]).unwrap();
            cell.run_until_idle().unwrap();
        }
    }
    // Drop the newest stream-log batches (keep the meta log intact): the
    // recovered basket now ends before the cursor's consumed position.
    let seg_dir = dir.join("streams/s");
    let mut segs: Vec<_> = std::fs::read_dir(&seg_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    segs.sort();
    let seg = segs.last().unwrap();
    let len = std::fs::metadata(seg).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(seg)
        .unwrap()
        .set_len(len / 2)
        .unwrap();

    let msg = match DataCell::open(config) {
        Ok(_) => panic!("recovery over a lost log tail must fail"),
        Err(e) => e.to_string(),
    };
    assert!(
        msg.contains("lost its log tail") || msg.contains("outside recovered stream"),
        "expected a loud recovery refusal, got: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovered_stats_continue_lifetime_counters() {
    let dir = tmpdir();
    let config = durable_config(&dir);
    {
        let mut cell = DataCell::open(config.clone()).unwrap();
        cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
        cell.register_query("SELECT COUNT(*) FROM s [ROWS 4 SLIDE 4]").unwrap();
        for i in 0..10 {
            cell.push_rows("s", &[row2(i, i)]).unwrap();
            cell.run_until_idle().unwrap();
        }
        let stats = cell.stats();
        assert_eq!(stats.baskets[0].arrived, 10);
        assert!(stats.wal.as_ref().unwrap().appended_batches >= 10);
    }
    let cell = DataCell::open(config).unwrap();
    let stats = cell.stats();
    assert_eq!(stats.baskets[0].arrived, 10, "arrived counter must survive restart");
    assert!(stats.wal.as_ref().unwrap().recovered_rows > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rejected_push_chunk_leaves_no_phantom_wal_batch() {
    // A mistyped chunk on the bulk path must fail *before* it is logged:
    // a phantom record would advance the log's OID chain and truncate
    // every later (real) batch at recovery.
    use datacell::storage::{Bat, Chunk};
    let dir = tmpdir();
    let config = durable_config(&dir);
    {
        let mut cell = DataCell::open(config.clone()).unwrap();
        cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
        let bad = Chunk::new(vec![
            Bat::from_ints(vec![1]),
            Bat::from_vector(vec![Value::Str("not an int".into())].into_iter().fold(
                datacell::storage::Vector::new(datacell::storage::DataType::Str),
                |mut v, x| {
                    v.push(&x).unwrap();
                    v
                },
            ), 0),
        ])
        .unwrap();
        assert!(cell.push_chunk("s", &bad).is_err(), "mistyped chunk must be rejected");
        // Real data before and after still lands and survives restart.
        cell.push_rows("s", &[row2(1, 10), row2(2, 20)]).unwrap();
        let good = Chunk::new(vec![Bat::from_ints(vec![3]), Bat::from_ints(vec![30])]).unwrap();
        assert_eq!(cell.push_chunk("s", &good).unwrap(), 1);
    }
    let cell = DataCell::open(config).unwrap();
    assert_eq!(cell.stats().baskets[0].arrived, 3, "no batch lost to a phantom record");
    assert_eq!(cell.stats().wal.as_ref().unwrap().dropped_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pause_flags_and_deregistration_survive_restart() {
    let dir = tmpdir();
    let config = durable_config(&dir);
    let (_q1, q2) = {
        let mut cell = DataCell::open(config.clone()).unwrap();
        cell.execute("CREATE STREAM s (ts BIGINT, v BIGINT)").unwrap();
        cell.execute("CREATE STREAM dead (x BIGINT)").unwrap();
        cell.execute("DROP STREAM dead").unwrap();
        let q1 = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
        let q2 = cell.register_query("SELECT SUM(v) FROM s").unwrap();
        cell.deregister_query(q1).unwrap();
        cell.set_query_paused(q2, true).unwrap();
        cell.set_stream_paused("s", true).unwrap();
        (q1, q2)
    };
    let mut cell = DataCell::open(config).unwrap();
    assert!(cell.recovered());
    assert_eq!(cell.query_ids(), vec![q2]);
    assert!(cell.stats().queries[0].paused);
    assert!(cell.stats().baskets[0].paused);
    assert!(cell.basket("dead").is_err());
    // A new registration continues the qid sequence past the dead q1.
    let q3 = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    assert!(q3 > q2);
    std::fs::remove_dir_all(&dir).ok();
}
