//! SQL surface coverage through the facade: every construct the demo
//! scenarios rely on must parse, bind, and execute.

use datacell::engine::{DataCell, ExecOutcome};
use datacell::{Row, Value};

fn cell_with_data() -> DataCell {
    let mut cell = DataCell::default();
    cell.execute_script(
        "CREATE TABLE t (k BIGINT, v DOUBLE, tag VARCHAR, flag BOOLEAN);\
         INSERT INTO t VALUES (1, 1.5, 'a', TRUE), (2, 2.5, 'b', FALSE),\
                              (3, NULL, 'a', TRUE), (4, 4.5, NULL, FALSE);",
    )
    .unwrap();
    cell
}

fn rows_of(cell: &mut DataCell, sql: &str) -> Vec<Row> {
    match cell.execute(sql).unwrap() {
        ExecOutcome::Rows { chunk, .. } => chunk.rows().collect(),
        other => panic!("expected rows for {sql}, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_aliases() {
    let mut cell = cell_with_data();
    let rows = rows_of(&mut cell, "SELECT k * 2 + 1 AS x, v / 2 FROM t WHERE k <= 2");
    assert_eq!(rows[0], vec![Value::Int(3), Value::Float(0.75)]);
    assert_eq!(rows[1], vec![Value::Int(5), Value::Float(1.25)]);
}

#[test]
fn null_handling_in_predicates_and_aggregates() {
    let mut cell = cell_with_data();
    let rows = rows_of(&mut cell, "SELECT COUNT(*), COUNT(v), SUM(v), AVG(v) FROM t");
    // COUNT(*)=4, COUNT(v)=3 (one NULL), SUM skips NULL, AVG over 3
    assert_eq!(rows[0][0], Value::Int(4));
    assert_eq!(rows[0][1], Value::Int(3));
    assert_eq!(rows[0][2], Value::Float(8.5));
    let rows = rows_of(&mut cell, "SELECT k FROM t WHERE v IS NULL");
    assert_eq!(rows, vec![vec![Value::Int(3)]]);
    let rows = rows_of(&mut cell, "SELECT k FROM t WHERE tag IS NOT NULL ORDER BY k");
    assert_eq!(rows.len(), 3);
}

#[test]
fn between_and_boolean_logic() {
    let mut cell = cell_with_data();
    let rows = rows_of(&mut cell, "SELECT k FROM t WHERE k BETWEEN 2 AND 3 ORDER BY k");
    assert_eq!(rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
    let rows = rows_of(
        &mut cell,
        "SELECT k FROM t WHERE NOT (k = 2) AND (flag = TRUE OR v > 4.0) ORDER BY k",
    );
    assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)], vec![Value::Int(4)]]);
}

#[test]
fn string_predicates() {
    let mut cell = cell_with_data();
    let rows = rows_of(&mut cell, "SELECT k FROM t WHERE tag = 'a' ORDER BY k");
    assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    let rows = rows_of(&mut cell, "SELECT MIN(tag), MAX(tag) FROM t");
    assert_eq!(rows[0], vec![Value::Str("a".into()), Value::Str("b".into())]);
}

#[test]
fn group_by_expression_and_having() {
    let mut cell = cell_with_data();
    let rows = rows_of(
        &mut cell,
        "SELECT k % 2, COUNT(*) FROM t GROUP BY k % 2 HAVING COUNT(*) >= 2 ORDER BY k % 2",
    );
    assert_eq!(rows, vec![
        vec![Value::Int(0), Value::Int(2)],
        vec![Value::Int(1), Value::Int(2)],
    ]);
}

#[test]
fn order_by_multiple_keys_and_limit() {
    let mut cell = cell_with_data();
    let rows = rows_of(
        &mut cell,
        "SELECT flag, k FROM t ORDER BY flag DESC, k DESC LIMIT 3",
    );
    assert_eq!(rows[0], vec![Value::Bool(true), Value::Int(3)]);
    assert_eq!(rows[1], vec![Value::Bool(true), Value::Int(1)]);
    assert_eq!(rows[2], vec![Value::Bool(false), Value::Int(4)]);
}

#[test]
fn distinct_rows() {
    let mut cell = cell_with_data();
    let rows = rows_of(&mut cell, "SELECT DISTINCT flag FROM t ORDER BY flag");
    assert_eq!(rows, vec![vec![Value::Bool(false)], vec![Value::Bool(true)]]);
}

#[test]
fn self_join_via_aliases() {
    let mut cell = cell_with_data();
    let rows = rows_of(
        &mut cell,
        "SELECT a.k, b.k FROM t AS a JOIN t AS b ON a.k = b.k WHERE a.flag = TRUE ORDER BY a.k",
    );
    assert_eq!(rows, vec![
        vec![Value::Int(1), Value::Int(1)],
        vec![Value::Int(3), Value::Int(3)],
    ]);
}

#[test]
fn aggregate_expression_post_processing() {
    let mut cell = cell_with_data();
    let rows = rows_of(&mut cell, "SELECT SUM(k) * 10, MAX(k) - MIN(k) FROM t");
    assert_eq!(rows[0], vec![Value::Int(100), Value::Int(3)]);
}

#[test]
fn varchar_length_and_type_synonyms() {
    let mut cell = DataCell::default();
    cell.execute("CREATE TABLE x (a INT, b INTEGER, c FLOAT, d TEXT, e VARCHAR(12))")
        .unwrap();
    cell.execute("INSERT INTO x VALUES (1, 2, 3.0, 'd', 'e')").unwrap();
    let rows = rows_of(&mut cell, "SELECT a + b, c, d, e FROM x");
    assert_eq!(rows[0][0], Value::Int(3));
}

#[test]
fn comments_and_semicolons() {
    let mut cell = DataCell::default();
    cell.execute("CREATE TABLE c (v BIGINT) -- trailing comment").unwrap();
    cell.execute("INSERT INTO c VALUES (7);").unwrap();
    let rows = rows_of(&mut cell, "SELECT v FROM c;");
    assert_eq!(rows[0][0], Value::Int(7));
}

#[test]
fn division_by_zero_yields_null() {
    let mut cell = cell_with_data();
    let rows = rows_of(&mut cell, "SELECT k / (k - k) FROM t WHERE k = 1");
    assert_eq!(rows[0][0], Value::Null);
}

#[test]
fn explain_sql_without_registering() {
    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (v BIGINT)").unwrap();
    let text = cell
        .explain_sql("SELECT COUNT(*) FROM s [ROWS 10 SLIDE 5]")
        .unwrap();
    assert!(text.contains("StreamScan"), "{text}");
    assert!(text.contains("incremental split"), "{text}");
}
