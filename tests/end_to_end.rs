//! Cross-crate end-to-end tests through the public `datacell` facade:
//! SQL in, results out, across both query paradigms.

use datacell::engine::{DataCell, ExecOutcome, ExecutionMode};
use datacell::{Row, Value};

fn outcome_rows(out: ExecOutcome) -> Vec<Row> {
    match out {
        ExecOutcome::Rows { chunk, .. } => chunk.rows().collect(),
        other => panic!("expected rows, got {other:?}"),
    }
}

#[test]
fn full_lifecycle_script() {
    let mut cell = DataCell::default();
    let outcomes = cell
        .execute_script(
            "CREATE TABLE t (k BIGINT, v DOUBLE);\
             INSERT INTO t VALUES (1, 1.5), (2, 2.5), (1, 3.5);\
             SELECT k, SUM(v) FROM t GROUP BY k ORDER BY k;",
        )
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    let rows = outcome_rows(outcomes.into_iter().last().unwrap());
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec![Value::Int(1), Value::Float(5.0)]);
    assert_eq!(rows[1], vec![Value::Int(2), Value::Float(2.5)]);
}

#[test]
fn continuous_pipeline_with_join_and_post_processing() {
    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (ts TIMESTAMP, item BIGINT, qty BIGINT)").unwrap();
    cell.execute("CREATE TABLE items (item BIGINT, price DOUBLE)").unwrap();
    cell.execute("INSERT INTO items VALUES (0, 2.0), (1, 3.0), (2, 5.0)").unwrap();

    let q = cell
        .register_query_with_mode(
            "SELECT items.price, SUM(s.qty) AS total \
             FROM s [ROWS 6 SLIDE 6] JOIN items ON s.item = items.item \
             GROUP BY items.price HAVING SUM(s.qty) > 1 ORDER BY items.price DESC",
            ExecutionMode::Incremental,
        )
        .unwrap();

    let rows: Vec<Row> = (0..6i64)
        .map(|i| vec![Value::Timestamp(i), Value::Int(i % 3), Value::Int(i + 1)])
        .collect();
    cell.push_rows("s", &rows).unwrap();
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    assert_eq!(out.len(), 1);
    let result: Vec<Row> = out[0].rows().collect();
    // item 0 → qty 1+4=5 @2.0; item 1 → 2+5=7 @3.0; item 2 → 3+6=9 @5.0
    assert_eq!(
        result,
        vec![
            vec![Value::Float(5.0), Value::Int(9)],
            vec![Value::Float(3.0), Value::Int(7)],
            vec![Value::Float(2.0), Value::Int(5)],
        ]
    );
}

#[test]
fn insert_into_stream_via_sql() {
    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (v BIGINT)").unwrap();
    let q = cell.register_query("SELECT SUM(v) FROM s").unwrap();
    match cell.execute("INSERT INTO s VALUES (1), (2), (3)").unwrap() {
        ExecOutcome::Inserted(n) => assert_eq!(n, 3),
        other => panic!("{other:?}"),
    }
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    assert_eq!(out[0].row(0), vec![Value::Int(6)]);
}

#[test]
fn drop_stream_removes_catalog_and_basket() {
    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (v BIGINT)").unwrap();
    cell.execute("DROP STREAM s").unwrap();
    assert!(cell.push_rows("s", &[vec![Value::Int(1)]]).is_err());
    // name is reusable
    cell.execute("CREATE STREAM s (v BIGINT)").unwrap();
    assert_eq!(cell.push_rows("s", &[vec![Value::Int(1)]]).unwrap(), 1);
}

#[test]
fn errors_are_reported_not_panicked() {
    let mut cell = DataCell::default();
    assert!(cell.execute("SELECT * FROM missing").is_err());
    assert!(cell.execute("CREATE TABLE t (v BOGUSTYPE)").is_err());
    cell.execute("CREATE TABLE t (v BIGINT NOT NULL)").unwrap();
    assert!(cell.execute("INSERT INTO t VALUES (NULL)").is_err());
    assert!(cell.execute("INSERT INTO t VALUES ('text')").is_err());
    assert!(cell.register_query("SELECT v FROM t").is_err(), "no stream → not continuous");
    assert!(cell
        .execute("SELECT v FROM t [ROWS 5]")
        .is_err(), "window on table rejected");
}

#[test]
fn output_schema_matches_results() {
    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (a BIGINT, b DOUBLE)").unwrap();
    let q = cell
        .register_query("SELECT a AS key, AVG(b) AS mean FROM s GROUP BY a")
        .unwrap();
    assert_eq!(cell.output_names(q).unwrap(), vec!["key", "mean"]);
    let schema = cell.output_schema(q).unwrap();
    assert_eq!(schema.arity(), 2);
    assert_eq!(schema.column_at(0).ty, datacell::DataType::Int);
    assert_eq!(schema.column_at(1).ty, datacell::DataType::Float);
}

#[test]
fn receptor_to_emitter_full_path() {
    use datacell::engine::Receptor;
    use std::time::Duration;

    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (v BIGINT)").unwrap();
    let q = cell.register_query("SELECT COUNT(*) FROM s").unwrap();
    let emitter = cell.subscribe(q).unwrap();

    let rows: Vec<Row> = (0..5000i64).map(|i| vec![Value::Int(i)]).collect();
    let receptor = Receptor::spawn("s", cell.basket("s").unwrap(), rows, None);
    let delivered = receptor.join();
    assert_eq!(delivered, 5000);
    cell.run_until_idle().unwrap();

    let mut seen = 0i64;
    while let Some(chunk) = emitter.next_timeout(Duration::from_millis(50)) {
        seen += chunk.row(0)[0].as_int().unwrap();
        if seen >= 5000 {
            break;
        }
    }
    assert_eq!(seen, 5000);
}

#[test]
fn distinct_order_limit_on_stream() {
    let mut cell = DataCell::default();
    cell.execute("CREATE STREAM s (v BIGINT)").unwrap();
    let q = cell
        .register_query("SELECT DISTINCT v % 3 FROM s ORDER BY v LIMIT 20")
        .unwrap();
    let rows: Vec<Row> = (0..9i64).map(|i| vec![Value::Int(i)]).collect();
    cell.push_rows("s", &rows).unwrap();
    cell.run_until_idle().unwrap();
    let out = cell.take_results(q).unwrap();
    assert_eq!(out.len(), 1);
    let vals: Vec<i64> = out[0].rows().map(|r| r[0].as_int().unwrap()).collect();
    assert_eq!(vals, vec![0, 1, 2]);
}
