//! Chaos property tests: randomized seeded fault plans against a durable
//! windowed/aggregate scenario.
//!
//! Two invariants, straight from the resilience contract:
//!
//! * under any plan made of **retryable** fault kinds (EIO, short write,
//!   stall) within the retry budget, the engine neither panics nor
//!   wedges, absorbs every fault, and the subscriber chunk streams are
//!   **byte-identical** (wire `CHUNK` encoding) to a fault-free run;
//! * under a **non-retryable** persistent fault (ENOSPC), the engine
//!   drops to the documented degraded-durability state — visible in
//!   stats and METRICS — and keeps serving: the emitted streams still
//!   match the fault-free run.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use datacell::engine::{
    DataCell, DataCellConfig, FaultPlan, Faults, QueryId, SyncPolicy, WalConfig,
};
use datacell::server::protocol::encode_chunk;
use datacell::storage::{Row, Value};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("datacell-chaos-{}-{n}", std::process::id()))
}

fn durable_config(dir: &PathBuf, faults: Faults) -> DataCellConfig {
    DataCellConfig {
        wal: Some(WalConfig {
            dir: dir.clone(),
            // Fsync every batch so `wal_fsync` fault points actually fire.
            sync: SyncPolicy::Always,
            ..WalConfig::at(dir)
        }),
        faults,
        ..DataCellConfig::default()
    }
}

const SETUP: &str = "CREATE STREAM s (ts BIGINT, v BIGINT)";
const QUERIES: [&str; 2] = [
    "SELECT COUNT(*), SUM(v) FROM s [ROWS 4 SLIDE 2]",
    "SELECT ts, v FROM s",
];

fn batches() -> Vec<Vec<Row>> {
    (0..6)
        .map(|b| {
            (0..3)
                .map(|i| {
                    let ts = (b * 3 + i) as i64;
                    vec![Value::Int(ts), Value::Int(ts * 7 % 11)]
                })
                .collect()
        })
        .collect()
}

/// Run the scenario under `faults`; return per-query wire-encoded chunk
/// streams (seq-stamped exactly as a fresh server incarnation would) and
/// the engine for post-run assertions.
fn run_scenario(faults: Faults) -> (Vec<String>, DataCell) {
    let dir = tmpdir();
    let mut cell = DataCell::open(durable_config(&dir, faults)).expect("open");
    cell.execute(SETUP).expect("setup");
    let handles: Vec<(QueryId, _)> = QUERIES
        .iter()
        .map(|sql| {
            let qid = cell.register_query(sql).expect("register");
            let emitter = cell.subscribe(qid).expect("subscribe");
            (qid, emitter)
        })
        .collect();
    for batch in batches() {
        cell.push_rows("s", &batch).expect("push");
        cell.run_until_idle().expect("scheduler pass");
    }
    let streams = handles
        .iter()
        .map(|(qid, emitter)| {
            emitter
                .drain()
                .iter()
                .enumerate()
                .map(|(i, chunk)| encode_chunk(*qid, i as u64 + 1, chunk))
                .collect::<String>()
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();
    (streams, cell)
}

/// One retryable fault rule as plan-grammar text. `nth` triggers fire
/// exactly once, so even stacked rules on the same point stay within the
/// default 4-retry budget.
fn retryable_rule() -> impl Strategy<Value = String> {
    (0..3usize, 1..12u64, 0..3usize).prop_map(|(point, nth, kind)| {
        let point = ["wal_append", "wal_fsync", "scheduler_stall"][point];
        let kind = if point == "scheduler_stall" {
            // The scheduler only models preemption; error kinds would be
            // silently ignored there and test nothing.
            "stall"
        } else {
            ["eio", "short", "stall"][kind]
        };
        format!("{point}:nth={nth}:{kind}")
    })
}

fn retryable_plan() -> impl Strategy<Value = FaultPlan> {
    (0..u64::MAX, prop::collection::vec(retryable_rule(), 1..4)).prop_map(|(seed, rules)| {
        let spec = format!("seed={seed};{}", rules.join(";"));
        let plan = FaultPlan::parse(&spec).expect("generated plan must parse");
        assert!(plan.all_retryable(), "{spec}");
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Retryable chaos is invisible: identical bytes, no degrade.
    #[test]
    fn retryable_plans_leave_streams_byte_identical(plan in retryable_plan()) {
        let (reference, _) = run_scenario(Faults::disabled());
        prop_assert!(reference.iter().any(|s| !s.is_empty()), "reference produced nothing");
        let (chaotic, cell) = run_scenario(Faults::enabled(plan));
        prop_assert_eq!(&chaotic, &reference, "fault plan changed the output stream");
        let wal = cell.wal_stats().expect("durable engine has wal stats");
        prop_assert_eq!(wal.io_gave_up, 0, "retryable plan must never exhaust retries");
        prop_assert_eq!(cell.stats().degraded_streams, 0);
    }

    /// A non-retryable fault (ENOSPC) on a stream's data append degrades
    /// that stream's durability — loudly — but never takes the pipeline
    /// down with it. (Persistent faults on the *catalog* log are a
    /// different contract: they surface as hard `EngineError`s, because
    /// exactly-once fire accounting cannot continue without it.)
    #[test]
    fn enospc_on_stream_append_degrades_but_keeps_serving(
        seed in 0..u64::MAX,
        fsync_nth in 1..6u64,
    ) {
        let (reference, _) = run_scenario(Faults::disabled());
        // `wal_append` call #4 is the first stream-segment append — after
        // the three catalog appends (CREATE STREAM + two registrations).
        // ENOSPC is non-retryable, so the basket drops durability on the
        // spot; a retryable fsync fault rides along as extra churn.
        let spec = format!(
            "seed={seed};wal_append:nth=4:enospc;wal_fsync:nth={fsync_nth}:eio"
        );
        let plan = FaultPlan::parse(&spec).expect("plan parses");
        prop_assert!(!plan.all_retryable());
        let (degraded, cell) = run_scenario(Faults::enabled(plan));
        prop_assert_eq!(&degraded, &reference, "degraded engine must keep serving");
        let stats = cell.stats();
        prop_assert!(stats.degraded_streams >= 1, "degrade must be visible in stats");
        prop_assert!(stats.render().contains("DEGRADED DURABILITY"));
        let wal = cell.wal_stats().expect("wal stats");
        prop_assert!(wal.io_gave_up >= 1);
        let metrics = cell.metrics_text();
        prop_assert!(metrics.contains("datacell_degraded_streams"));
        prop_assert!(metrics.contains("datacell_wal_io_gave_up_total"));
    }
}
