#!/usr/bin/env bash
# Workspace static analysis — the same gate CI runs.
#
# Builds and runs datacell-lint in deny mode: any finding (or any
# malformed/stale `lint:allow` directive) exits non-zero. See the
# "Static analysis" section of README.md for the rule set.

set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -p datacell-lint --release -- --deny "$@"
