#!/usr/bin/env bash
# Chaos smoke test: run `datacell-server` with a *seeded* fault plan armed
# via DATACELL_FAULT_PLAN (two retryable EIO faults on the WAL fsync
# path), drive the full wire loop, and assert the faults were absorbed
# invisibly — correct chunks, retry counters in METRICS, no degrade.
#
# The second half kills a subscriber mid-stream (no QUIT — a client
# crash), pushes more rows while nobody is listening, then re-attaches
# with `SUBSCRIBE ... AFTER <epoch> <seq>` and asserts the replay ring
# hands back exactly the missed chunk before going live again — the
# reconnect-with-resume contract, end to end against a real daemon.
#
# Usage: scripts/chaos_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p datacell-server --bins

workdir="$(mktemp -d)"
server_log="${workdir}/server.log"
sub_out="${workdir}/subscriber.out"
sub_in="${workdir}/subscriber.in"

cleanup() {
  exec 3>&- 2>/dev/null || true
  [[ -n "${server_pid:-}" ]] && kill "${server_pid}" 2>/dev/null || true
  [[ -n "${sub_pid:-}" ]] && kill "${sub_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

wait_for() { # wait_for <pattern> <file> <what>
  for _ in $(seq 1 100); do
    grep -q "$1" "$2" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "FAIL: timed out waiting for $3" >&2
  echo "--- $2 ---" >&2; cat "$2" >&2 || true
  echo "--- server log ---" >&2; cat "${server_log}" >&2 || true
  exit 1
}

cli=./target/release/datacell-cli

# 1. Durable server with the fault plan armed: fsync calls 2 and 5 fail
#    with a retryable EIO. The retry loop must absorb both; a generous
#    memory budget exercises the admission flags without ever tripping.
DATACELL_FAULT_PLAN='seed=7;wal_fsync:nth=2:eio;wal_fsync:nth=5:eio' \
  ./target/release/datacell-server --addr 127.0.0.1:0 \
  --wal-dir "${workdir}/wal" --fsync always \
  --memory-budget 50000000 --shed-policy reject > "${server_log}" 2>&1 &
server_pid=$!
wait_for '^LISTENING ' "${server_log}" "server to bind"
grep -q 'fault injection armed' "${server_log}"
addr="$(sed -n 's/^LISTENING //p' "${server_log}" | head -1)"
echo "chaos server listening on ${addr} (fault plan armed)"

# 2. Stream + continuous query.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/setup.out"
EXEC CREATE STREAM s (ts TIMESTAMP, v BIGINT)
REGISTER SELECT COUNT(*), SUM(v) FROM s
EOF
grep -q '^OK QUERY 1$' "${workdir}/setup.out"

# 3. Subscriber; scrape the incarnation epoch from the handshake.
mkfifo "${sub_in}"
"${cli}" --addr "${addr}" < "${sub_in}" > "${sub_out}" &
sub_pid=$!
exec 3> "${sub_in}"
echo "SUBSCRIBE 1" >&3
wait_for '^OK SUBSCRIBED 1 ' "${sub_out}" "subscription handshake"
epoch="$(sed -n 's/^OK SUBSCRIBED 1 //p' "${sub_out}" | head -1 | cut -d' ' -f1)"
[[ -n "${epoch}" ]]

# 4. Two pushes through the faulty fsyncs: both must land (the EIOs are
#    retried under the hood), and the chunks must be correct.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/push.out"
PUSH s
@1,10
@2,32
END
PUSH s
@3,5
@4,7
END
EOF
[[ "$(grep -c '^OK PUSHED 2$' "${workdir}/push.out")" -eq 2 ]]
wait_for '^CHUNK 1 1 2$' "${sub_out}" "both chunks through the faulty WAL"
grep -q '^CHUNK 1 1 1$' "${sub_out}"
grep -q '^2,42$' "${sub_out}"
grep -q '^2,12$' "${sub_out}"

# 5. The crash: kill the subscriber process mid-stream (no QUIT), then
#    push while nobody is listening — the replay ring must retain seq 3.
kill -9 "${sub_pid}"
wait "${sub_pid}" 2>/dev/null || true
sub_pid=""
exec 3>&-
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/push2.out"
PUSH s
@5,100
@6,200
END
EOF
grep -q '^OK PUSHED 2$' "${workdir}/push2.out"

# 6. Reconnect-with-resume: AFTER <epoch> 2 → the server replays the
#    missed seq-3 chunk, then the stream continues live (seq 4).
mkfifo "${sub_in}.2"
"${cli}" --addr "${addr}" < "${sub_in}.2" > "${sub_out}.2" &
sub_pid=$!
exec 3> "${sub_in}.2"
echo "SUBSCRIBE 1 LIMIT 2 AFTER ${epoch} 2" >&3
wait_for '^OK SUBSCRIBED 1 ' "${sub_out}.2" "resumed subscription handshake"
wait_for '^CHUNK 1 1 3$' "${sub_out}.2" "replayed missed chunk"
grep -q '^2,300$' "${sub_out}.2"   # COUNT=2, SUM=100+200

"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/push3.out"
PUSH s
@7,1
@8,2
END
EOF
wait_for '^CHUNK 1 1 4$' "${sub_out}.2" "live chunk after resume"
wait_for '^OK STOPPED ' "${sub_out}.2" "limit reached"
echo "QUIT" >&3
exec 3>&-
wait "${sub_pid}"; sub_pid=""

# 7. The faults must be visible in METRICS as absorbed retries — and
#    only retries: nothing gave up, nothing degraded, nothing shed.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/obs.out"
METRICS
STATS
EOF
grep -Eq '^datacell_wal_io_retries_total [1-9]' "${workdir}/obs.out"
grep -q '^datacell_wal_io_gave_up_total 0$' "${workdir}/obs.out"
grep -q '^datacell_degraded_streams 0$' "${workdir}/obs.out"
if grep -q 'DEGRADED DURABILITY' "${workdir}/obs.out"; then
  echo "FAIL: retryable fault plan degraded a stream" >&2
  exit 1
fi

# 8. Clean wire-protocol shutdown.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/teardown.out"
SHUTDOWN
EOF
grep -q '^OK SHUTDOWN$' "${workdir}/teardown.out"
wait "${server_pid}"; server_pid=""
grep -q '^shutdown:' "${server_log}"

echo "chaos smoke test: ok"
