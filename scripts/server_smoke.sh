#!/usr/bin/env bash
# Server smoke test: start `datacell-server` on an ephemeral port, drive a
# scripted `datacell-cli` session through the full client/server loop —
# create a stream, register a continuous query, subscribe on one
# connection, push rows from another — assert the subscriber saw the
# correct result chunks, and shut the server down cleanly via the wire
# protocol (no signals).
#
# A second leg exercises durability the hard way: a server with --wal-dir
# is killed with SIGKILL mid-stream, restarted over the same directory,
# and must come back with its catalog, query, lifetime STATS counters and
# an exactly-continuing windowed subscription.
#
# Usage: scripts/server_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p datacell-server --bins

workdir="$(mktemp -d)"
server_log="${workdir}/server.log"
sub_out="${workdir}/subscriber.out"
sub_in="${workdir}/subscriber.in"

cleanup() {
  # Best-effort teardown if an assertion fails mid-run.
  exec 3>&- 2>/dev/null || true
  [[ -n "${server_pid:-}" ]] && kill "${server_pid}" 2>/dev/null || true
  [[ -n "${sub_pid:-}" ]] && kill "${sub_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

wait_for() { # wait_for <pattern> <file> <what>
  for _ in $(seq 1 100); do
    grep -q "$1" "$2" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "FAIL: timed out waiting for $3" >&2
  echo "--- $2 ---" >&2; cat "$2" >&2 || true
  echo "--- server log ---" >&2; cat "${server_log}" >&2 || true
  exit 1
}

cli=./target/release/datacell-cli

# 1. Server on an ephemeral port; scrape the bound address.
./target/release/datacell-server --addr 127.0.0.1:0 > "${server_log}" &
server_pid=$!
wait_for '^LISTENING ' "${server_log}" "server to bind"
addr="$(sed -n 's/^LISTENING //p' "${server_log}" | head -1)"
echo "server listening on ${addr}"

# 2. Setup session: stream + continuous query.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' | tee "${workdir}/setup.out"
# smoke-test schema
EXEC CREATE STREAM s (ts TIMESTAMP, v BIGINT)
REGISTER SELECT COUNT(*), SUM(v) FROM s
EOF
grep -q '^OK CREATED s$' "${workdir}/setup.out"
grep -q '^OK QUERY 1$' "${workdir}/setup.out"

# 3. Subscriber session on its own connection, fed through a FIFO so we
#    can hold it open while another session pushes.
mkfifo "${sub_in}"
"${cli}" --addr "${addr}" < "${sub_in}" > "${sub_out}" &
sub_pid=$!
exec 3> "${sub_in}"
echo "SUBSCRIBE 1 LIMIT 2" >&3
wait_for '^OK SUBSCRIBED 1 ' "${sub_out}" "subscription handshake"

# 4. Pusher session: two PUSH batches → exactly two result chunks.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/push.out"
PUSH s
@1,10
@2,32
END
PUSH s
@3,5
@4,7
END
EOF
[[ "$(grep -c '^OK PUSHED 2$' "${workdir}/push.out")" -eq 2 ]]

# 5. The subscriber must receive both chunks, then the server auto-stops
#    the stream at the LIMIT.
wait_for '^OK STOPPED 2 2$' "${sub_out}" "both chunks + stream end"
echo "QUIT" >&3
exec 3>&-
wait "${sub_pid}"; sub_pid=""
# CHUNK <query> <rows> <seq>; seq 1 and 2 are this incarnation's chunks.
grep -Eq '^CHUNK 1 1 1$' "${sub_out}"
grep -Eq '^CHUNK 1 1 2$' "${sub_out}"
grep -q '^2,42$' "${sub_out}"   # COUNT=2, SUM=10+32
grep -q '^2,12$' "${sub_out}"   # COUNT=2, SUM=5+7

# 6. Observability surface on a fresh connection: the Prometheus
#    METRICS snapshot must carry the run's lifecycle counters and
#    latency histograms, STATS DETAIL the analyze/latency tables,
#    EXPLAIN ANALYZE the per-query observed runtimes, and TRACE DUMP
#    the flight-recorder events this run produced.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/obs.out"
METRICS
STATS DETAIL
EXPLAIN ANALYZE 1
TRACE DUMP 64
EOF
grep -Eq '^METRICS [0-9]+$' "${workdir}/obs.out"
grep -q '^# TYPE datacell_ingest_rows_total counter$' "${workdir}/obs.out"
grep -q '^datacell_ingest_rows_total 4$' "${workdir}/obs.out"   # 2 PUSH batches x 2 rows
grep -q '^datacell_e2e_latency_us_count ' "${workdir}/obs.out"
grep -q '^datacell_wire_delivery_us_count ' "${workdir}/obs.out"
grep -q '^== analyze ==$' "${workdir}/obs.out"
grep -q '^== latency ==$' "${workdir}/obs.out"
grep -Eq '^ANALYZE [0-9]+$' "${workdir}/obs.out"
grep -Eq '^TRACE [0-9]+$' "${workdir}/obs.out"
grep -Eq '^#[0-9]+ \+[0-9]+us register ' "${workdir}/obs.out"

# 7. Stats + clean wire-protocol shutdown.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/teardown.out"
STATS
SHUTDOWN
EOF
grep -q 'rows pushed' "${workdir}/teardown.out"
grep -q '^OK SHUTDOWN$' "${workdir}/teardown.out"
wait "${server_pid}"; server_pid=""
grep -q '^shutdown:' "${server_log}"

echo "server smoke test: ok"

# ---------------------------------------------------------------------
# 8. Durability leg: kill -9 mid-stream, restart over the same WAL dir.
wal_dir="${workdir}/wal"
durable_log="${workdir}/durable.log"

./target/release/datacell-server --addr 127.0.0.1:0 \
  --wal-dir "${wal_dir}" --fsync always > "${durable_log}" &
server_pid=$!
wait_for '^LISTENING ' "${durable_log}" "durable server to bind"
addr="$(sed -n 's/^LISTENING //p' "${durable_log}" | head -1)"
echo "durable server listening on ${addr} (wal: ${wal_dir})"

"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/durable-setup.out"
EXEC CREATE STREAM s (ts TIMESTAMP, v BIGINT)
REGISTER SELECT COUNT(*), SUM(v) FROM s [ROWS 4 SLIDE 2]
PUSH s
@1,10
@2,20
END
PUSH s
@3,30
@4,40
END
EOF
grep -q '^OK QUERY 1$' "${workdir}/durable-setup.out"
[[ "$(grep -c '^OK PUSHED 2$' "${workdir}/durable-setup.out")" -eq 2 ]]

# The crash: no SHUTDOWN, no checkpoint — only the WAL survives.
kill -9 "${server_pid}"
wait "${server_pid}" 2>/dev/null || true
server_pid=""

# Restart over the same directory: no --init, everything from the WAL.
./target/release/datacell-server --addr 127.0.0.1:0 \
  --wal-dir "${wal_dir}" --fsync always > "${durable_log}.2" 2>&1 &
server_pid=$!
wait_for '^LISTENING ' "${durable_log}.2" "recovered server to bind"
addr="$(sed -n 's/^LISTENING //p' "${durable_log}.2" | head -1)"
grep -q 'recovered engine state' "${durable_log}.2"

# Recovered STATS: the lifetime arrived counter and WAL recovery section.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/durable-stats.out"
STATS
EOF
grep -Eq '^s +4 ' "${workdir}/durable-stats.out"   # arrived = 4 survived
grep -q 'wal recovery: ' "${workdir}/durable-stats.out"

# Subscription continuation: the next slide must cover tuples 3..6
# (30+40+50+60 = 180) — the recovered factory resumed mid-window.
mkfifo "${sub_in}.2"
"${cli}" --addr "${addr}" < "${sub_in}.2" > "${workdir}/durable-sub.out" &
sub_pid=$!
exec 3> "${sub_in}.2"
echo "SUBSCRIBE 1 LIMIT 1" >&3
wait_for '^OK SUBSCRIBED 1 ' "${workdir}/durable-sub.out" "recovered subscription"

"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/durable-push.out"
PUSH s
@5,50
@6,60
END
EOF
grep -q '^OK PUSHED 2$' "${workdir}/durable-push.out"
wait_for '^4,180$' "${workdir}/durable-sub.out" "continued window chunk"
echo "QUIT" >&3
exec 3>&-
wait "${sub_pid}"; sub_pid=""

# Graceful shutdown checkpoints; a third start must recover from it.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > /dev/null
SHUTDOWN
EOF
wait "${server_pid}"; server_pid=""
[[ -f "${wal_dir}/snapshot.bin" ]] || {
  echo "FAIL: graceful shutdown left no snapshot" >&2; exit 1;
}

echo "server smoke test (durable kill -9 + restart): ok"

# ---------------------------------------------------------------------
# 9. Binary protocol leg: the same loop with `--binary` sessions — HELLO
#    negotiation, commands as TEXT frames, result chunks as columnar
#    CHUNK frames. The CLI re-renders frames in the text shape, so the
#    assertions are identical to leg 1's. Ingest stays on a text session:
#    the multi-line text PUSH grammar is deliberately not available over
#    frames (binary ingest is the columnar PUSH frame, exercised by the
#    client library's test suite), which the negative check pins down.
bin_log="${workdir}/binary.log"
./target/release/datacell-server --addr 127.0.0.1:0 > "${bin_log}" &
server_pid=$!
wait_for '^LISTENING ' "${bin_log}" "binary-leg server to bind"
addr="$(sed -n 's/^LISTENING //p' "${bin_log}" | head -1)"
echo "binary-leg server listening on ${addr}"

"${cli}" --addr "${addr}" --binary --fail-on-err <<'EOF' > "${workdir}/bin-setup.out"
EXEC CREATE STREAM s (ts TIMESTAMP, v BIGINT)
REGISTER SELECT COUNT(*), SUM(v) FROM s
EOF
grep -q '^OK CREATED s$' "${workdir}/bin-setup.out"
grep -q '^OK QUERY 1$' "${workdir}/bin-setup.out"

mkfifo "${sub_in}.3"
"${cli}" --addr "${addr}" --binary < "${sub_in}.3" > "${workdir}/bin-sub.out" &
sub_pid=$!
exec 3> "${sub_in}.3"
echo "SUBSCRIBE 1 LIMIT 2" >&3
wait_for '^OK SUBSCRIBED 1 ' "${workdir}/bin-sub.out" "binary subscription"

# Text PUSH over a binary session must be refused with a pointer to the
# PUSH frame (no --fail-on-err: the ERR is the expected output).
"${cli}" --addr "${addr}" --binary <<'EOF' > "${workdir}/bin-nopush.out"
PUSH s
EOF
grep -q '^ERR text PUSH is not available in binary mode' "${workdir}/bin-nopush.out"

"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/bin-push.out"
PUSH s
@1,10
@2,32
END
PUSH s
@3,5
@4,7
END
EOF
[[ "$(grep -c '^OK PUSHED 2$' "${workdir}/bin-push.out")" -eq 2 ]]

# The binary subscriber sees the same chunks the text subscriber saw in
# leg 1 — frame decoding is invisible in the rendered output.
wait_for '^OK STOPPED 2 2$' "${workdir}/bin-sub.out" "binary chunks + stream end"
echo "QUIT" >&3
exec 3>&-
wait "${sub_pid}"; sub_pid=""
grep -Eq '^CHUNK 1 1 1$' "${workdir}/bin-sub.out"
grep -Eq '^CHUNK 1 1 2$' "${workdir}/bin-sub.out"
grep -q '^2,42$' "${workdir}/bin-sub.out"
grep -q '^2,12$' "${workdir}/bin-sub.out"

# Binary STATS/METRICS framed reports, then clean shutdown over frames.
"${cli}" --addr "${addr}" --binary --fail-on-err <<'EOF' > "${workdir}/bin-teardown.out"
STATS
METRICS
SHUTDOWN
EOF
grep -q 'rows pushed' "${workdir}/bin-teardown.out"
grep -q '^datacell_reactor_sessions ' "${workdir}/bin-teardown.out"
grep -q '^OK SHUTDOWN$' "${workdir}/bin-teardown.out"
wait "${server_pid}"; server_pid=""
grep -q '^shutdown:' "${bin_log}"

echo "server smoke test (binary frames): ok"
