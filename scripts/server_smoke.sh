#!/usr/bin/env bash
# Server smoke test: start `datacell-server` on an ephemeral port, drive a
# scripted `datacell-cli` session through the full client/server loop —
# create a stream, register a continuous query, subscribe on one
# connection, push rows from another — assert the subscriber saw the
# correct result chunks, and shut the server down cleanly via the wire
# protocol (no signals).
#
# Usage: scripts/server_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p datacell-server --bins

workdir="$(mktemp -d)"
server_log="${workdir}/server.log"
sub_out="${workdir}/subscriber.out"
sub_in="${workdir}/subscriber.in"

cleanup() {
  # Best-effort teardown if an assertion fails mid-run.
  exec 3>&- 2>/dev/null || true
  [[ -n "${server_pid:-}" ]] && kill "${server_pid}" 2>/dev/null || true
  [[ -n "${sub_pid:-}" ]] && kill "${sub_pid}" 2>/dev/null || true
  rm -rf "${workdir}"
}
trap cleanup EXIT

wait_for() { # wait_for <pattern> <file> <what>
  for _ in $(seq 1 100); do
    grep -q "$1" "$2" 2>/dev/null && return 0
    sleep 0.1
  done
  echo "FAIL: timed out waiting for $3" >&2
  echo "--- $2 ---" >&2; cat "$2" >&2 || true
  echo "--- server log ---" >&2; cat "${server_log}" >&2 || true
  exit 1
}

cli=./target/release/datacell-cli

# 1. Server on an ephemeral port; scrape the bound address.
./target/release/datacell-server --addr 127.0.0.1:0 > "${server_log}" &
server_pid=$!
wait_for '^LISTENING ' "${server_log}" "server to bind"
addr="$(sed -n 's/^LISTENING //p' "${server_log}" | head -1)"
echo "server listening on ${addr}"

# 2. Setup session: stream + continuous query.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' | tee "${workdir}/setup.out"
# smoke-test schema
EXEC CREATE STREAM s (ts TIMESTAMP, v BIGINT)
REGISTER SELECT COUNT(*), SUM(v) FROM s
EOF
grep -q '^OK CREATED s$' "${workdir}/setup.out"
grep -q '^OK QUERY 1$' "${workdir}/setup.out"

# 3. Subscriber session on its own connection, fed through a FIFO so we
#    can hold it open while another session pushes.
mkfifo "${sub_in}"
"${cli}" --addr "${addr}" < "${sub_in}" > "${sub_out}" &
sub_pid=$!
exec 3> "${sub_in}"
echo "SUBSCRIBE 1 LIMIT 2" >&3
wait_for '^OK SUBSCRIBED 1 ' "${sub_out}" "subscription handshake"

# 4. Pusher session: two PUSH batches → exactly two result chunks.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/push.out"
PUSH s
@1,10
@2,32
END
PUSH s
@3,5
@4,7
END
EOF
[[ "$(grep -c '^OK PUSHED 2$' "${workdir}/push.out")" -eq 2 ]]

# 5. The subscriber must receive both chunks, then the server auto-stops
#    the stream at the LIMIT.
wait_for '^OK STOPPED 2 2$' "${sub_out}" "both chunks + stream end"
echo "QUIT" >&3
exec 3>&-
wait "${sub_pid}"; sub_pid=""
grep -q '^CHUNK 1 1$' "${sub_out}"
grep -q '^2,42$' "${sub_out}"   # COUNT=2, SUM=10+32
grep -q '^2,12$' "${sub_out}"   # COUNT=2, SUM=5+7

# 6. Stats + clean wire-protocol shutdown.
"${cli}" --addr "${addr}" --fail-on-err <<'EOF' > "${workdir}/teardown.out"
STATS
SHUTDOWN
EOF
grep -q 'rows pushed' "${workdir}/teardown.out"
grep -q '^OK SHUTDOWN$' "${workdir}/teardown.out"
wait "${server_pid}"; server_pid=""
grep -q '^shutdown:' "${server_log}"

echo "server smoke test: ok"
