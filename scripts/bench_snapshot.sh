#!/usr/bin/env bash
# Bench snapshot: run the e1 / e3 / e6 / e9 / e10 / e11 / e12 experiment
# binaries at a small, fixed --events size and collect their SNAPSHOT
# lines (events/sec per experiment) into BENCH_PR9.json, so every PR
# leaves a comparable perf data point behind. e1/e3/e9/e10 are kept from
# earlier PRs for trajectory comparison; e11 (added with the durability
# subsystem) tracks WAL ingest overhead and crash-recovery replay
# throughput; e6 (added with the shared-execution layer) is swept over
# its --overlap mixes to track what common-subplan factoring buys at 16
# standing queries. Since the observability PR, e1/e6/e10 snapshots also
# carry p50/p95/p99 end-to-end latency, and e1's --obs-compare leg
# records throughput with tracing off vs on (acceptance: within 2%).
# e12 (added with the resilience PR) records ingest under injected fsync
# faults, the ENOSPC degraded mode, admission-control ceilings, and the
# armed-idle fault-facade overhead next to the disabled baseline — the
# e1 numbers double as the "facade off costs nothing" trajectory check
# (acceptance: within 2% of the previous PR's snapshot). Since the binary
# wire-protocol PR, e10 is also run with --wire-compare (CSV text vs
# binary columnar frames on a row-passthrough query; acceptance: binary
# ≥ 3x text) and with --binary --subscribers 64 (encode-once fan-out
# deliveries/sec and frame-cache hit rate).
#
# Usage: scripts/bench_snapshot.sh [events]   (default 20000)
set -euo pipefail
cd "$(dirname "$0")/.."

events="${1:-20000}"
out="BENCH_PR10.json"

cargo build --release -p datacell-bench --bins

lines=""
run_log="$(mktemp)"
trap 'rm -f "${run_log}"' EXIT
collect() {
  # Run to a file first so a binary failure (e.g. e9's determinism check
  # exiting non-zero) fails the script instead of being swallowed by a
  # pipeline / process substitution.
  "$@" > "${run_log}"
  while IFS= read -r line; do
    lines="${lines}${lines:+,$'\n'}    ${line}"
  done < <(sed -n 's/^SNAPSHOT //p' "${run_log}")
}

collect ./target/release/e1_reeval --events "${events}" --obs-compare
for bin in e3_window_sweep e6_multiquery e9_multicore e10_server e11_recovery e12_degraded; do
  collect "./target/release/${bin}" --events "${events}"
done
for mix in identical shared-predicate disjoint; do
  collect ./target/release/e6_multiquery --events "${events}" --overlap "${mix}"
done
# The wire comparison runs 3x longer: the binary mode's fixed per-run
# costs (connect, negotiate, first-chunk factory warm-up) amortize over
# the run, while the text mode's per-row CSV cost dominates at any
# length — too few events under-reports the steady-state gap.
collect ./target/release/e10_server --events "$(( events * 3 ))" --wire-compare
collect ./target/release/e10_server --events "${events}" --binary --subscribers 64

cores=$(nproc 2>/dev/null || echo 1)
{
  echo '{'
  echo "  \"events\": ${events},"
  echo "  \"cores\": ${cores},"
  echo '  "experiments": ['
  printf '%s\n' "${lines}"
  echo '  ]'
  echo '}'
} > "${out}"

echo "wrote ${out}:"
cat "${out}"
