//! Error type of the durability layer.

use std::fmt;
use std::io;

/// Errors surfaced by the WAL.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file-system error.
    Io(io::Error),
    /// A file that must be intact (e.g. the catalog snapshot) failed its
    /// integrity check. Log *tails* never produce this — damaged tails are
    /// dropped and reported through [`WalStats`](crate::WalStats) instead.
    Corrupt(String),
    /// A write/fsync kept failing past the configured retry budget (or
    /// failed with a persistent condition such as `ENOSPC` that retrying
    /// cannot fix). The engine reacts by dropping to degraded durability
    /// — ingest continues, the WAL is detached — never by panicking.
    RetriesExhausted {
        /// The operation that gave up (`"segment append"`, `"fsync"`, …).
        op: &'static str,
        /// Attempts made, including the first.
        attempts: u32,
        /// The last underlying error, rendered.
        last: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
            WalError::RetriesExhausted { op, attempts, last } => {
                write!(f, "wal {op} failed after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Corrupt(_) | WalError::RetriesExhausted { .. } => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, WalError>;
