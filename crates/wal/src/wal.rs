//! The WAL manager: configuration, directory layout, fsync policy and the
//! engine-facing handle.

use std::fs;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::{Arc, Mutex};

use crate::error::Result;
use crate::io::{RealIo, RetryPolicy, WalIo};
use crate::meta::{read_snapshot, write_snapshot_with, MetaLog};
use crate::segment::{StreamBatch, StreamLog};
use crate::stats::{SharedStats, WalStats};

/// When appended records are fsync'd.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Fsync after every append — full durability, slowest ingest.
    Always,
    /// Fsync every N appends (per log). A crash loses at most the last
    /// N-1 *flushed-but-unsynced* batches — they survive anything short of
    /// an OS/power failure, since every append is written through to the
    /// file immediately.
    EveryN(u32),
    /// Never fsync explicitly; the OS flushes at its leisure. Fastest;
    /// appends still survive a process crash (kill -9), only an OS/power
    /// failure can lose them.
    Never,
}

impl FromStr for SyncPolicy {
    type Err = String;

    /// Accepts `always`, `never`, `every=N`.
    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s.to_ascii_lowercase().as_str() {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            other => match other.strip_prefix("every=").and_then(|n| n.parse::<u32>().ok()) {
                Some(n) if n > 0 => Ok(SyncPolicy::EveryN(n)),
                _ => Err(format!("bad fsync policy {s:?} (want always|never|every=N)")),
            },
        }
    }
}

/// Durability configuration (carried inside the engine's `DataCellConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// Root directory of the WAL (created on open).
    pub dir: PathBuf,
    /// Fsync policy for stream and meta logs.
    pub sync: SyncPolicy,
    /// Rotation threshold for stream segment files, in bytes.
    pub segment_bytes: u64,
    /// Automatic-checkpoint trigger: once the meta log exceeds this many
    /// bytes the engine writes a catalog snapshot and compacts it, so
    /// fire records never accumulate unboundedly and recovery cost stays
    /// bounded. `None` = only explicit / shutdown checkpoints.
    pub checkpoint_meta_bytes: Option<u64>,
    /// How transient append/fsync failures are retried before the WAL
    /// gives up and the engine drops to degraded durability.
    pub retry: RetryPolicy,
}

impl WalConfig {
    /// Durability at `dir` with the default policy: fsync every 64
    /// batches, 4 MiB segments, auto-checkpoint at 8 MiB of meta log.
    pub fn at(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            sync: SyncPolicy::EveryN(64),
            segment_bytes: 4 << 20,
            checkpoint_meta_bytes: Some(8 << 20),
            retry: RetryPolicy::default(),
        }
    }
}

/// The open write-ahead log of one engine.
pub struct Wal {
    config: WalConfig,
    stats: Arc<SharedStats>,
    io: Arc<dyn WalIo>,
    meta: Mutex<MetaLog>,
}

impl Wal {
    /// Open (or initialize) the WAL directory with direct OS I/O. Returns
    /// the manager, the catalog snapshot payload (if one was ever written)
    /// and the meta-log records appended since that snapshot, in order.
    #[allow(clippy::type_complexity)]
    pub fn open(config: WalConfig) -> Result<(Wal, Option<Vec<u8>>, Vec<Vec<u8>>)> {
        Wal::open_with_io(config, Arc::new(RealIo))
    }

    /// [`Wal::open`] through an explicit I/O seam: every segment/meta
    /// append, fsync and snapshot rename of this WAL (and of the stream
    /// logs it hands out) goes through `io`.
    #[allow(clippy::type_complexity)]
    pub fn open_with_io(
        config: WalConfig,
        io: Arc<dyn WalIo>,
    ) -> Result<(Wal, Option<Vec<u8>>, Vec<Vec<u8>>)> {
        fs::create_dir_all(config.dir.join("streams"))?;
        let stats = Arc::new(SharedStats::default());
        let snapshot = read_snapshot(&config.dir.join("snapshot.bin"))?;
        let (meta, records) = MetaLog::open_with_io(
            config.dir.join("meta.log"),
            config.sync,
            stats.clone(),
            io.clone(),
            config.retry,
        )?;
        Ok((Wal { config, stats, io, meta: Mutex::new(meta) }, snapshot, records))
    }

    /// The configuration this WAL was opened with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Open (and replay) the segment log of one stream.
    pub fn stream_log(&self, stream: &str) -> Result<(StreamLog, Vec<StreamBatch>)> {
        StreamLog::open_with_io(
            self.config.dir.join("streams").join(stream),
            self.config.sync,
            self.config.segment_bytes,
            self.stats.clone(),
            self.io.clone(),
            self.config.retry,
        )
    }

    /// Delete a dropped stream's log files (so a later stream of the same
    /// name starts from a clean slate).
    pub fn drop_stream_log(&self, stream: &str) {
        let _ = fs::remove_dir_all(self.config.dir.join("streams").join(stream));
    }

    /// Append one record to the meta log (thread-safe).
    pub fn append_meta(&self, payload: &[u8]) -> Result<()> {
        self.meta.lock().unwrap_or_else(|e| e.into_inner()).append(payload)
    }

    /// Fsync the meta log.
    pub fn sync_meta(&self) -> Result<()> {
        self.meta.lock().unwrap_or_else(|e| e.into_inner()).sync()
    }

    /// Bytes in the meta log since the last snapshot (the automatic
    /// checkpoint trigger).
    pub fn meta_bytes(&self) -> u64 {
        self.meta.lock().unwrap_or_else(|e| e.into_inner()).bytes()
    }

    /// Write a catalog snapshot atomically, then restart the meta log
    /// empty (the snapshot subsumes it).
    pub fn write_snapshot(&self, payload: &[u8]) -> Result<()> {
        write_snapshot_with(
            self.io.as_ref(),
            &self.config.retry,
            &self.stats,
            &self.config.dir.join("snapshot.bin"),
            payload,
        )?;
        self.meta.lock().unwrap_or_else(|e| e.into_inner()).reset()?;
        self.stats.add_snapshot();
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> WalStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmpdir;

    #[test]
    fn sync_policy_parsing() {
        assert_eq!("always".parse::<SyncPolicy>().unwrap(), SyncPolicy::Always);
        assert_eq!("NEVER".parse::<SyncPolicy>().unwrap(), SyncPolicy::Never);
        assert_eq!("every=8".parse::<SyncPolicy>().unwrap(), SyncPolicy::EveryN(8));
        assert!("every=0".parse::<SyncPolicy>().is_err());
        assert!("sometimes".parse::<SyncPolicy>().is_err());
    }

    #[test]
    fn open_initializes_and_recovers_meta_and_snapshot() {
        let dir = tmpdir("wal");
        {
            let (wal, snap, records) = Wal::open(WalConfig::at(&dir)).unwrap();
            assert!(snap.is_none());
            assert!(records.is_empty());
            wal.append_meta(b"r1").unwrap();
            wal.append_meta(b"r2").unwrap();
        }
        {
            let (wal, snap, records) = Wal::open(WalConfig::at(&dir)).unwrap();
            assert!(snap.is_none());
            assert_eq!(records, vec![b"r1".to_vec(), b"r2".to_vec()]);
            // Snapshot compacts the meta log.
            wal.write_snapshot(b"state").unwrap();
            wal.append_meta(b"after").unwrap();
            assert_eq!(wal.stats().snapshots, 1);
        }
        let (_, snap, records) = Wal::open(WalConfig::at(&dir)).unwrap();
        assert_eq!(snap, Some(b"state".to_vec()));
        assert_eq!(records, vec![b"after".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stream_logs_live_under_streams_dir() {
        let dir = tmpdir("wal");
        let (wal, _, _) = Wal::open(WalConfig::at(&dir)).unwrap();
        {
            let (mut log, replayed) = wal.stream_log("trades").unwrap();
            assert!(replayed.is_empty());
            log.append_batch(0, 3, b"abc").unwrap();
        }
        let (_, replayed) = wal.stream_log("trades").unwrap();
        assert_eq!(replayed.len(), 1);
        assert!(dir.join("streams/trades").is_dir());
        wal.drop_stream_log("trades");
        assert!(!dir.join("streams/trades").exists());
        fs::remove_dir_all(&dir).ok();
    }
}
