//! The injectable I/O seam and the append retry policy.
//!
//! Every durability-relevant file operation — segment/meta frame writes,
//! fsyncs, the snapshot's atomic rename — goes through the [`WalIo`]
//! trait. Production uses [`RealIo`] (a direct delegation); under an
//! active fault plan [`FaultyIo`] consults the seeded schedule first and
//! acts out the fired fault (`EIO`, `ENOSPC`, a short write that leaves a
//! torn frame, or a stall) before or instead of the real call.
//!
//! Transient failures are absorbed by [`with_retry`]: capped exponential
//! backoff, a per-attempt repair hook (the log truncates any torn frame
//! left by a failed write before re-appending — otherwise the retried
//! frame would land *after* the partial one and be unreachable past the
//! damage), and honest accounting in [`SharedStats`]. When retries are
//! exhausted — or the error is persistent, like `ENOSPC` — the caller
//! gets [`WalError::RetriesExhausted`] and the engine escalates to the
//! durable-degraded state instead of panicking or losing frames silently.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use datacell_faults::{FaultKind, FaultPoint, Faults};

use crate::error::{Result, WalError};
use crate::stats::SharedStats;

/// How append/fsync failures are retried before the WAL gives up and the
/// engine drops to degraded durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry, in milliseconds; doubles per retry.
    pub base_backoff_ms: u64,
    /// Ceiling on one backoff sleep, in milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    /// Four retries, 1 ms → 50 ms capped exponential backoff (~100 ms of
    /// patience before degrading — long enough for a transient `EIO`,
    /// short enough that ingest stalls stay bounded).
    fn default() -> RetryPolicy {
        RetryPolicy { max_retries: 4, base_backoff_ms: 1, max_backoff_ms: 50 }
    }
}

impl RetryPolicy {
    /// No retries, no backoff (tests that want the first error surfaced).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, base_backoff_ms: 0, max_backoff_ms: 0 }
    }

    fn backoff(&self, retry: u32) -> Duration {
        let ms = self
            .base_backoff_ms
            .saturating_mul(1u64 << retry.min(16))
            .min(self.max_backoff_ms);
        Duration::from_millis(ms)
    }
}

/// Whether an I/O error is worth retrying: transient kinds (`EIO`,
/// interruption, timeouts) are; persistent conditions (`ENOSPC`,
/// permission loss) and anything unrecognized are not.
pub fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    ) || e.raw_os_error() == Some(libc_eio())
}

const fn libc_eio() -> i32 {
    5 // EIO on every Unix the workspace targets
}

const fn libc_enospc() -> i32 {
    28 // ENOSPC
}

/// The file-operation seam. One implementor per run; shared by every log.
pub trait WalIo: Send + Sync + fmt::Debug {
    /// Write the whole buffer (one framed record) at `point`.
    fn write_all(&self, file: &mut File, buf: &[u8], point: FaultPoint) -> io::Result<()>;

    /// Fsync file data at `point`.
    fn sync_data(&self, file: &File, point: FaultPoint) -> io::Result<()>;

    /// Atomically rename `from` over `to` (the snapshot publish step;
    /// consults [`FaultPoint::SnapshotRename`]).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
}

/// Direct delegation to the OS — the production implementation.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl WalIo for RealIo {
    fn write_all(&self, file: &mut File, buf: &[u8], _point: FaultPoint) -> io::Result<()> {
        file.write_all(buf)
    }

    fn sync_data(&self, file: &File, _point: FaultPoint) -> io::Result<()> {
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
}

/// Fault-plan-driven implementation: consults the schedule, acts out the
/// fired fault, and otherwise delegates to [`RealIo`].
#[derive(Debug, Clone)]
pub struct FaultyIo {
    faults: Faults,
}

impl FaultyIo {
    /// Wrap the real I/O in `faults`' schedule.
    pub fn new(faults: Faults) -> FaultyIo {
        FaultyIo { faults }
    }

    /// Convert a fired fault into its `io::Error`, or `None` when the
    /// operation should proceed (possibly after a stall).
    fn act(&self, kind: FaultKind) -> Option<io::Error> {
        match kind {
            FaultKind::Eio => Some(io::Error::from_raw_os_error(libc_eio())),
            FaultKind::Enospc => Some(io::Error::from_raw_os_error(libc_enospc())),
            FaultKind::ShortWrite => None, // handled by write_all below
            FaultKind::Stall => {
                std::thread::sleep(Duration::from_millis(2));
                None
            }
        }
    }
}

impl WalIo for FaultyIo {
    fn write_all(&self, file: &mut File, buf: &[u8], point: FaultPoint) -> io::Result<()> {
        match self.faults.check(point) {
            Some(FaultKind::ShortWrite) => {
                // Half the record reaches the disk, then the write errors:
                // a torn frame the retry path must truncate away.
                file.write_all(&buf[..buf.len() / 2])?;
                Err(io::Error::from_raw_os_error(libc_eio()))
            }
            Some(kind) => match self.act(kind) {
                Some(e) => Err(e),
                None => file.write_all(buf),
            },
            None => file.write_all(buf),
        }
    }

    fn sync_data(&self, file: &File, point: FaultPoint) -> io::Result<()> {
        match self.faults.check(point).and_then(|k| self.act(k)) {
            Some(e) => Err(e),
            None => file.sync_data(),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.faults.check(FaultPoint::SnapshotRename).and_then(|k| self.act(k)) {
            Some(e) => Err(e),
            None => fs::rename(from, to),
        }
    }
}

/// The seam implementation for a facade: [`RealIo`] when no plan is
/// active (zero overhead), [`FaultyIo`] otherwise.
pub fn io_for(faults: &Faults) -> Arc<dyn WalIo> {
    if faults.is_enabled() {
        Arc::new(FaultyIo::new(faults.clone()))
    } else {
        Arc::new(RealIo)
    }
}

/// Run `attempt` under `policy`. The closure's argument is `true` on
/// retries, so the caller can repair state first (truncate a torn frame)
/// without paying for the repair on the common first-attempt path.
pub(crate) fn with_retry<T>(
    policy: &RetryPolicy,
    stats: &SharedStats,
    op: &'static str,
    mut attempt: impl FnMut(bool) -> io::Result<T>,
) -> Result<T> {
    let mut retries = 0u32;
    loop {
        match attempt(retries > 0) {
            Ok(v) => return Ok(v),
            Err(e) if is_retryable(&e) && retries < policy.max_retries => {
                stats.add_io_retry();
                std::thread::sleep(policy.backoff(retries));
                retries += 1;
            }
            Err(e) if is_retryable(&e) => {
                stats.add_io_gave_up();
                return Err(WalError::RetriesExhausted {
                    op,
                    attempts: retries + 1,
                    last: e.to_string(),
                });
            }
            Err(e) => {
                // Persistent (ENOSPC, permission loss, …): retrying is
                // pointless; report exhaustion immediately so the engine
                // escalates to degraded durability at once.
                stats.add_io_gave_up();
                return Err(WalError::RetriesExhausted {
                    op,
                    attempts: retries + 1,
                    last: e.to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_faults::FaultPlan;

    fn fast() -> RetryPolicy {
        RetryPolicy { max_retries: 3, base_backoff_ms: 0, max_backoff_ms: 0 }
    }

    #[test]
    fn retry_absorbs_transient_errors() {
        let stats = SharedStats::default();
        let mut failures = 2;
        let out = with_retry(&fast(), &stats, "test", |retrying| {
            if failures > 0 {
                assert_eq!(retrying, failures < 2);
                failures -= 1;
                Err(io::Error::from_raw_os_error(5))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        let snap = stats.snapshot();
        assert_eq!(snap.io_retries, 2);
        assert_eq!(snap.io_gave_up, 0);
    }

    #[test]
    fn retry_gives_up_after_cap() {
        let stats = SharedStats::default();
        let out: Result<()> = with_retry(&fast(), &stats, "append", |_| {
            Err(io::Error::from_raw_os_error(5))
        });
        match out {
            Err(WalError::RetriesExhausted { op, attempts, .. }) => {
                assert_eq!(op, "append");
                assert_eq!(attempts, 4);
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
        let snap = stats.snapshot();
        assert_eq!(snap.io_retries, 3);
        assert_eq!(snap.io_gave_up, 1);
    }

    #[test]
    fn persistent_errors_fail_fast() {
        let stats = SharedStats::default();
        let mut calls = 0;
        let out: Result<()> = with_retry(&fast(), &stats, "append", |_| {
            calls += 1;
            Err(io::Error::from_raw_os_error(28)) // ENOSPC
        });
        assert!(matches!(out, Err(WalError::RetriesExhausted { attempts: 1, .. })));
        assert_eq!(calls, 1, "ENOSPC must not be retried");
        assert_eq!(stats.snapshot().io_retries, 0);
    }

    #[test]
    fn retryability_classification() {
        assert!(is_retryable(&io::Error::from_raw_os_error(5)));
        assert!(is_retryable(&io::Error::from(io::ErrorKind::Interrupted)));
        assert!(is_retryable(&io::Error::from(io::ErrorKind::TimedOut)));
        assert!(!is_retryable(&io::Error::from_raw_os_error(28)));
        assert!(!is_retryable(&io::Error::from(io::ErrorKind::PermissionDenied)));
    }

    #[test]
    fn io_for_selects_implementation() {
        assert!(format!("{:?}", io_for(&Faults::disabled())).contains("RealIo"));
        let faults = Faults::enabled(FaultPlan::parse("wal_append:nth=1:eio").unwrap());
        assert!(format!("{:?}", io_for(&faults)).contains("FaultyIo"));
    }

    #[test]
    fn backoff_is_capped() {
        let p = RetryPolicy { max_retries: 10, base_backoff_ms: 8, max_backoff_ms: 20 };
        assert_eq!(p.backoff(0), Duration::from_millis(8));
        assert_eq!(p.backoff(1), Duration::from_millis(16));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(63), Duration::from_millis(20));
    }
}
