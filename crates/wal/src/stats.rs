//! WAL counters, shared between the engine's meta log and every stream
//! log (atomics — appenders on different threads never contend).

use std::sync::atomic::{AtomicU64, Ordering};

use datacell_obs::{Histogram, HistogramSnapshot};

/// Live atomic counters (shared via `Arc`).
#[derive(Debug, Default)]
pub struct SharedStats {
    wal_bytes: AtomicU64,
    appended_batches: AtomicU64,
    synced_batches: AtomicU64,
    meta_records: AtomicU64,
    recovered_batches: AtomicU64,
    recovered_rows: AtomicU64,
    dropped_bytes: AtomicU64,
    reclaimed_bytes: AtomicU64,
    snapshots: AtomicU64,
    io_retries: AtomicU64,
    io_gave_up: AtomicU64,
    append_us: Histogram,
    fsync_us: Histogram,
}

impl SharedStats {
    pub(crate) fn record_append_us(&self, us: u64) {
        self.append_us.record(us);
    }

    pub(crate) fn record_fsync_us(&self, us: u64) {
        self.fsync_us.record(us);
    }

    pub(crate) fn add_appended(&self, bytes: u64) {
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.appended_batches.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_synced(&self, batches: u64) {
        self.synced_batches.fetch_add(batches, Ordering::Relaxed);
    }

    pub(crate) fn add_meta(&self, bytes: u64) {
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.meta_records.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_recovered(&self, batches: u64, rows: u64) {
        self.recovered_batches.fetch_add(batches, Ordering::Relaxed);
        self.recovered_rows.fetch_add(rows, Ordering::Relaxed);
    }

    pub(crate) fn add_dropped(&self, bytes: u64) {
        self.dropped_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_reclaimed(&self, bytes: u64) {
        self.reclaimed_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn add_snapshot(&self) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_io_retry(&self) {
        self.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_io_gave_up(&self) {
        self.io_gave_up.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> WalStats {
        WalStats {
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            appended_batches: self.appended_batches.load(Ordering::Relaxed),
            synced_batches: self.synced_batches.load(Ordering::Relaxed),
            meta_records: self.meta_records.load(Ordering::Relaxed),
            recovered_batches: self.recovered_batches.load(Ordering::Relaxed),
            recovered_rows: self.recovered_rows.load(Ordering::Relaxed),
            dropped_bytes: self.dropped_bytes.load(Ordering::Relaxed),
            reclaimed_bytes: self.reclaimed_bytes.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            io_gave_up: self.io_gave_up.load(Ordering::Relaxed),
            append_us: self.append_us.snapshot(),
            fsync_us: self.fsync_us.snapshot(),
        }
    }
}

/// Point-in-time WAL statistics (this engine incarnation).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Bytes appended to logs (stream batches + meta records + framing).
    pub wal_bytes: u64,
    /// Ingest batches appended to stream logs.
    pub appended_batches: u64,
    /// Appended batches already covered by an fsync.
    pub synced_batches: u64,
    /// Records appended to the meta (DDL / query / fire-state) log.
    pub meta_records: u64,
    /// Ingest batches replayed at recovery.
    pub recovered_batches: u64,
    /// Stream tuples replayed at recovery.
    pub recovered_rows: u64,
    /// Bytes of damaged log tail dropped at recovery.
    pub dropped_bytes: u64,
    /// Bytes of retired segments deleted by truncation.
    pub reclaimed_bytes: u64,
    /// Catalog snapshots written.
    pub snapshots: u64,
    /// Transient write/fsync failures absorbed by the retry policy.
    pub io_retries: u64,
    /// Operations that exhausted the retry budget (each one drops the
    /// engine to degraded durability until the operator intervenes).
    pub io_gave_up: u64,
    /// Latency histogram of stream-log batch appends (microseconds,
    /// including framing and any policy-triggered fsync).
    pub append_us: HistogramSnapshot,
    /// Latency histogram of explicit fsync calls (microseconds).
    pub fsync_us: HistogramSnapshot,
}
