//! Per-stream append-only segment logs.
//!
//! One stream's log is a directory of numbered segment files
//! (`000000000042.seg`), each a sequence of CRC-framed records:
//!
//! ```text
//! payload := [first_oid: u64 LE][nrows: u32 LE][batch bytes]
//! ```
//!
//! `first_oid` is the basket's high-water mark when the batch was appended,
//! so every record states exactly which OID range it materializes. The
//! active (last) segment takes appends; once it outgrows the configured
//! segment size the next append seals it and starts a new file. Basket
//! retirement drives truncation: a sealed segment whose whole OID range is
//! below the retirement watermark is deleted ([`StreamLog::truncate_below`])
//! — retirement *is* the log-truncation point, so the log always holds
//! precisely the live tail (plus at most one segment of slack).
//!
//! Recovery ([`StreamLog::open`]) replays every surviving record in OID
//! order. A damaged frame (torn write, bit-flip) or an OID discontinuity
//! ends the replay: the damaged file is truncated to its valid prefix,
//! later segments are removed (their data is unreachable past the gap), and
//! the dropped byte count is reported in the shared [`WalStats`] — the log
//! never panics on a corrupt tail and always keeps the longest valid prefix.
//!
//! [`WalStats`]: crate::WalStats

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use datacell_faults::FaultPoint;

use crate::error::Result;
use crate::frame::{frame_bytes, FrameScanner};
use crate::io::{with_retry, RealIo, RetryPolicy, WalIo};
use crate::stats::SharedStats;
use crate::SyncPolicy;

/// One replayed ingest batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamBatch {
    /// OID of the batch's first tuple.
    pub first_oid: u64,
    /// Tuples in the batch.
    pub rows: u32,
    /// Serialized rows (see `datacell_storage::binio::encode_batch`).
    pub payload: Vec<u8>,
}

/// A sealed (no longer written) segment.
#[derive(Debug, Clone, Copy)]
struct Sealed {
    seq: u64,
    /// One past the last OID stored in the segment.
    end_oid: u64,
}

/// The append-only log of one stream.
#[derive(Debug)]
pub struct StreamLog {
    dir: PathBuf,
    sync: SyncPolicy,
    segment_bytes: u64,
    stats: Arc<SharedStats>,
    io: Arc<dyn WalIo>,
    retry: RetryPolicy,
    sealed: Vec<Sealed>,
    active_seq: u64,
    active: File,
    active_bytes: u64,
    /// One past the last OID appended (next batch must start here).
    end_oid: u64,
    /// Batches appended since the last fsync.
    unsynced: u64,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{seq:012}.seg"))
}

fn parse_seq(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(".seg")?;
    (stem.len() == 12).then(|| stem.parse().ok()).flatten()
}

impl StreamLog {
    /// Open (or create) the log under `dir`, replaying every surviving
    /// batch, with direct OS I/O and the default retry policy. See the
    /// module docs for the damage policy.
    pub fn open(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        segment_bytes: u64,
        stats: Arc<SharedStats>,
    ) -> Result<(StreamLog, Vec<StreamBatch>)> {
        StreamLog::open_with_io(dir, sync, segment_bytes, stats, Arc::new(RealIo), RetryPolicy::default())
    }

    /// [`StreamLog::open`] through an explicit I/O seam and retry policy
    /// (fault-injection runs route every append/fsync through `io`).
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        sync: SyncPolicy,
        segment_bytes: u64,
        stats: Arc<SharedStats>,
        io: Arc<dyn WalIo>,
        retry: RetryPolicy,
    ) -> Result<(StreamLog, Vec<StreamBatch>)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut seqs: Vec<u64> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_seq(&e.path()))
            .collect();
        seqs.sort_unstable();

        let mut batches: Vec<StreamBatch> = Vec::new();
        let mut sealed: Vec<Sealed> = Vec::new();
        let mut expected: Option<u64> = None;
        let mut damage: Option<usize> = None; // index into seqs
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(&dir, seq);
            let image = fs::read(&path)?;
            let mut scanner = FrameScanner::new(&image);
            let mut valid = scanner.valid_bytes();
            while let Some(payload) = scanner.next() {
                match decode_stream_record(payload, expected) {
                    Some(batch) => {
                        expected = Some(batch.first_oid + batch.rows as u64);
                        batches.push(batch);
                        valid = scanner.valid_bytes();
                    }
                    None => break, // malformed or discontinuous: damage here
                }
            }
            let file_dropped = image.len() as u64 - valid;
            if file_dropped > 0 {
                // Truncate this file to its valid prefix; everything after
                // (including later segments) is unreachable past the gap.
                stats.add_dropped(file_dropped);
                OpenOptions::new().write(true).open(&path)?.set_len(valid)?;
                damage = Some(i);
                break;
            }
            if i + 1 < seqs.len() {
                sealed.push(Sealed { seq, end_oid: expected.unwrap_or(0) });
            }
        }
        if let Some(i) = damage {
            for &seq in &seqs[i + 1..] {
                let path = segment_path(&dir, seq);
                if let Ok(meta) = fs::metadata(&path) {
                    stats.add_dropped(meta.len());
                }
                let _ = fs::remove_file(&path);
            }
            seqs.truncate(i + 1);
            // Segments before the damaged one stay sealed as computed;
            // the damaged (now truncated) one becomes the active segment.
        }

        let active_seq = seqs.last().copied().unwrap_or(0);
        let path = segment_path(&dir, active_seq);
        let active = OpenOptions::new().create(true).append(true).open(&path)?;
        let active_bytes = active.metadata()?.len();
        if sync == SyncPolicy::Always {
            crate::meta::sync_dir(&dir)?;
        }
        stats.add_recovered(batches.len() as u64, batches.iter().map(|b| b.rows as u64).sum());
        let log = StreamLog {
            dir,
            sync,
            segment_bytes,
            stats,
            io,
            retry,
            sealed,
            active_seq,
            active,
            active_bytes,
            end_oid: expected.unwrap_or(0),
            unsynced: 0,
        };
        Ok((log, batches))
    }

    /// One past the last OID ever appended to this log.
    pub fn end_oid(&self) -> u64 {
        self.end_oid
    }

    /// Append one ingest batch. `first_oid` must continue the OID sequence
    /// (the basket's high-water mark); `payload` is the serialized rows.
    pub fn append_batch(&mut self, first_oid: u64, nrows: u32, payload: &[u8]) -> Result<()> {
        debug_assert!(self.end_oid == 0 || first_oid == self.end_oid || self.sealed.is_empty());
        let append_start = std::time::Instant::now();
        if self.active_bytes >= self.segment_bytes && self.active_bytes > 0 {
            self.rotate(first_oid)?;
        }
        let mut record = Vec::with_capacity(12 + payload.len());
        record.extend_from_slice(&first_oid.to_le_bytes());
        record.extend_from_slice(&nrows.to_le_bytes());
        record.extend_from_slice(payload);
        let framed = frame_bytes(&record);
        let base = self.active_bytes;
        let io = self.io.clone();
        let active = &mut self.active;
        let written = with_retry(&self.retry, &self.stats, "segment append", |retrying| {
            if retrying {
                // A failed attempt may have left a torn frame behind; drop
                // it first or the retried record would land *after* the
                // partial one and be unreachable past the damage.
                active.set_len(base)?;
            }
            io.write_all(active, &framed, FaultPoint::WalAppend)?;
            Ok(framed.len() as u64)
        })?;
        self.active_bytes += written;
        self.end_oid = first_oid + nrows as u64;
        self.unsynced += 1;
        self.stats.add_appended(written);
        match self.sync {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n as u64 {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        self.stats.record_append_us(append_start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        Ok(())
    }

    fn rotate(&mut self, end_oid_hint: u64) -> Result<()> {
        self.active.flush()?;
        self.sealed.push(Sealed { seq: self.active_seq, end_oid: end_oid_hint });
        self.active_seq += 1;
        self.active = OpenOptions::new()
            .create(true)
            .append(true)
            .open(segment_path(&self.dir, self.active_seq))?;
        self.active_bytes = 0;
        // Under the full-durability policy the new directory entry must
        // survive a power failure too, or the freshest segment could
        // vanish with its data blocks intact but unreachable.
        if self.sync == SyncPolicy::Always {
            crate::meta::sync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// Fsync the active segment, marking everything appended as durable.
    pub fn sync(&mut self) -> Result<()> {
        let sync_start = std::time::Instant::now();
        let io = self.io.clone();
        let active = &self.active;
        with_retry(&self.retry, &self.stats, "segment fsync", |_| {
            io.sync_data(active, FaultPoint::WalFsync)
        })?;
        self.stats.record_fsync_us(sync_start.elapsed().as_micros().min(u64::MAX as u128) as u64);
        self.stats.add_synced(self.unsynced);
        self.unsynced = 0;
        Ok(())
    }

    /// Delete sealed segments whose whole OID range lies below `oid` (the
    /// basket retirement watermark). The active segment always survives.
    pub fn truncate_below(&mut self, oid: u64) {
        while let Some(first) = self.sealed.first() {
            if first.end_oid > oid {
                break;
            }
            let path = segment_path(&self.dir, first.seq);
            if let Ok(meta) = fs::metadata(&path) {
                self.stats.add_reclaimed(meta.len());
            }
            let _ = fs::remove_file(&path);
            self.sealed.remove(0);
        }
    }

    /// Number of on-disk segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + 1
    }
}

/// Parse one stream record payload; `expected` is the OID the batch must
/// start at (None for the first record). Returns None on any malformation
/// — the caller treats that as tail damage.
fn decode_stream_record(payload: &[u8], expected: Option<u64>) -> Option<StreamBatch> {
    let oid_raw: [u8; 8] = payload.get(..8)?.try_into().ok()?;
    let rows_raw: [u8; 4] = payload.get(8..12)?.try_into().ok()?;
    let first_oid = u64::from_le_bytes(oid_raw);
    let rows = u32::from_le_bytes(rows_raw);
    if expected.is_some_and(|e| first_oid != e) {
        return None;
    }
    Some(StreamBatch { first_oid, rows, payload: payload.get(12..)?.to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_record;
    use crate::testutil::tmpdir;

    fn open_at(dir: &Path, segment_bytes: u64) -> (StreamLog, Vec<StreamBatch>) {
        StreamLog::open(dir, SyncPolicy::Never, segment_bytes, Arc::new(SharedStats::default()))
            .unwrap()
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tmpdir("seglog");
        {
            let (mut log, replayed) = open_at(&dir, 1 << 20);
            assert!(replayed.is_empty());
            log.append_batch(0, 2, b"aa").unwrap();
            log.append_batch(2, 3, b"bbb").unwrap();
        }
        let (log, replayed) = open_at(&dir, 1 << 20);
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0], StreamBatch { first_oid: 0, rows: 2, payload: b"aa".to_vec() });
        assert_eq!(replayed[1].first_oid, 2);
        assert_eq!(log.end_oid(), 5);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_seals_segments_and_truncation_deletes_them() {
        let dir = tmpdir("seglog");
        {
            // Tiny segments: every append rotates.
            let (mut log, _) = open_at(&dir, 1);
            for i in 0..5u64 {
                log.append_batch(i * 10, 10, &[b'x'; 16]).unwrap();
            }
            assert_eq!(log.segment_count(), 5);
            // Watermark at 30 retires the first three sealed segments.
            log.truncate_below(30);
            assert_eq!(log.segment_count(), 2);
        }
        // Replay starts at the first surviving record.
        let (_, replayed) = open_at(&dir, 1);
        assert_eq!(replayed.first().map(|b| b.first_oid), Some(30));
        assert_eq!(replayed.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn damaged_tail_is_truncated_and_later_segments_dropped() {
        let dir = tmpdir("seglog");
        {
            let (mut log, _) = open_at(&dir, 1);
            for i in 0..4u64 {
                log.append_batch(i * 2, 2, &[i as u8; 8]).unwrap();
            }
        }
        // Corrupt the second segment's payload.
        let victim = segment_path(&dir, 1);
        let mut bytes = fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&victim, &bytes).unwrap();

        let stats = Arc::new(SharedStats::default());
        let (log, replayed) =
            StreamLog::open(&dir, SyncPolicy::Never, 1, stats.clone()).unwrap();
        // Only the first segment's batch survives; segments 2 and 3 are
        // unreachable past the gap and were deleted.
        assert_eq!(replayed.len(), 1);
        assert_eq!(log.end_oid(), 2);
        assert!(stats.snapshot().dropped_bytes > 0);
        assert!(!segment_path(&dir, 2).exists());
        assert!(!segment_path(&dir, 3).exists());
        drop(log);

        // The repaired log accepts appends and replays cleanly.
        let (mut log, replayed) = open_at(&dir, 1 << 20);
        assert_eq!(replayed.len(), 1);
        log.append_batch(2, 2, b"new").unwrap();
        drop(log);
        let (_, replayed) = open_at(&dir, 1 << 20);
        assert_eq!(replayed.len(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oid_gap_counts_as_damage() {
        let dir = tmpdir("seglog");
        {
            let (mut log, _) = open_at(&dir, 1 << 20);
            log.append_batch(0, 2, b"aa").unwrap();
            // Simulate a buggy writer / lost record by appending a
            // discontinuous batch directly.
            let mut record = Vec::new();
            record.extend_from_slice(&9u64.to_le_bytes());
            record.extend_from_slice(&1u32.to_le_bytes());
            record.extend_from_slice(b"zz");
            write_record(&mut log.active, &record).unwrap();
        }
        let (log, replayed) = open_at(&dir, 1 << 20);
        assert_eq!(replayed.len(), 1);
        assert_eq!(log.end_oid(), 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policies_apply() {
        let dir = tmpdir("seglog");
        let stats = Arc::new(SharedStats::default());
        let (mut log, _) =
            StreamLog::open(&dir, SyncPolicy::EveryN(2), 1 << 20, stats.clone()).unwrap();
        log.append_batch(0, 1, b"a").unwrap();
        assert_eq!(stats.snapshot().synced_batches, 0);
        log.append_batch(1, 1, b"b").unwrap();
        assert_eq!(stats.snapshot().synced_batches, 2);
        log.append_batch(2, 1, b"c").unwrap();
        log.sync().unwrap();
        assert_eq!(stats.snapshot().synced_batches, 3);
        assert_eq!(stats.snapshot().appended_batches, 3);
        fs::remove_dir_all(&dir).ok();
    }
}
