//! Record framing: every log record is `[len: u32 LE][crc32: u32 LE][payload]`.
//!
//! The CRC covers the payload only; the length is cross-checked against the
//! remaining file size (and a sanity ceiling) before any allocation, so a
//! bit-flip in the header cannot trigger a huge read. Scanning stops at the
//! first frame that fails either check — everything before it is the
//! *longest valid prefix*, everything after is a damaged tail the caller
//! truncates and reports.

use std::io::{self, Write};

use crate::crc::crc32;

/// Frame header size in bytes.
pub const HEADER_BYTES: usize = 8;

/// Sanity ceiling on one record's payload (a corrupt length field must not
/// cause a multi-GiB allocation).
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// Frame one record into an owned buffer (header + payload) — used where
/// the write itself must be a single fallible operation against the I/O
/// seam, so a short write can be detected and the torn frame repaired.
pub fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() as u64 <= MAX_RECORD_BYTES as u64);
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Append one framed record; returns the bytes written.
pub fn write_record(w: &mut impl Write, payload: &[u8]) -> io::Result<u64> {
    debug_assert!(payload.len() as u64 <= MAX_RECORD_BYTES as u64);
    let mut head = [0u8; HEADER_BYTES];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    Ok((HEADER_BYTES + payload.len()) as u64)
}

/// Iterator over the valid frame prefix of an in-memory log image.
pub struct FrameScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    damaged: bool,
}

impl<'a> FrameScanner<'a> {
    /// Scan `buf` from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameScanner { buf, pos: 0, damaged: false }
    }

    /// Byte length of the valid prefix scanned so far.
    pub fn valid_bytes(&self) -> u64 {
        self.pos as u64
    }

    /// Bytes past the valid prefix (partial or corrupt tail). Only final
    /// once the iterator has returned `None`.
    pub fn dropped_bytes(&self) -> u64 {
        (self.buf.len() - self.pos) as u64
    }

    /// Whether scanning stopped because of a damaged frame (as opposed to
    /// a clean end of input).
    pub fn is_damaged(&self) -> bool {
        self.damaged
    }
}

impl<'a> Iterator for FrameScanner<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        if self.damaged || self.buf.len() - self.pos < HEADER_BYTES {
            if self.pos < self.buf.len() && !self.damaged {
                self.damaged = true; // trailing partial header
            }
            return None;
        }
        let (Some(len), Some(crc)) = (
            read_u32(self.buf, self.pos),
            read_u32(self.buf, self.pos + 4),
        ) else {
            self.damaged = true;
            return None;
        };
        let start = self.pos + HEADER_BYTES;
        if len > MAX_RECORD_BYTES || start + len as usize > self.buf.len() {
            self.damaged = true;
            return None;
        }
        let Some(payload) = self.buf.get(start..start + len as usize) else {
            self.damaged = true;
            return None;
        };
        if crc32(payload) != crc {
            self.damaged = true;
            return None;
        }
        self.pos = start + len as usize;
        Some(payload)
    }
}

/// Little-endian `u32` at `pos`, or `None` when the buffer is too short.
fn read_u32(buf: &[u8], pos: usize) -> Option<u32> {
    let raw: [u8; 4] = buf.get(pos..pos + 4)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(payloads: &[&[u8]]) -> Vec<u8> {
        let mut buf = Vec::new();
        for p in payloads {
            write_record(&mut buf, p).unwrap();
        }
        buf
    }

    #[test]
    fn roundtrip_multiple_records() {
        let buf = log_of(&[b"alpha", b"", b"gamma gamma"]);
        let mut s = FrameScanner::new(&buf);
        assert_eq!(s.next(), Some(&b"alpha"[..]));
        assert_eq!(s.next(), Some(&b""[..]));
        assert_eq!(s.next(), Some(&b"gamma gamma"[..]));
        assert_eq!(s.next(), None);
        assert!(!s.is_damaged());
        assert_eq!(s.valid_bytes(), buf.len() as u64);
        assert_eq!(s.dropped_bytes(), 0);
    }

    #[test]
    fn truncation_keeps_valid_prefix() {
        let buf = log_of(&[b"one", b"two", b"three"]);
        // Cut in the middle of the last record.
        let cut = buf.len() - 2;
        let mut s = FrameScanner::new(&buf[..cut]);
        assert_eq!(s.by_ref().count(), 2);
        assert!(s.is_damaged());
        assert!(s.dropped_bytes() > 0);
        assert_eq!(s.valid_bytes() + s.dropped_bytes(), cut as u64);
    }

    #[test]
    fn bitflip_stops_at_damaged_record() {
        let mut buf = log_of(&[b"one", b"two", b"three"]);
        // Flip a payload byte of the second record.
        let off = HEADER_BYTES + 3 + HEADER_BYTES + 1;
        buf[off] ^= 0x40;
        let mut s = FrameScanner::new(&buf);
        assert_eq!(s.next(), Some(&b"one"[..]));
        assert_eq!(s.next(), None);
        assert!(s.is_damaged());
    }

    #[test]
    fn absurd_length_field_is_damage_not_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        let mut s = FrameScanner::new(&buf);
        assert_eq!(s.next(), None);
        assert!(s.is_damaged());
        assert_eq!(s.dropped_bytes(), buf.len() as u64);
    }

    #[test]
    fn partial_header_is_damage() {
        let buf = log_of(&[b"x"]);
        let mut cut = buf.clone();
        cut.extend_from_slice(&[1, 2, 3]); // 3 stray bytes, not a header
        let mut s = FrameScanner::new(&cut);
        assert_eq!(s.next(), Some(&b"x"[..]));
        assert_eq!(s.next(), None);
        assert!(s.is_damaged());
        assert_eq!(s.dropped_bytes(), 3);
    }
}
