//! Unique temporary directories for WAL unit tests.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh, unique directory under the system temp dir. Tests clean up
/// after themselves; leftovers from a crashed test run are harmless.
pub fn tmpdir(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "datacell-wal-{tag}-{}-{n}",
        std::process::id()
    ));
    // lint:allow(panic-freedom): test-only helper (the module is cfg(test)-gated in lib.rs)
    std::fs::create_dir_all(&dir).expect("create test tmpdir");
    dir
}
