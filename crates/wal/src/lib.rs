//! # datacell-wal
//!
//! The durability subsystem of the DataCell reproduction: streaming inside
//! a DBMS kernel is only an honest claim if the kernel's guarantees —
//! durability first among them — extend to the streaming state. This crate
//! provides the mechanism:
//!
//! * [`frame`] — CRC-32-guarded record framing (`[len][crc][payload]`);
//!   scanning a log keeps the longest valid prefix and reports the damaged
//!   tail, never panicking on torn or bit-flipped bytes;
//! * [`segment`] — per-stream append-only segment logs with rotation;
//!   basket retirement doubles as the truncation point (whole retired
//!   segments are deleted);
//! * [`meta`] — the single meta log for DDL / query / fire-state records,
//!   compacted by atomically written catalog snapshots;
//! * [`Wal`] — the directory-level manager the engine owns: fsync policy,
//!   shared [`WalStats`], snapshot handling.
//!
//! On-disk layout under [`WalConfig::dir`]:
//!
//! ```text
//! <dir>/
//!   snapshot.bin              catalog snapshot (atomic tmp+rename)
//!   meta.log                  DDL / queries / fire-state records
//!   streams/<stream>/
//!     000000000000.seg        ingest batches (rotated, retirement-truncated)
//!     000000000001.seg
//! ```
//!
//! Record *payload layouts* belong to `datacell-core`; this crate moves
//! opaque bytes durably. The division keeps every file-format rule (and its
//! fault-injection suite) in one place.

#![warn(missing_docs)]

pub mod crc;
pub mod error;
pub mod frame;
pub mod io;
pub mod meta;
pub mod segment;
pub mod stats;
mod wal;

#[cfg(test)]
pub(crate) mod testutil;

pub use error::{Result, WalError};
pub use io::{io_for, FaultyIo, RealIo, RetryPolicy, WalIo};
pub use segment::{StreamBatch, StreamLog};
pub use stats::{SharedStats, WalStats};
pub use wal::{SyncPolicy, Wal, WalConfig};
