//! The meta log and the catalog snapshot.
//!
//! The **meta log** (`meta.log`) records everything that is not stream
//! data: DDL, table inserts, continuous-query registration, pause flags and
//! per-fire factory state. It is a single CRC-framed append file, replayed
//! in order at recovery; a damaged tail is truncated to the longest valid
//! prefix (counted in [`WalStats`](crate::WalStats)). Writing a **catalog
//! snapshot** (`snapshot.bin`, one framed record, written atomically via
//! tmp-file + rename) compacts the meta log: the snapshot captures the
//! whole catalog + query state, so the meta log restarts empty.
//!
//! Payload layouts are owned by the engine (`datacell-core`); this module
//! moves opaque byte records durably and honestly.

use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use datacell_faults::FaultPoint;

use crate::error::{Result, WalError};
use crate::frame::{frame_bytes, write_record, FrameScanner};
use crate::io::{with_retry, RealIo, RetryPolicy, WalIo};
use crate::stats::SharedStats;
use crate::SyncPolicy;

/// Fsync a directory so a rename / create / unlink inside it survives a
/// power failure (POSIX: the directory entry is separate from the file
/// data). Platforms where directories cannot be opened report the error
/// to the caller, which treats it as best-effort where appropriate.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// The append-only meta log.
pub struct MetaLog {
    path: PathBuf,
    file: File,
    sync: SyncPolicy,
    stats: Arc<SharedStats>,
    io: Arc<dyn WalIo>,
    retry: RetryPolicy,
    unsynced: u64,
    /// Bytes in the log since the last reset (the engine's automatic
    /// checkpoint trigger reads this to keep recovery cost bounded).
    bytes: u64,
}

impl MetaLog {
    /// Open (or create) the meta log, replaying its surviving records,
    /// with direct OS I/O and the default retry policy. A damaged tail is
    /// truncated in place and counted as dropped bytes.
    pub fn open(
        path: impl Into<PathBuf>,
        sync: SyncPolicy,
        stats: Arc<SharedStats>,
    ) -> Result<(MetaLog, Vec<Vec<u8>>)> {
        MetaLog::open_with_io(path, sync, stats, Arc::new(RealIo), RetryPolicy::default())
    }

    /// [`MetaLog::open`] through an explicit I/O seam and retry policy.
    pub fn open_with_io(
        path: impl Into<PathBuf>,
        sync: SyncPolicy,
        stats: Arc<SharedStats>,
        io: Arc<dyn WalIo>,
        retry: RetryPolicy,
    ) -> Result<(MetaLog, Vec<Vec<u8>>)> {
        let path = path.into();
        let mut records = Vec::new();
        if path.exists() {
            let image = fs::read(&path)?;
            let mut scanner = FrameScanner::new(&image);
            for payload in scanner.by_ref() {
                records.push(payload.to_vec());
            }
            if scanner.dropped_bytes() > 0 {
                stats.add_dropped(scanner.dropped_bytes());
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(scanner.valid_bytes())?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok((MetaLog { path, file, sync, stats, io, retry, unsynced: 0, bytes }, records))
    }

    /// Bytes appended since the last [`MetaLog::reset`].
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Append one record.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let framed = frame_bytes(payload);
        // `bytes` tracks the file length exactly (open measures it, reset
        // zeroes it), so it doubles as the repair point for torn frames.
        let base = self.bytes;
        let io = self.io.clone();
        let file = &mut self.file;
        let written = with_retry(&self.retry, &self.stats, "meta append", |retrying| {
            if retrying {
                file.set_len(base)?;
            }
            io.write_all(file, &framed, FaultPoint::WalAppend)?;
            Ok(framed.len() as u64)
        })?;
        self.stats.add_meta(written);
        self.bytes += written;
        self.unsynced += 1;
        match self.sync {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                if self.unsynced >= n as u64 {
                    self.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Fsync pending records.
    pub fn sync(&mut self) -> Result<()> {
        let io = self.io.clone();
        let file = &self.file;
        with_retry(&self.retry, &self.stats, "meta fsync", |_| {
            io.sync_data(file, FaultPoint::WalFsync)
        })?;
        self.unsynced = 0;
        Ok(())
    }

    /// Restart the log empty (called after a snapshot captured its state).
    pub fn reset(&mut self) -> Result<()> {
        self.file = OpenOptions::new().write(true).truncate(true).open(&self.path)?;
        self.file.sync_data()?;
        self.unsynced = 0;
        self.bytes = 0;
        Ok(())
    }
}

/// Atomically write a snapshot record: frame into `<path>.tmp`, fsync,
/// rename over `path`, fsync the directory (so the rename itself is
/// durable, not just the file data).
pub fn write_snapshot(path: &Path, payload: &[u8]) -> Result<()> {
    write_snapshot_with(&RealIo, &RetryPolicy::default(), &SharedStats::default(), path, payload)
}

/// [`write_snapshot`] through an explicit I/O seam: the publish rename
/// consults [`FaultPoint::SnapshotRename`] and retries under `retry`. A
/// failed publish leaves the *previous* snapshot intact (the tmp file is
/// simply abandoned), so degraded here never loses the old catalog.
pub fn write_snapshot_with(
    io: &dyn WalIo,
    retry: &RetryPolicy,
    stats: &SharedStats,
    path: &Path,
    payload: &[u8],
) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        write_record(&mut f, payload)?;
        f.sync_data()?;
    }
    with_retry(retry, stats, "snapshot rename", |_| io.rename(&tmp, path))?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Read a snapshot written by [`write_snapshot`]. `Ok(None)` when the file
/// does not exist; `Err(Corrupt)` when it exists but fails its CRC — a
/// snapshot is written atomically, so damage here is not a torn tail and
/// must not be silently ignored.
pub fn read_snapshot(path: &Path) -> Result<Option<Vec<u8>>> {
    if !path.exists() {
        return Ok(None);
    }
    let image = fs::read(path)?;
    let mut scanner = FrameScanner::new(&image);
    match scanner.next() {
        Some(payload) => Ok(Some(payload.to_vec())),
        None => Err(WalError::Corrupt(format!(
            "snapshot {} failed its integrity check",
            path.display()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tmpdir;

    #[test]
    fn meta_log_roundtrip_and_reset() {
        let dir = tmpdir("meta");
        let path = dir.join("meta.log");
        let stats = Arc::new(SharedStats::default());
        {
            let (mut log, replayed) =
                MetaLog::open(&path, SyncPolicy::Never, stats.clone()).unwrap();
            assert!(replayed.is_empty());
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
        }
        let (mut log, replayed) = MetaLog::open(&path, SyncPolicy::Never, stats.clone()).unwrap();
        assert_eq!(replayed, vec![b"one".to_vec(), b"two".to_vec()]);
        log.reset().unwrap();
        log.append(b"three").unwrap();
        drop(log);
        let (_, replayed) = MetaLog::open(&path, SyncPolicy::Never, stats).unwrap();
        assert_eq!(replayed, vec![b"three".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_log_truncates_damaged_tail() {
        let dir = tmpdir("meta");
        let path = dir.join("meta.log");
        let stats = Arc::new(SharedStats::default());
        {
            let (mut log, _) = MetaLog::open(&path, SyncPolicy::Never, stats.clone()).unwrap();
            log.append(b"keep").unwrap();
            log.append(b"torn").unwrap();
        }
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 1); // torn final record
        fs::write(&path, &bytes).unwrap();
        let (mut log, replayed) = MetaLog::open(&path, SyncPolicy::Never, stats.clone()).unwrap();
        assert_eq!(replayed, vec![b"keep".to_vec()]);
        assert!(stats.snapshot().dropped_bytes > 0);
        // The truncated log accepts appends again.
        log.append(b"after").unwrap();
        drop(log);
        let (_, replayed) = MetaLog::open(&path, SyncPolicy::Never, stats).unwrap();
        assert_eq!(replayed, vec![b"keep".to_vec(), b"after".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_write_read_and_corruption() {
        let dir = tmpdir("snap");
        let path = dir.join("snapshot.bin");
        assert_eq!(read_snapshot(&path).unwrap(), None);
        write_snapshot(&path, b"catalog state").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Some(b"catalog state".to_vec()));
        // Overwrite is atomic: a second snapshot replaces the first.
        write_snapshot(&path, b"newer").unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), Some(b"newer".to_vec()));
        // A corrupt snapshot is an error, not a silent None.
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(WalError::Corrupt(_))));
        fs::remove_dir_all(&dir).ok();
    }
}
