//! Fault-injection property tests: a stream log whose bytes are truncated
//! or bit-flipped at an arbitrary offset must
//!
//! 1. never panic on recovery,
//! 2. keep the longest valid prefix of batches (verbatim, in order), and
//! 3. report the dropped suffix in [`WalStats::dropped_bytes`],
//!
//! and the repaired log must accept appends and replay cleanly afterwards
//! — the same guarantees `journals_pvldb` crash-point test batteries
//! demand of snapshot/recovery code.

//!
//! The second half of the file is the **runtime fault matrix**: live
//! appends through the [`FaultyIo`] seam under every `SyncPolicy` ×
//! fault-point × fault-kind combination, asserting the retry/give-up
//! counters and that whatever the log claims to have accepted replays
//! verbatim afterwards.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use datacell_faults::{FaultPlan, FaultPoint, Faults};
use datacell_wal::{io_for, RetryPolicy, SharedStats, StreamBatch, StreamLog, SyncPolicy};
use proptest::prelude::*;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "datacell-wal-prop-{}-{n}",
        std::process::id()
    ));
    fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

/// All segment files of a log dir, in replay (sequence) order.
fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    files.sort();
    files
}

fn total_bytes(files: &[PathBuf]) -> u64 {
    files.iter().map(|f| fs::metadata(f).unwrap().len()).sum()
}

/// Resolve a global offset over the concatenated segment files.
fn locate(files: &[PathBuf], mut offset: u64) -> (usize, u64) {
    for (i, f) in files.iter().enumerate() {
        let len = fs::metadata(f).unwrap().len();
        if offset < len {
            return (i, offset);
        }
        offset -= len;
    }
    (files.len() - 1, 0)
}

#[derive(Clone, Debug)]
enum Fault {
    /// Cut the concatenated log at this fraction of its length (all later
    /// bytes and files vanish — a torn multi-segment write).
    Truncate(u16),
    /// XOR one bit at this fraction of the concatenated length.
    BitFlip(u16, u8),
}

fn arb_fault() -> impl Strategy<Value = Fault> {
    prop_oneof![
        (0u16..1000).prop_map(Fault::Truncate),
        ((0u16..1000), (0u8..8)).prop_map(|(o, b)| Fault::BitFlip(o, b)),
    ]
}

fn write_log(dir: &Path, batches: &[Vec<u8>], segment_bytes: u64) {
    let stats = Arc::new(SharedStats::default());
    let (mut log, replayed) =
        StreamLog::open(dir, SyncPolicy::Never, segment_bytes, stats).unwrap();
    assert!(replayed.is_empty());
    let mut oid = 0u64;
    for payload in batches {
        let rows = payload.len().max(1) as u32;
        log.append_batch(oid, rows, payload).unwrap();
        oid += rows as u64;
    }
}

fn reopen(dir: &Path) -> (StreamLog, Vec<StreamBatch>, Arc<SharedStats>) {
    let stats = Arc::new(SharedStats::default());
    let (log, replayed) =
        StreamLog::open(dir, SyncPolicy::Never, 1 << 20, stats.clone()).unwrap();
    (log, replayed, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn damaged_stream_log_recovers_longest_valid_prefix(
        batches in prop::collection::vec(
            prop::collection::vec(0u16..256, 0..24)
                .prop_map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>()),
            1..12,
        ),
        segment_kib in 0u64..2,
        fault in arb_fault(),
    ) {
        let dir = tmpdir();
        // segment_bytes 1 forces a rotation per append; larger keeps one file.
        write_log(&dir, &batches, if segment_kib == 0 { 1 } else { 1024 });

        // Undamaged baseline replay.
        let (_, baseline, _) = reopen(&dir);
        prop_assert_eq!(baseline.len(), batches.len());

        // Inject the fault at a byte offset over the concatenated files.
        let files = segment_files(&dir);
        let total = total_bytes(&files);
        prop_assert!(total > 0);
        let is_flip = matches!(fault, Fault::BitFlip(..));
        let lost_suffix = match fault {
            Fault::Truncate(frac) => {
                let cut = total * frac as u64 / 1000;
                let (i, local) = locate(&files, cut);
                let mut bytes = fs::read(&files[i]).unwrap();
                bytes.truncate(local as usize);
                fs::write(&files[i], &bytes).unwrap();
                for f in &files[i + 1..] {
                    fs::remove_file(f).unwrap();
                }
                cut < total
            }
            Fault::BitFlip(frac, bit) => {
                let off = (total - 1) * frac as u64 / 1000;
                let (i, local) = locate(&files, off);
                let mut bytes = fs::read(&files[i]).unwrap();
                bytes[local as usize] ^= 1 << bit;
                fs::write(&files[i], &bytes).unwrap();
                true
            }
        };

        // 1. Recovery must not panic (any panic fails the test harness).
        let (_, replayed, stats) = reopen(&dir);

        // 2. Longest valid prefix, verbatim.
        prop_assert!(replayed.len() <= baseline.len());
        for (got, want) in replayed.iter().zip(&baseline) {
            prop_assert_eq!(got, want);
        }

        // 3. Anything lost is reported: a bit flip always leaves damaged
        // bytes behind; a truncation may cut cleanly on a frame boundary
        // (then the suffix is simply gone, with nothing left to drop).
        if lost_suffix {
            prop_assert!(replayed.len() < baseline.len());
            if is_flip {
                prop_assert!(stats.snapshot().dropped_bytes > 0);
            }
        } else {
            prop_assert_eq!(replayed.len(), baseline.len());
        }

        // 4. The repaired log accepts appends and replays them.
        let (mut log, replayed2, _) = reopen(&dir);
        prop_assert_eq!(replayed2.len(), replayed.len());
        let end = log.end_oid();
        log.append_batch(end, 3, b"post-repair").unwrap();
        drop(log);
        let (_, replayed3, stats3) = reopen(&dir);
        prop_assert_eq!(replayed3.len(), replayed.len() + 1);
        prop_assert_eq!(replayed3.last().unwrap().first_oid, end);
        prop_assert_eq!(stats3.snapshot().dropped_bytes, 0);

        fs::remove_dir_all(&dir).ok();
    }
}

/// The runtime fault matrix: every sync policy × fault point × fault
/// kind, one seeded `nth=2` rule each, six live appends through the
/// fault seam.
///
/// Contract being pinned down:
///
/// * retryable kinds (`eio`, `short`) are absorbed — the append succeeds,
///   `io_retries` counts the absorption, nothing gives up;
/// * `stall` only delays — no error, no retry, no give-up;
/// * `enospc` is non-retryable — the faulted operation errors
///   immediately, `io_gave_up` counts it (the trigger for the engine's
///   degraded-durability escalation), and the log keeps serving;
/// * a faulted **fsync** never loses the already-written append;
/// * whatever the run ends up accepting replays verbatim through a
///   clean reopen (valid-prefix recovery).
#[test]
fn runtime_fault_matrix_counts_retries_and_give_ups() {
    let policies = [SyncPolicy::Always, SyncPolicy::EveryN(2), SyncPolicy::Never];
    let points = [("wal_append", FaultPoint::WalAppend), ("wal_fsync", FaultPoint::WalFsync)];
    let kinds = ["eio", "short", "stall", "enospc"];

    for sync in policies {
        for (point_token, point) in points {
            for kind in kinds {
                let label = format!("{sync:?}/{point_token}/{kind}");
                let dir = tmpdir();
                let spec = format!("seed=42;{point_token}:nth=2:{kind}");
                let faults = Faults::enabled(FaultPlan::parse(&spec).expect("plan"));
                let stats = Arc::new(SharedStats::default());
                let (mut log, replayed) = StreamLog::open_with_io(
                    &dir,
                    sync,
                    1 << 20,
                    stats.clone(),
                    io_for(&faults),
                    RetryPolicy::default(),
                )
                .expect("open");
                assert!(replayed.is_empty(), "{label}");

                // The fsync point only sees traffic when the policy syncs.
                let fsync_active =
                    !matches!((point, sync), (FaultPoint::WalFsync, SyncPolicy::Never));
                // `stall` never errors; `short` is a no-op on fsync (there
                // is no payload to tear).
                let errors_expected = kind == "enospc" && fsync_active;
                let retries_expected = fsync_active
                    && matches!((kind, point), ("eio", _) | ("short", FaultPoint::WalAppend));

                let mut oid = 0u64;
                let mut errored = 0u32;
                for b in 0u8..6 {
                    let payload = vec![b; 8];
                    match log.append_batch(oid, 1, &payload) {
                        Ok(()) => oid += 1,
                        Err(e) => {
                            errored += 1;
                            assert!(errors_expected, "{label}: unexpected {e}");
                            if point == FaultPoint::WalAppend {
                                // Nothing was written; the caller retries
                                // the same batch on a now-clean schedule.
                                log.append_batch(oid, 1, &payload)
                                    .unwrap_or_else(|e| panic!("{label}: re-append {e}"));
                            }
                            // A faulted fsync leaves the append durable in
                            // the file; do not re-append (that would
                            // duplicate the batch).
                            oid += 1;
                        }
                    }
                }
                assert_eq!(errored > 0, errors_expected, "{label}");

                let snap = stats.snapshot();
                assert_eq!(snap.io_gave_up > 0, errors_expected, "{label}: {snap:?}");
                assert_eq!(snap.io_retries > 0, retries_expected, "{label}: {snap:?}");
                let expected_fires = u64::from(fsync_active);
                assert_eq!(faults.injected(point), expected_fires, "{label}");

                // Valid-prefix recovery: all six batches replay verbatim.
                drop(log);
                let (_, recovered, clean_stats) = reopen(&dir);
                assert_eq!(recovered.len(), 6, "{label}");
                for (i, batch) in recovered.iter().enumerate() {
                    assert_eq!(batch.first_oid, i as u64, "{label}");
                    assert_eq!(batch.payload, vec![i as u8; 8], "{label}");
                }
                assert_eq!(clean_stats.snapshot().dropped_bytes, 0, "{label}");
                fs::remove_dir_all(&dir).ok();
            }
        }
    }
}
