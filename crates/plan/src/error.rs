//! Error type for binding, optimization and execution.

use std::fmt;

use datacell_algebra::AlgebraError;
use datacell_sql::ParseError;
use datacell_storage::StorageError;

/// Errors produced by the planner/executor.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// SQL parse error.
    Parse(ParseError),
    /// Storage-layer error.
    Storage(StorageError),
    /// Algebra operator error.
    Algebra(AlgebraError),
    /// Name resolution failure.
    Binding(String),
    /// Query shape the engine does not support.
    Unsupported(String),
    /// A runtime input (stream delta / table snapshot) was missing.
    MissingSource(String),
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Parse(e) => write!(f, "{e}"),
            PlanError::Storage(e) => write!(f, "{e}"),
            PlanError::Algebra(e) => write!(f, "{e}"),
            PlanError::Binding(m) => write!(f, "binding error: {m}"),
            PlanError::Unsupported(m) => write!(f, "unsupported: {m}"),
            PlanError::MissingSource(m) => write!(f, "missing source at execution: {m}"),
            PlanError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ParseError> for PlanError {
    fn from(e: ParseError) -> Self {
        PlanError::Parse(e)
    }
}
impl From<StorageError> for PlanError {
    fn from(e: StorageError) -> Self {
        PlanError::Storage(e)
    }
}
impl From<AlgebraError> for PlanError {
    fn from(e: AlgebraError) -> Self {
        PlanError::Algebra(e)
    }
}

/// Convenience alias used throughout the plan crate.
pub type Result<T> = std::result::Result<T, PlanError>;
