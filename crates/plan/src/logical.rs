//! Logical query plans over bound expressions.
//!
//! The tree mirrors what the MonetDB SQL optimizer hands to DataCell: scans
//! at the leaves (tables *or* stream baskets — the same node, which is what
//! lets one factory "interact both with tables and baskets", paper §3),
//! candidate-producing filters, equi-joins, group/aggregate, sort and limit.

use datacell_algebra::AggKind;
use datacell_sql::WindowSpec;
use datacell_storage::DataType;

use crate::expr::BoundExpr;

/// One aggregate computation inside an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Which aggregate.
    pub kind: AggKind,
    /// Argument expression over the aggregate input; `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    /// Output column name.
    pub name: String,
    /// Output type.
    pub ty: DataType,
}

/// A leaf data source.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanNode {
    /// Binding name used by the query (alias or object name).
    pub binding: String,
    /// Catalog object name.
    pub object: String,
    /// Whether the object is a stream (⇒ the query is continuous).
    pub is_stream: bool,
    /// Window clause, if any (streams only).
    pub window: Option<WindowSpec>,
    /// Output column names (qualified with the binding).
    pub names: Vec<String>,
    /// Output column types.
    pub types: Vec<DataType>,
}

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Leaf scan of a table or stream basket.
    Scan(ScanNode),
    /// Candidate-producing selection.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Predicate over the input schema.
        predicate: BoundExpr,
    },
    /// Hash equi-join; output schema = left columns ++ right columns.
    Join {
        /// Left (probe) input.
        left: Box<LogicalPlan>,
        /// Right (build) input.
        right: Box<LogicalPlan>,
        /// Join key column in the left schema.
        left_key: usize,
        /// Join key column in the right schema.
        right_key: usize,
    },
    /// Bulk expression projection.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions over the input schema.
        exprs: Vec<BoundExpr>,
        /// Output names.
        names: Vec<String>,
        /// Output types.
        types: Vec<DataType>,
    },
    /// Group + aggregate; output = group keys then aggregate results.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Group key expressions over the input schema.
        group_exprs: Vec<BoundExpr>,
        /// Group key output names.
        group_names: Vec<String>,
        /// Group key output types.
        group_types: Vec<DataType>,
        /// Aggregates.
        aggs: Vec<AggSpec>,
    },
    /// Duplicate elimination over all columns.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Sort by key columns of the input schema.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(column, descending)` keys.
        keys: Vec<(usize, bool)>,
    },
    /// Keep the first `n` rows.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row bound.
        n: u64,
    },
}

impl LogicalPlan {
    /// Output column names.
    pub fn names(&self) -> Vec<String> {
        match self {
            LogicalPlan::Scan(s) => s.names.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.names(),
            LogicalPlan::Join { left, right, .. } => {
                let mut v = left.names();
                v.extend(right.names());
                v
            }
            LogicalPlan::Project { names, .. } => names.clone(),
            LogicalPlan::Aggregate { group_names, aggs, .. } => {
                let mut v = group_names.clone();
                v.extend(aggs.iter().map(|a| a.name.clone()));
                v
            }
        }
    }

    /// Output column types.
    pub fn types(&self) -> Vec<DataType> {
        match self {
            LogicalPlan::Scan(s) => s.types.clone(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.types(),
            LogicalPlan::Join { left, right, .. } => {
                let mut v = left.types();
                v.extend(right.types());
                v
            }
            LogicalPlan::Project { types, .. } => types.clone(),
            LogicalPlan::Aggregate { group_types, aggs, .. } => {
                let mut v = group_types.clone();
                v.extend(aggs.iter().map(|a| a.ty));
                v
            }
        }
    }

    /// Number of output columns.
    pub fn arity(&self) -> usize {
        self.types().len()
    }

    /// All scans in the plan, left to right.
    pub fn scans(&self) -> Vec<&ScanNode> {
        let mut out = Vec::new();
        self.visit_scans(&mut out);
        out
    }

    fn visit_scans<'a>(&'a self, out: &mut Vec<&'a ScanNode>) {
        match self {
            LogicalPlan::Scan(s) => out.push(s),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.visit_scans(out),
            LogicalPlan::Join { left, right, .. } => {
                left.visit_scans(out);
                right.visit_scans(out);
            }
        }
    }

    /// True iff any scan reads a stream (⇒ this is a continuous query).
    pub fn is_continuous(&self) -> bool {
        self.scans().iter().any(|s| s.is_stream)
    }

    /// True iff the top of the plan (ignoring Sort/Limit/Project/Filter)
    /// is an Aggregate node — the shape the incremental rewriter targets.
    pub fn aggregate_node(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::Aggregate { .. } => Some(self),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Limit { input, .. } => input.aggregate_node(),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::Value;

    fn scan(binding: &str, stream: bool) -> LogicalPlan {
        LogicalPlan::Scan(ScanNode {
            binding: binding.into(),
            object: binding.into(),
            is_stream: stream,
            window: None,
            names: vec![format!("{binding}.a"), format!("{binding}.b")],
            types: vec![DataType::Int, DataType::Float],
        })
    }

    #[test]
    fn schema_propagation() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t", false)),
            predicate: BoundExpr::Const(Value::Bool(true)),
        };
        assert_eq!(plan.names(), vec!["t.a", "t.b"]);
        assert_eq!(plan.types(), vec![DataType::Int, DataType::Float]);
    }

    #[test]
    fn join_concats_schemas() {
        let plan = LogicalPlan::Join {
            left: Box::new(scan("l", true)),
            right: Box::new(scan("r", false)),
            left_key: 0,
            right_key: 0,
        };
        assert_eq!(plan.arity(), 4);
        assert_eq!(plan.names()[2], "r.a");
        assert!(plan.is_continuous());
        assert_eq!(plan.scans().len(), 2);
    }

    #[test]
    fn aggregate_schema() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan("s", true)),
            group_exprs: vec![BoundExpr::Col(0)],
            group_names: vec!["s.a".into()],
            group_types: vec![DataType::Int],
            aggs: vec![AggSpec {
                kind: AggKind::Sum,
                arg: Some(BoundExpr::Col(1)),
                name: "SUM(s.b)".into(),
                ty: DataType::Float,
            }],
        };
        assert_eq!(plan.names(), vec!["s.a", "SUM(s.b)"]);
        assert_eq!(plan.types(), vec![DataType::Int, DataType::Float]);
        assert!(plan.aggregate_node().is_some());
    }
}
