//! Rule-based optimizer over logical plans.
//!
//! DataCell reuses "the complete optimizer stack" of the host DBMS (paper
//! §1); here that stack is a small rule pipeline: constant folding,
//! conjunction splitting, filter pushdown through projections and joins,
//! and trivial-filter elimination. The continuous rewriter
//! ([`crate::continuous`]) runs *after* these rules, exactly as DataCell
//! rewrites the optimizer's output plan.

use datacell_algebra::ArithOp;
use datacell_storage::Value;

use crate::expr::BoundExpr;
use crate::logical::LogicalPlan;

/// Names of the rules applied, in order (for EXPLAIN/ablation output).
pub const RULES: &[&str] = &[
    "fold_constants",
    "merge_filters",
    "push_filter_through_join",
    "drop_trivial_filters",
];

/// Optimize a plan: apply all rules to fixpoint (bounded).
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut plan = plan;
    for _ in 0..8 {
        let (next, changed) = pass(plan);
        plan = next;
        if !changed {
            break;
        }
    }
    plan
}

fn pass(plan: LogicalPlan) -> (LogicalPlan, bool) {
    let mut changed = false;
    let plan = rewrite(plan, &mut changed);
    (plan, changed)
}

fn rewrite(plan: LogicalPlan, changed: &mut bool) -> LogicalPlan {
    // bottom-up
    let plan = match plan {
        LogicalPlan::Scan(s) => LogicalPlan::Scan(s),
        LogicalPlan::Filter { input, predicate } => {
            let input = Box::new(rewrite(*input, changed));
            let predicate = fold_expr(predicate, changed);
            LogicalPlan::Filter { input, predicate }
        }
        LogicalPlan::Join { left, right, left_key, right_key } => LogicalPlan::Join {
            left: Box::new(rewrite(*left, changed)),
            right: Box::new(rewrite(*right, changed)),
            left_key,
            right_key,
        },
        LogicalPlan::Project { input, exprs, names, types } => LogicalPlan::Project {
            input: Box::new(rewrite(*input, changed)),
            exprs: exprs.into_iter().map(|e| fold_expr(e, changed)).collect(),
            names,
            types,
        },
        LogicalPlan::Aggregate { input, group_exprs, group_names, group_types, aggs } => {
            LogicalPlan::Aggregate {
                input: Box::new(rewrite(*input, changed)),
                group_exprs: group_exprs.into_iter().map(|e| fold_expr(e, changed)).collect(),
                group_names,
                group_types,
                aggs,
            }
        }
        LogicalPlan::Distinct { input } => {
            LogicalPlan::Distinct { input: Box::new(rewrite(*input, changed)) }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(rewrite(*input, changed)), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(rewrite(*input, changed)), n }
        }
    };

    // local rules at this node
    let plan = merge_filters(plan, changed);
    let plan = push_filter_through_join(plan, changed);
    drop_trivial_filter(plan, changed)
}

// ---- rule: constant folding -------------------------------------------

fn fold_expr(expr: BoundExpr, changed: &mut bool) -> BoundExpr {
    match expr {
        BoundExpr::Arith { left, op, right } => {
            let l = fold_expr(*left, changed);
            let r = fold_expr(*right, changed);
            if let (BoundExpr::Const(a), BoundExpr::Const(b)) = (&l, &r) {
                if let Some(v) = fold_arith(op, a, b) {
                    *changed = true;
                    return BoundExpr::Const(v);
                }
            }
            BoundExpr::Arith { left: Box::new(l), op, right: Box::new(r) }
        }
        BoundExpr::Cmp { left, op, right } => {
            let l = fold_expr(*left, changed);
            let r = fold_expr(*right, changed);
            if let (BoundExpr::Const(a), BoundExpr::Const(b)) = (&l, &r) {
                let v = match a.sql_cmp(b) {
                    None => Value::Null,
                    Some(ord) => Value::Bool(op.eval(Some(ord))),
                };
                *changed = true;
                return BoundExpr::Const(v);
            }
            BoundExpr::Cmp { left: Box::new(l), op, right: Box::new(r) }
        }
        BoundExpr::And(a, b) => {
            let a = fold_expr(*a, changed);
            let b = fold_expr(*b, changed);
            match (&a, &b) {
                (BoundExpr::Const(Value::Bool(true)), _) => {
                    *changed = true;
                    b
                }
                (_, BoundExpr::Const(Value::Bool(true))) => {
                    *changed = true;
                    a
                }
                (BoundExpr::Const(Value::Bool(false)), _)
                | (_, BoundExpr::Const(Value::Bool(false))) => {
                    *changed = true;
                    BoundExpr::Const(Value::Bool(false))
                }
                _ => BoundExpr::And(Box::new(a), Box::new(b)),
            }
        }
        BoundExpr::Or(a, b) => {
            let a = fold_expr(*a, changed);
            let b = fold_expr(*b, changed);
            match (&a, &b) {
                (BoundExpr::Const(Value::Bool(false)), _) => {
                    *changed = true;
                    b
                }
                (_, BoundExpr::Const(Value::Bool(false))) => {
                    *changed = true;
                    a
                }
                (BoundExpr::Const(Value::Bool(true)), _)
                | (_, BoundExpr::Const(Value::Bool(true))) => {
                    *changed = true;
                    BoundExpr::Const(Value::Bool(true))
                }
                _ => BoundExpr::Or(Box::new(a), Box::new(b)),
            }
        }
        BoundExpr::Not(e) => {
            let e = fold_expr(*e, changed);
            if let BoundExpr::Const(Value::Bool(b)) = e {
                *changed = true;
                BoundExpr::Const(Value::Bool(!b))
            } else {
                BoundExpr::Not(Box::new(e))
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let e = fold_expr(*expr, changed);
            if let BoundExpr::Const(v) = &e {
                *changed = true;
                return BoundExpr::Const(Value::Bool(v.is_null() != negated));
            }
            BoundExpr::IsNull { expr: Box::new(e), negated }
        }
        BoundExpr::Between { expr, low, high, negated } => BoundExpr::Between {
            expr: Box::new(fold_expr(*expr, changed)),
            low: Box::new(fold_expr(*low, changed)),
            high: Box::new(fold_expr(*high, changed)),
            negated,
        },
        leaf => leaf,
    }
}

fn fold_arith(op: ArithOp, a: &Value, b: &Value) -> Option<Value> {
    if a.is_null() || b.is_null() {
        return Some(Value::Null);
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => match op {
            ArithOp::Add => Some(Value::Int(x.wrapping_add(*y))),
            ArithOp::Sub => Some(Value::Int(x.wrapping_sub(*y))),
            ArithOp::Mul => Some(Value::Int(x.wrapping_mul(*y))),
            ArithOp::Div => {
                if *y == 0 {
                    Some(Value::Null)
                } else {
                    Some(Value::Int(x.wrapping_div(*y)))
                }
            }
            ArithOp::Mod => {
                if *y == 0 {
                    Some(Value::Null)
                } else {
                    Some(Value::Int(x.wrapping_rem(*y)))
                }
            }
        },
        _ => {
            let x = a.as_float()?;
            let y = b.as_float()?;
            let v = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x % y,
            };
            Some(Value::Float(v))
        }
    }
}

// ---- rule: merge adjacent filters ---------------------------------------

fn merge_filters(plan: LogicalPlan, changed: &mut bool) -> LogicalPlan {
    if let LogicalPlan::Filter { input, predicate } = plan {
        if let LogicalPlan::Filter { input: inner, predicate: p2 } = *input {
            *changed = true;
            return LogicalPlan::Filter {
                input: inner,
                // inner predicate first: it was closer to the scan
                predicate: BoundExpr::And(Box::new(p2), Box::new(predicate)),
            };
        }
        return LogicalPlan::Filter { input, predicate };
    }
    plan
}

// ---- rule: push filters through joins ------------------------------------

fn push_filter_through_join(plan: LogicalPlan, changed: &mut bool) -> LogicalPlan {
    let LogicalPlan::Filter { input, predicate } = plan else {
        return plan;
    };
    let LogicalPlan::Join { left, right, left_key, right_key } = *input else {
        return LogicalPlan::Filter { input, predicate };
    };

    let left_arity = left.arity();
    let mut conjuncts = Vec::new();
    split_and(predicate, &mut conjuncts);

    let mut left_preds = Vec::new();
    let mut right_preds = Vec::new();
    let mut keep = Vec::new();
    for c in conjuncts {
        let mut cols = Vec::new();
        c.collect_cols(&mut cols);
        if !cols.is_empty() && cols.iter().all(|&i| i < left_arity) {
            left_preds.push(c);
        } else if !cols.is_empty() && cols.iter().all(|&i| i >= left_arity) {
            let mapping: Vec<usize> = (0..left_arity + right.arity())
                .map(|i| i.saturating_sub(left_arity))
                .collect();
            right_preds.push(c.remap(&mapping));
        } else {
            keep.push(c);
        }
    }

    if left_preds.is_empty() && right_preds.is_empty() {
        return LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join { left, right, left_key, right_key }),
            predicate: and_list(keep),
        };
    }
    *changed = true;

    let new_left = match and_opt(left_preds) {
        Some(p) => Box::new(LogicalPlan::Filter { input: left, predicate: p }),
        None => left,
    };
    let new_right = match and_opt(right_preds) {
        Some(p) => Box::new(LogicalPlan::Filter { input: right, predicate: p }),
        None => right,
    };
    let join = LogicalPlan::Join { left: new_left, right: new_right, left_key, right_key };
    match and_opt(keep) {
        Some(p) => LogicalPlan::Filter { input: Box::new(join), predicate: p },
        None => join,
    }
}

fn split_and(expr: BoundExpr, out: &mut Vec<BoundExpr>) {
    match expr {
        BoundExpr::And(a, b) => {
            split_and(*a, out);
            split_and(*b, out);
        }
        other => out.push(other),
    }
}

fn and_opt(preds: Vec<BoundExpr>) -> Option<BoundExpr> {
    let mut it = preds.into_iter();
    let first = it.next()?;
    Some(it.fold(first, |acc, p| BoundExpr::And(Box::new(acc), Box::new(p))))
}

fn and_list(preds: Vec<BoundExpr>) -> BoundExpr {
    and_opt(preds).unwrap_or(BoundExpr::Const(Value::Bool(true)))
}

// ---- rule: drop trivial filters -------------------------------------------

fn drop_trivial_filter(plan: LogicalPlan, changed: &mut bool) -> LogicalPlan {
    if let LogicalPlan::Filter { input, predicate } = plan {
        if matches!(predicate, BoundExpr::Const(Value::Bool(true))) {
            *changed = true;
            return *input;
        }
        return LogicalPlan::Filter { input, predicate };
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::ScanNode;
    use datacell_algebra::CmpOp;
    use datacell_storage::DataType;

    fn scan(binding: &str, cols: usize) -> LogicalPlan {
        LogicalPlan::Scan(ScanNode {
            binding: binding.into(),
            object: binding.into(),
            is_stream: false,
            window: None,
            names: (0..cols).map(|i| format!("{binding}.c{i}")).collect(),
            types: vec![DataType::Int; cols],
        })
    }

    fn cmp(col: usize, op: CmpOp, k: i64) -> BoundExpr {
        BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(col)),
            op,
            right: Box::new(BoundExpr::Const(Value::Int(k))),
        }
    }

    #[test]
    fn folds_constants() {
        let mut ch = false;
        let e = BoundExpr::Arith {
            left: Box::new(BoundExpr::Const(Value::Int(2))),
            op: ArithOp::Mul,
            right: Box::new(BoundExpr::Const(Value::Int(21))),
        };
        assert_eq!(fold_expr(e, &mut ch), BoundExpr::Const(Value::Int(42)));
        assert!(ch);
    }

    #[test]
    fn folds_boolean_shortcuts() {
        let mut ch = false;
        let e = BoundExpr::And(
            Box::new(BoundExpr::Const(Value::Bool(true))),
            Box::new(cmp(0, CmpOp::Gt, 1)),
        );
        assert_eq!(fold_expr(e, &mut ch), cmp(0, CmpOp::Gt, 1));
        let e = BoundExpr::Or(
            Box::new(BoundExpr::Const(Value::Bool(true))),
            Box::new(cmp(0, CmpOp::Gt, 1)),
        );
        assert_eq!(fold_expr(e, &mut ch), BoundExpr::Const(Value::Bool(true)));
    }

    #[test]
    fn drops_true_filter() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t", 2)),
            predicate: BoundExpr::Const(Value::Bool(true)),
        };
        assert_eq!(optimize(plan), scan("t", 2));
    }

    #[test]
    fn merges_filters() {
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan("t", 2)),
                predicate: cmp(0, CmpOp::Gt, 1),
            }),
            predicate: cmp(1, CmpOp::Lt, 9),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Filter { predicate: BoundExpr::And(..), input } => {
                assert!(matches!(*input, LogicalPlan::Scan(_)));
            }
            other => panic!("expected merged filter, got {other:?}"),
        }
    }

    #[test]
    fn pushes_filters_through_join() {
        // Filter(l.c0 > 1 AND r.c0 < 5) over Join(l:2 cols, r:2 cols)
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan("l", 2)),
                right: Box::new(scan("r", 2)),
                left_key: 0,
                right_key: 0,
            }),
            predicate: BoundExpr::And(
                Box::new(cmp(0, CmpOp::Gt, 1)),
                Box::new(cmp(2, CmpOp::Lt, 5)),
            ),
        };
        let opt = optimize(plan);
        match &opt {
            LogicalPlan::Join { left, right, .. } => {
                assert!(matches!(&**left, LogicalPlan::Filter { .. }), "{opt:?}");
                match &**right {
                    LogicalPlan::Filter { predicate, .. } => {
                        // remapped to right-local column 0
                        assert_eq!(*predicate, cmp(0, CmpOp::Lt, 5));
                    }
                    other => panic!("right not filtered: {other:?}"),
                }
            }
            other => panic!("expected join at top, got {other:?}"),
        }
    }

    #[test]
    fn cross_side_predicate_stays_above() {
        // l.c0 < r.c0 references both sides → must stay above the join
        let pred = BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(0)),
            op: CmpOp::Lt,
            right: Box::new(BoundExpr::Col(2)),
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan("l", 2)),
                right: Box::new(scan("r", 2)),
                left_key: 0,
                right_key: 0,
            }),
            predicate: pred.clone(),
        };
        let opt = optimize(plan);
        match opt {
            LogicalPlan::Filter { predicate, .. } => assert_eq!(predicate, pred),
            other => panic!("filter should remain on top: {other:?}"),
        }
    }

    #[test]
    fn is_null_on_constants_folds() {
        let mut ch = false;
        let e = BoundExpr::IsNull {
            expr: Box::new(BoundExpr::Const(Value::Null)),
            negated: false,
        };
        assert_eq!(fold_expr(e, &mut ch), BoundExpr::Const(Value::Bool(true)));
    }

    #[test]
    fn optimizer_is_idempotent() {
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(scan("l", 1)),
                right: Box::new(scan("r", 1)),
                left_key: 0,
                right_key: 0,
            }),
            predicate: cmp(0, CmpOp::Gt, 1),
        };
        let once = optimize(plan);
        let twice = optimize(once.clone());
        assert_eq!(once, twice);
    }
}
