//! `EXPLAIN ANALYZE` rendering: the per-factory observed-runtime table.
//!
//! The engine collects the numbers (firing counts, rows, latency
//! percentiles from its per-factory histograms) and hands them over as
//! plain [`AnalyzeRow`]s — this module only formats, so the plan layer
//! stays free of any observability dependency.

/// Observed runtime of one continuous query's factory.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalyzeRow {
    /// Engine-assigned query id.
    pub qid: u64,
    /// Effective execution mode, rendered (`reeval` / `incr`).
    pub mode: String,
    /// Firings so far.
    pub firings: u64,
    /// Stream tuples consumed.
    pub rows_in: u64,
    /// Result tuples produced.
    pub rows_out: u64,
    /// Total evaluation time in microseconds.
    pub busy_us: u64,
    /// Median single-firing latency (microseconds).
    pub p50_us: f64,
    /// 95th-percentile single-firing latency (microseconds).
    pub p95_us: f64,
    /// 99th-percentile single-firing latency (microseconds).
    pub p99_us: f64,
    /// Result chunks the query's subscribers lost to overflow.
    pub dropped: u64,
}

/// Render the `EXPLAIN ANALYZE` / `STATS DETAIL` timing table.
pub fn render_analyze(rows: &[AnalyzeRow]) -> String {
    let mut out = String::from("== analyze ==\n");
    out.push_str(
        "id   mode    firings    rows_in   rows_out    busy_us   p50_us   p95_us   p99_us  dropped\n",
    );
    for r in rows {
        out.push_str(&format!(
            "q{:<3} {:<6} {:>8} {:>10} {:>10} {:>10} {:>8.0} {:>8.0} {:>8.0} {:>8}\n",
            r.qid,
            r.mode,
            r.firings,
            r.rows_in,
            r.rows_out,
            r.busy_us,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.dropped,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_one_row_per_factory() {
        let rows = vec![
            AnalyzeRow {
                qid: 1,
                mode: "incr".into(),
                firings: 10,
                rows_in: 1000,
                rows_out: 10,
                busy_us: 420,
                p50_us: 35.0,
                p95_us: 80.0,
                p99_us: 120.0,
                dropped: 0,
            },
            AnalyzeRow { qid: 2, mode: "reeval".into(), dropped: 3, ..Default::default() },
        ];
        let text = render_analyze(&rows);
        assert!(text.starts_with("== analyze ==\n"));
        assert!(text.contains("q1   incr"));
        assert!(text.contains("q2   reeval"));
        // Header + 2 data rows.
        assert_eq!(text.lines().count(), 4);
        // Percentiles render as whole microseconds.
        assert!(text.contains("35"));
        assert!(text.contains("120"));
    }
}
