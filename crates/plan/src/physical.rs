//! Plan execution: evaluate a [`LogicalPlan`] against bound sources using
//! the bulk columnar algebra.
//!
//! The executor is deliberately *pull-at-once*: each operator consumes its
//! whole input chunk and produces a whole output chunk, the bulk processing
//! model of the MonetDB kernel ("an efficient bulk processing model instead
//! of the typical tuple-at-a-time volcano approach", paper §3). The same
//! executor runs one-time queries over tables and per-window evaluations of
//! continuous queries — the factory supplies different source chunks.

use std::collections::HashMap;

use datacell_algebra::{
    aggregate_groups, fetch_chunk, group_by, hash_join, sort_positions, states_to_bat,
    AggState, Candidates, SortKey, SortOrder,
};
use datacell_storage::{Bat, Chunk};

use crate::error::{PlanError, Result};
use crate::expr::{eval_expr, eval_predicate, BoundExpr};
use crate::logical::LogicalPlan;

/// Bound inputs for one plan evaluation: binding name → column chunk.
///
/// The engine fills this with basket windows for stream scans and table
/// snapshots for table scans.
#[derive(Debug, Clone, Default)]
pub struct ExecSources {
    chunks: HashMap<String, Chunk>,
}

impl ExecSources {
    /// Empty source set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Provide the chunk a scan of `binding` will read.
    pub fn bind(&mut self, binding: impl Into<String>, chunk: Chunk) -> &mut Self {
        self.chunks.insert(binding.into().to_ascii_lowercase(), chunk);
        self
    }

    /// Look up a binding.
    pub fn get(&self, binding: &str) -> Option<&Chunk> {
        self.chunks.get(&binding.to_ascii_lowercase())
    }
}

/// Per-operator execution trace entry (feeds the monitor pane: "we can
/// monitor where tuples live at any point in time", paper §4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    /// Operator label, e.g. `"Filter"`.
    pub op: &'static str,
    /// Rows flowing out of the operator.
    pub rows_out: usize,
    /// Approximate bytes of the intermediate result.
    pub bytes: usize,
}

/// Execute `plan` against `sources`.
pub fn execute(plan: &LogicalPlan, sources: &ExecSources) -> Result<Chunk> {
    let mut trace = Vec::new();
    execute_traced(plan, sources, &mut trace)
}

/// Execute while recording a per-operator trace (monitor support).
pub fn execute_traced(
    plan: &LogicalPlan,
    sources: &ExecSources,
    trace: &mut Vec<OpTrace>,
) -> Result<Chunk> {
    let out = match plan {
        LogicalPlan::Scan(scan) => sources
            .get(&scan.binding)
            .cloned()
            .ok_or_else(|| PlanError::MissingSource(scan.binding.clone()))?,
        LogicalPlan::Filter { input, predicate } => {
            let chunk = execute_traced(input, sources, trace)?;
            if chunk.arity() == 0 {
                chunk
            } else {
                let cand = Candidates::all(chunk.column(0));
                let hits = eval_predicate(predicate, &chunk, &cand)?;
                fetch_chunk(&chunk, &hits)
            }
        }
        LogicalPlan::Join { left, right, left_key, right_key } => {
            let lc = execute_traced(left, sources, trace)?;
            let rc = execute_traced(right, sources, trace)?;
            join_chunks(&lc, &rc, *left_key, *right_key)?
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let chunk = execute_traced(input, sources, trace)?;
            project_chunk(&chunk, exprs)?
        }
        LogicalPlan::Aggregate { input, group_exprs, aggs, group_types, .. } => {
            let chunk = execute_traced(input, sources, trace)?;
            aggregate_chunk(&chunk, group_exprs, group_types, aggs)?
        }
        LogicalPlan::Distinct { input } => {
            let chunk = execute_traced(input, sources, trace)?;
            distinct_chunk(&chunk)?
        }
        LogicalPlan::Sort { input, keys } => {
            let chunk = execute_traced(input, sources, trace)?;
            sort_chunk(&chunk, keys)?
        }
        LogicalPlan::Limit { input, n } => {
            let chunk = execute_traced(input, sources, trace)?;
            let n = (*n as usize).min(chunk.len());
            let positions: Vec<usize> = (0..n).collect();
            chunk.gather_positions(&positions)
        }
    };
    trace.push(OpTrace { op: op_name(plan), rows_out: out.len(), bytes: out.byte_size() });
    Ok(out)
}

fn op_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan(_) => "Scan",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Aggregate { .. } => "Aggregate",
        LogicalPlan::Distinct { .. } => "Distinct",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
    }
}

/// Inner hash equi-join of two chunks on one key column each.
pub fn join_chunks(left: &Chunk, right: &Chunk, lk: usize, rk: usize) -> Result<Chunk> {
    let (lp, rp) = hash_join(left.column(lk), right.column(rk), None, None);
    let mut cols = Vec::with_capacity(left.arity() + right.arity());
    for c in left.columns() {
        cols.push(c.gather_positions(&lp));
    }
    for c in right.columns() {
        cols.push(c.gather_positions(&rp));
    }
    Ok(Chunk::new(cols)?)
}

/// Evaluate projection expressions into a new chunk.
pub fn project_chunk(chunk: &Chunk, exprs: &[BoundExpr]) -> Result<Chunk> {
    let cand = if chunk.arity() == 0 {
        Candidates::range(0, chunk.len() as u64)
    } else {
        Candidates::all(chunk.column(0))
    };
    let cols: Result<Vec<Bat>> = exprs.iter().map(|e| eval_expr(e, chunk, &cand)).collect();
    Ok(Chunk::new(cols?)?)
}

/// Group + aggregate a chunk. With no group keys the result is exactly one
/// row (global aggregation), even for empty input — SQL semantics.
pub fn aggregate_chunk(
    chunk: &Chunk,
    group_exprs: &[BoundExpr],
    group_types: &[datacell_storage::DataType],
    aggs: &[crate::logical::AggSpec],
) -> Result<Chunk> {
    let states = aggregate_states(chunk, group_exprs, aggs)?;
    let mut cols: Vec<Bat> = Vec::with_capacity(group_exprs.len() + aggs.len());

    if group_exprs.is_empty() {
        for (spec, state) in aggs.iter().zip(&states.agg_states) {
            cols.push(states_to_bat(std::slice::from_ref(&state[0]), spec.ty)?);
        }
        debug_assert!(states.group_keys.is_empty());
    } else {
        for (i, _) in group_exprs.iter().enumerate() {
            cols.push(cast_or_self(&states.group_keys[i], group_types[i])?);
        }
        for (spec, state) in aggs.iter().zip(&states.agg_states) {
            cols.push(states_to_bat(state, spec.ty)?);
        }
    }
    Ok(Chunk::new(cols)?)
}

fn cast_or_self(bat: &Bat, ty: datacell_storage::DataType) -> Result<Bat> {
    if bat.data_type() == ty {
        Ok(bat.clone())
    } else {
        Ok(datacell_algebra::cast(bat, ty)?)
    }
}

/// The partial form of an aggregation: group key columns plus per-group
/// [`AggState`]s for every aggregate. This is what incremental basic
/// windows cache and merge.
#[derive(Debug, Clone)]
pub struct GroupedStates {
    /// One materialized key column per group expression (group-id order).
    pub group_keys: Vec<Bat>,
    /// `agg_states[a][g]` = state of aggregate `a` for group `g`.
    pub agg_states: Vec<Vec<AggState>>,
}

impl GroupedStates {
    /// Number of groups.
    pub fn ngroups(&self) -> usize {
        self.agg_states.first().map_or(0, Vec::len)
    }
}

/// Compute the partial aggregation states of one chunk.
pub fn aggregate_states(
    chunk: &Chunk,
    group_exprs: &[BoundExpr],
    aggs: &[crate::logical::AggSpec],
) -> Result<GroupedStates> {
    let cand = if chunk.arity() == 0 {
        Candidates::range(0, chunk.len() as u64)
    } else {
        Candidates::all(chunk.column(0))
    };

    if group_exprs.is_empty() {
        // Global aggregation: one state per aggregate.
        let mut agg_states = Vec::with_capacity(aggs.len());
        for spec in aggs {
            let mut st = AggState::new(spec.kind);
            match &spec.arg {
                Some(arg) => {
                    let vals = eval_expr(arg, chunk, &cand)?;
                    st.update_bulk(&vals, None);
                }
                None => {
                    // COUNT(*): every candidate row counts.
                    for _ in 0..cand.len() {
                        st.update(&datacell_storage::Value::Bool(true));
                    }
                }
            }
            agg_states.push(vec![st]);
        }
        return Ok(GroupedStates { group_keys: Vec::new(), agg_states });
    }

    // Evaluate key expressions, group, then steer each aggregate.
    let keys: Result<Vec<Bat>> =
        group_exprs.iter().map(|e| eval_expr(e, chunk, &cand)).collect();
    let keys = keys?;
    let key_refs: Vec<&Bat> = keys.iter().collect();
    let map = group_by(&key_refs, None)?;

    let mut agg_states = Vec::with_capacity(aggs.len());
    for spec in aggs {
        let states = match &spec.arg {
            Some(arg) => {
                let vals = eval_expr(arg, chunk, &cand)?;
                aggregate_groups(spec.kind, &vals, &map, None)?
            }
            None => {
                // COUNT(*): aggregate a constant over the groups.
                let ones = Bat::from_ints(vec![1; map.len()]);
                aggregate_groups(spec.kind, &ones, &map, None)?
            }
        };
        agg_states.push(states);
    }
    let group_keys = key_refs
        .iter()
        .map(|k| k.gather_positions(&map.representatives))
        .collect();
    Ok(GroupedStates { group_keys, agg_states })
}

/// Duplicate elimination across all columns.
pub fn distinct_chunk(chunk: &Chunk) -> Result<Chunk> {
    if chunk.arity() == 0 || chunk.is_empty() {
        return Ok(chunk.clone());
    }
    let cols: Vec<&Bat> = chunk.columns().iter().collect();
    let map = group_by(&cols, None)?;
    Ok(chunk.gather_positions(&map.representatives))
}

/// Sort a chunk by `(column, descending)` keys.
pub fn sort_chunk(chunk: &Chunk, keys: &[(usize, bool)]) -> Result<Chunk> {
    if keys.is_empty() || chunk.is_empty() {
        return Ok(chunk.clone());
    }
    let sort_keys: Vec<SortKey<'_>> = keys
        .iter()
        .map(|&(col, desc)| SortKey {
            bat: chunk.column(col),
            order: if desc { SortOrder::Desc } else { SortOrder::Asc },
        })
        .collect();
    let positions = sort_positions(&sort_keys, None)?;
    Ok(chunk.gather_positions(&positions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{AggSpec, ScanNode};
    use datacell_algebra::{AggKind, CmpOp};
    use datacell_storage::{DataType, Value};

    fn scan(binding: &str) -> LogicalPlan {
        LogicalPlan::Scan(ScanNode {
            binding: binding.into(),
            object: binding.into(),
            is_stream: false,
            window: None,
            names: vec!["k".into(), "v".into()],
            types: vec![DataType::Int, DataType::Int],
        })
    }

    fn sources() -> ExecSources {
        let mut s = ExecSources::new();
        s.bind(
            "t",
            Chunk::new(vec![
                Bat::from_ints(vec![1, 2, 1, 3, 2]),
                Bat::from_ints(vec![10, 20, 30, 40, 50]),
            ])
            .unwrap(),
        );
        s
    }

    #[test]
    fn scan_and_filter() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t")),
            predicate: BoundExpr::Cmp {
                left: Box::new(BoundExpr::Col(1)),
                op: CmpOp::Gt,
                right: Box::new(BoundExpr::Const(Value::Int(25))),
            },
        };
        let out = execute(&plan, &sources()).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.column(1).data().as_ints().unwrap(), &[30, 40, 50]);
    }

    #[test]
    fn missing_source_reported() {
        let plan = scan("nope");
        assert!(matches!(
            execute(&plan, &sources()),
            Err(PlanError::MissingSource(_))
        ));
    }

    #[test]
    fn global_aggregate_on_empty_input_yields_one_row() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan("t")),
            group_exprs: vec![],
            group_names: vec![],
            group_types: vec![],
            aggs: vec![
                AggSpec { kind: AggKind::CountStar, arg: None, name: "c".into(), ty: DataType::Int },
                AggSpec {
                    kind: AggKind::Sum,
                    arg: Some(BoundExpr::Col(1)),
                    name: "s".into(),
                    ty: DataType::Int,
                },
            ],
        };
        let mut empty = ExecSources::new();
        empty.bind(
            "t",
            Chunk::new(vec![Bat::new(DataType::Int), Bat::new(DataType::Int)]).unwrap(),
        );
        let out = execute(&plan, &empty).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn grouped_aggregate() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan("t")),
            group_exprs: vec![BoundExpr::Col(0)],
            group_names: vec!["k".into()],
            group_types: vec![DataType::Int],
            aggs: vec![AggSpec {
                kind: AggKind::Sum,
                arg: Some(BoundExpr::Col(1)),
                name: "s".into(),
                ty: DataType::Int,
            }],
        };
        let out = execute(&plan, &sources()).unwrap();
        assert_eq!(out.len(), 3);
        // groups in first-appearance order: 1, 2, 3
        assert_eq!(out.row(0), vec![Value::Int(1), Value::Int(40)]);
        assert_eq!(out.row(1), vec![Value::Int(2), Value::Int(70)]);
        assert_eq!(out.row(2), vec![Value::Int(3), Value::Int(40)]);
    }

    #[test]
    fn join_execution() {
        let plan = LogicalPlan::Join {
            left: Box::new(scan("t")),
            right: Box::new(LogicalPlan::Scan(ScanNode {
                binding: "d".into(),
                object: "d".into(),
                is_stream: false,
                window: None,
                names: vec!["k".into(), "label".into()],
                types: vec![DataType::Int, DataType::Str],
            })),
            left_key: 0,
            right_key: 0,
        };
        let mut s = sources();
        s.bind(
            "d",
            Chunk::new(vec![
                Bat::from_ints(vec![1, 2]),
                Bat::from_vector(
                    datacell_storage::Vector::from(vec!["one".to_string(), "two".into()]),
                    0,
                ),
            ])
            .unwrap(),
        );
        let out = execute(&plan, &s).unwrap();
        assert_eq!(out.len(), 4); // k=3 has no match
        assert_eq!(out.arity(), 4);
    }

    #[test]
    fn sort_limit_distinct() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(LogicalPlan::Distinct {
                    input: Box::new(LogicalPlan::Project {
                        input: Box::new(scan("t")),
                        exprs: vec![BoundExpr::Col(0)],
                        names: vec!["k".into()],
                        types: vec![DataType::Int],
                    }),
                }),
                keys: vec![(0, true)],
            }),
            n: 2,
        };
        let out = execute(&plan, &sources()).unwrap();
        assert_eq!(out.column(0).data().as_ints().unwrap(), &[3, 2]);
    }

    #[test]
    fn projection_expressions() {
        let plan = LogicalPlan::Project {
            input: Box::new(scan("t")),
            exprs: vec![BoundExpr::Arith {
                left: Box::new(BoundExpr::Col(1)),
                op: datacell_algebra::ArithOp::Div,
                right: Box::new(BoundExpr::Const(Value::Int(10))),
            }],
            names: vec!["v10".into()],
            types: vec![DataType::Int],
        };
        let out = execute(&plan, &sources()).unwrap();
        assert_eq!(out.column(0).data().as_ints().unwrap(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn trace_records_operators() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t")),
            predicate: BoundExpr::Const(Value::Bool(true)),
        };
        let mut trace = Vec::new();
        execute_traced(&plan, &sources(), &mut trace).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].op, "Scan");
        assert_eq!(trace[1].op, "Filter");
        assert_eq!(trace[1].rows_out, 5);
    }

    #[test]
    fn count_star_counts_all_rows() {
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan("t")),
            group_exprs: vec![BoundExpr::Col(0)],
            group_names: vec!["k".into()],
            group_types: vec![DataType::Int],
            aggs: vec![AggSpec {
                kind: AggKind::CountStar,
                arg: None,
                name: "c".into(),
                ty: DataType::Int,
            }],
        };
        let out = execute(&plan, &sources()).unwrap();
        assert_eq!(out.row(0), vec![Value::Int(1), Value::Int(2)]);
    }
}
