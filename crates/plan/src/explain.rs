//! Plan rendering — the textual equivalent of the demo's plan-inspection
//! pane ("how query plans transform from typical DBMS query plans to online
//! query plans", paper abstract).

use crate::logical::LogicalPlan;

/// Render a logical plan as an indented operator tree.
pub fn explain(plan: &LogicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(plan: &LogicalPlan, depth: usize, out: &mut String) {
    indent(out, depth);
    match plan {
        LogicalPlan::Scan(s) => {
            let kind = if s.is_stream { "StreamScan" } else { "TableScan" };
            out.push_str(&format!("{kind} {}", s.object));
            if !s.binding.eq_ignore_ascii_case(&s.object) {
                out.push_str(&format!(" AS {}", s.binding));
            }
            if let Some(w) = &s.window {
                out.push_str(&format!(" {w}"));
            }
            out.push('\n');
        }
        LogicalPlan::Filter { input, predicate } => {
            let names = input.names();
            out.push_str(&format!("Filter {}\n", predicate.render(&names)));
            render(input, depth + 1, out);
        }
        LogicalPlan::Join { left, right, left_key, right_key } => {
            let ln = left.names();
            let rn = right.names();
            out.push_str(&format!(
                "HashJoin {} = {}\n",
                ln.get(*left_key).cloned().unwrap_or_else(|| format!("#{left_key}")),
                rn.get(*right_key).cloned().unwrap_or_else(|| format!("#{right_key}")),
            ));
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        LogicalPlan::Project { input, exprs, names, .. } => {
            let in_names = input.names();
            let items: Vec<String> = exprs
                .iter()
                .zip(names)
                .map(|(e, n)| {
                    let r = e.render(&in_names);
                    if &r == n {
                        r
                    } else {
                        format!("{r} AS {n}")
                    }
                })
                .collect();
            out.push_str(&format!("Project [{}]\n", items.join(", ")));
            render(input, depth + 1, out);
        }
        LogicalPlan::Aggregate { input, group_exprs, aggs, .. } => {
            let in_names = input.names();
            let keys: Vec<String> = group_exprs.iter().map(|e| e.render(&in_names)).collect();
            let fns: Vec<String> = aggs.iter().map(|a| a.name.clone()).collect();
            if keys.is_empty() {
                out.push_str(&format!("Aggregate [{}]\n", fns.join(", ")));
            } else {
                out.push_str(&format!(
                    "Aggregate group=[{}] aggs=[{}]\n",
                    keys.join(", "),
                    fns.join(", ")
                ));
            }
            render(input, depth + 1, out);
        }
        LogicalPlan::Distinct { input } => {
            out.push_str("Distinct\n");
            render(input, depth + 1, out);
        }
        LogicalPlan::Sort { input, keys } => {
            let names = input.names();
            let items: Vec<String> = keys
                .iter()
                .map(|(c, desc)| {
                    format!(
                        "{}{}",
                        names.get(*c).cloned().unwrap_or_else(|| format!("#{c}")),
                        if *desc { " DESC" } else { "" }
                    )
                })
                .collect();
            out.push_str(&format!("Sort [{}]\n", items.join(", ")));
            render(input, depth + 1, out);
        }
        LogicalPlan::Limit { input, n } => {
            out.push_str(&format!("Limit {n}\n"));
            render(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BoundExpr;
    use crate::logical::ScanNode;
    use datacell_storage::{DataType, Value};

    #[test]
    fn renders_tree() {
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan(ScanNode {
                binding: "s".into(),
                object: "s".into(),
                is_stream: true,
                window: Some(datacell_sql::WindowSpec::Rows { size: 10, slide: 2 }),
                names: vec!["s.v".into()],
                types: vec![DataType::Int],
            })),
            predicate: BoundExpr::Const(Value::Bool(true)),
        };
        let text = explain(&plan);
        assert!(text.contains("Filter"));
        assert!(text.contains("StreamScan s [ROWS 10 SLIDE 2]"));
        assert!(text.starts_with("Filter"));
        assert!(text.lines().nth(1).unwrap().starts_with("  "));
    }
}
