//! Shared-subplan canonicalization: structural fingerprints of the leading
//! operators of continuous plans.
//!
//! DataCell's design point is that many standing queries share the same
//! baskets ("multi-query processing", paper abstract) — yet a naive engine
//! evaluates every query's window extraction, selection, and grouped
//! aggregation independently. This module turns the *leading* operators of
//! a compiled continuous plan into canonical strings with stable structural
//! hashes so the runtime can factor common work:
//!
//! * a **window node** — the stream object plus its window clause (two
//!   queries with the same key slice the same zero-copy basket window);
//! * a **select node** — the window plus the canonical selection predicate
//!   (same key ⇒ the same `Candidates` vector per basic window);
//! * a **group-agg node** — the select/window plus group keys and aggregate
//!   list (same key ⇒ the same per-basic-window partial aggregate).
//!
//! The keys are purely structural: column references render as positions
//! (`#i`), never names, and stream objects are lowercased, so two queries
//! compiled from differently-spelled but structurally identical SQL collide
//! (which is exactly what we want). The scheduler keys its refcounted
//! shared-node DAG and its per-pass evaluation cache on these fingerprints;
//! `EXPLAIN` renders them via [`sharing_section`].

use crate::continuous::CompiledQuery;
use crate::expr::BoundExpr;
use crate::incremental::IncrementalPlan;
use crate::logical::{AggSpec, LogicalPlan};
use datacell_storage::DataType;

/// A canonical fingerprint of one shareable subplan stage: the canonical
/// text (collision-proof equality key) plus its FNV-1a hash (cheap map key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubplanKey {
    /// Canonical structural rendering (also the EXPLAIN description).
    pub text: String,
    /// 64-bit FNV-1a hash of `text`.
    pub hash: u64,
}

impl SubplanKey {
    fn new(text: String) -> Self {
        let hash = fnv1a(text.as_bytes());
        SubplanKey { text, hash }
    }
}

/// Which stage of the shared DAG a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharedNodeKind {
    /// Stream + window clause (zero-copy basket slice).
    Window,
    /// Window + selection predicate (shared `Candidates` vector).
    Select,
    /// Select/window + group keys + aggregates (shared partial aggregate).
    GroupAgg,
}

impl SharedNodeKind {
    /// Label used in EXPLAIN / stats output.
    pub fn label(self) -> &'static str {
        match self {
            SharedNodeKind::Window => "window",
            SharedNodeKind::Select => "select",
            SharedNodeKind::GroupAgg => "group-agg",
        }
    }
}

/// The shareable prefix of one compiled continuous query. Stages nest:
/// `agg` implies the query also has the `window` (and `select`, when a
/// predicate exists) fingerprints it extends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SharedShape {
    /// Window-extraction stage (any single-stream continuous query).
    pub window: Option<SubplanKey>,
    /// Selection stage (incremental aggregate plans whose pre-plan is
    /// `Filter(StreamScan)`).
    pub select: Option<SubplanKey>,
    /// Grouped-partial-aggregate stage (incremental aggregate plans whose
    /// pre-plan is `StreamScan` or `Filter(StreamScan)`, no table joins).
    pub agg: Option<SubplanKey>,
}

impl SharedShape {
    /// The `(kind, key)` pairs this shape contributes to the shared DAG.
    pub fn nodes(&self) -> Vec<(SharedNodeKind, &SubplanKey)> {
        let mut out = Vec::new();
        if let Some(k) = &self.window {
            out.push((SharedNodeKind::Window, k));
        }
        if let Some(k) = &self.select {
            out.push((SharedNodeKind::Select, k));
        }
        if let Some(k) = &self.agg {
            out.push((SharedNodeKind::GroupAgg, k));
        }
        out
    }
}

/// FNV-1a 64-bit — hand-rolled so fingerprints are stable across runs and
/// platforms (no `RandomState`), with zero dependencies.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonical rendering of an expression: positional column refs, no names.
fn canon_expr(e: &BoundExpr) -> String {
    e.render(&[])
}

fn canon_aggs(aggs: &[AggSpec]) -> String {
    let parts: Vec<String> = aggs
        .iter()
        .map(|a| match &a.arg {
            Some(arg) => format!("{}({}):{}", a.kind.sql(), canon_expr(arg), a.ty),
            None => format!("{}:{}", a.kind.sql(), a.ty),
        })
        .collect();
    parts.join(",")
}

fn canon_groups(group_exprs: &[BoundExpr], group_types: &[DataType]) -> String {
    let parts: Vec<String> = group_exprs
        .iter()
        .zip(group_types)
        .map(|(e, t)| format!("{}:{t}", canon_expr(e)))
        .collect();
    parts.join(",")
}

/// When `pre` is a bare stream scan or a single filter over one, return the
/// (optional) selection predicate — the shape the fused filter+aggregate
/// kernels and the shared select node both require. Column indices in the
/// predicate refer to the stream scan's output, i.e. directly to the delta
/// chunk's columns.
pub fn fused_filter(pre: &LogicalPlan) -> Option<Option<&BoundExpr>> {
    match pre {
        LogicalPlan::Scan(s) if s.is_stream => Some(None),
        LogicalPlan::Filter { input, predicate } => match input.as_ref() {
            LogicalPlan::Scan(s) if s.is_stream => Some(Some(predicate)),
            _ => None,
        },
        _ => None,
    }
}

/// Compute the shareable-prefix fingerprints of a compiled query.
///
/// Only single-stream queries produce fingerprints (two-stream joins fire
/// on either input and never align spans with other queries); select/agg
/// stages additionally require an incremental aggregate split whose
/// pre-plan is `StreamScan` or `Filter(StreamScan)` with no table joins —
/// the shapes whose per-basic-window results are position-independent and
/// therefore safe to share between factories.
pub fn shared_shape(q: &CompiledQuery) -> SharedShape {
    let [stream] = q.streams.as_slice() else {
        return SharedShape::default();
    };
    let window_text = match &stream.window {
        Some(w) => format!("stream={}|window={w}", stream.object.to_ascii_lowercase()),
        None => format!("stream={}|window=none", stream.object.to_ascii_lowercase()),
    };
    let mut shape = SharedShape {
        window: Some(SubplanKey::new(window_text.clone())),
        select: None,
        agg: None,
    };

    let Some(IncrementalPlan::Aggregate(p)) = &q.incremental else {
        return shape;
    };
    if !q.tables.is_empty() {
        return shape;
    }
    let Some(pred) = fused_filter(&p.pre_plan) else {
        return shape;
    };
    let base = match pred {
        Some(pred) => {
            let select_text = format!("{window_text}|where={}", canon_expr(pred));
            shape.select = Some(SubplanKey::new(select_text.clone()));
            select_text
        }
        None => window_text,
    };
    shape.agg = Some(SubplanKey::new(format!(
        "{base}|group=[{}]|aggs=[{}]",
        canon_groups(&p.group_exprs, &p.group_types),
        canon_aggs(&p.aggs)
    )));
    shape
}

/// Render the EXPLAIN "shared subplans" section: one line per DAG node the
/// query participates in, with its fan-out (how many registered queries
/// share it).
pub fn sharing_section(entries: &[(SharedNodeKind, String, usize)]) -> String {
    let mut out = String::from("== shared subplans ==\n");
    if entries.is_empty() {
        out.push_str("  (no shareable prefix)\n");
        return out;
    }
    for (kind, text, refs) in entries {
        let status = match refs {
            0 | 1 => "not shared".to_owned(),
            n => format!("shared by {n} queries"),
        };
        out.push_str(&format!("  {} {} -> {}\n", kind.label(), text, status));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::Binder;
    use datacell_sql::parse_statement;
    use datacell_storage::{Catalog, Schema};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.create_stream(
            "s",
            Schema::of(&[
                ("ts", DataType::Timestamp),
                ("k", DataType::Int),
                ("v", DataType::Float),
            ]),
        )
        .unwrap();
        cat.create_table("dim", Schema::of(&[("k", DataType::Int), ("w", DataType::Int)]))
            .unwrap();
        cat
    }

    fn compile_sql(sql: &str) -> CompiledQuery {
        let cat = catalog();
        let stmt = match parse_statement(sql).unwrap() {
            datacell_sql::Statement::Select(s) => s,
            _ => panic!("not a select"),
        };
        let bound = Binder::new(&cat).bind_select(&stmt).unwrap();
        crate::continuous::compile(sql, bound).unwrap()
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), fnv1a(b"a"));
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn identical_queries_share_all_stages() {
        let sql = "SELECT k, COUNT(*), AVG(v) FROM s [ROWS 100 SLIDE 10] \
                   WHERE v > 5.0 GROUP BY k";
        let a = shared_shape(&compile_sql(sql));
        let b = shared_shape(&compile_sql(sql));
        assert!(a.window.is_some() && a.select.is_some() && a.agg.is_some());
        assert_eq!(a, b);
        assert_eq!(a.nodes().len(), 3);
    }

    #[test]
    fn different_threshold_shares_window_only() {
        let a = shared_shape(&compile_sql(
            "SELECT k, AVG(v) FROM s [ROWS 100 SLIDE 10] WHERE v > 5.0 GROUP BY k",
        ));
        let b = shared_shape(&compile_sql(
            "SELECT k, AVG(v) FROM s [ROWS 100 SLIDE 10] WHERE v > 6.0 GROUP BY k",
        ));
        assert_eq!(a.window, b.window);
        assert_ne!(a.select, b.select);
        assert_ne!(a.agg, b.agg);
    }

    #[test]
    fn different_window_shares_nothing() {
        let a = shared_shape(&compile_sql(
            "SELECT k, AVG(v) FROM s [ROWS 100 SLIDE 10] GROUP BY k",
        ));
        let b = shared_shape(&compile_sql(
            "SELECT k, AVG(v) FROM s [ROWS 100 SLIDE 20] GROUP BY k",
        ));
        assert_ne!(a.window, b.window);
        assert_ne!(a.agg, b.agg);
    }

    #[test]
    fn unfiltered_aggregate_has_agg_but_no_select() {
        let shape = shared_shape(&compile_sql(
            "SELECT k, SUM(v) FROM s [ROWS 100 SLIDE 10] GROUP BY k",
        ));
        assert!(shape.window.is_some());
        assert!(shape.select.is_none());
        assert!(shape.agg.is_some());
    }

    #[test]
    fn table_join_disables_select_and_agg_stages() {
        let shape = shared_shape(&compile_sql(
            "SELECT dim.w, SUM(v) FROM s [ROWS 64 SLIDE 8] JOIN dim ON s.k = dim.k \
             GROUP BY dim.w",
        ));
        assert!(shape.window.is_some());
        assert!(shape.select.is_none());
        assert!(shape.agg.is_none());
    }

    #[test]
    fn projection_only_query_has_window_stage_only() {
        let shape = shared_shape(&compile_sql(
            "SELECT v FROM s [ROWS 10 SLIDE 5] WHERE v > 1.0",
        ));
        assert!(shape.window.is_some());
        assert!(shape.agg.is_none());
    }

    #[test]
    fn sharing_section_renders_counts() {
        let shape = shared_shape(&compile_sql(
            "SELECT k, AVG(v) FROM s [ROWS 100 SLIDE 10] WHERE v > 5.0 GROUP BY k",
        ));
        let entries: Vec<(SharedNodeKind, String, usize)> = shape
            .nodes()
            .into_iter()
            .enumerate()
            .map(|(i, (kind, key))| (kind, key.text.clone(), i + 1))
            .collect();
        let text = sharing_section(&entries);
        assert!(text.contains("window stream=s|window=[ROWS 100 SLIDE 10] -> not shared"), "{text}");
        assert!(text.contains("shared by 3 queries"), "{text}");
        assert!(sharing_section(&[]).contains("no shareable prefix"));
    }
}
