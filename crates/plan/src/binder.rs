//! Name resolution and plan construction: SQL AST + catalog → [`LogicalPlan`].
//!
//! The binder plays the role of MonetDB's SQL compiler front half: it
//! resolves tables *and streams* through one namespace (the "natural
//! integration of baskets and tables within the same processing fabric",
//! paper §3), extracts equi-join keys, and splits aggregate queries into
//! pre-aggregation input, the aggregate node, and post-aggregation
//! projection — the seam the incremental rewriter later splits plans at.

use datacell_algebra::{AggKind, ArithOp, CmpOp};
use datacell_sql::{
    AggFunc, BinaryOp, Expr, Literal, SelectItem, SelectStmt, TableRef, TypeName, UnaryOp,
    WindowSpec,
};
use datacell_storage::{Catalog, DataType, Value};

use crate::error::{PlanError, Result};
use crate::expr::BoundExpr;
use crate::logical::{AggSpec, LogicalPlan, ScanNode};

/// Result of binding a SELECT.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// The bound, unoptimized plan.
    pub plan: LogicalPlan,
    /// Whether any scan reads a stream.
    pub is_continuous: bool,
}

/// One entry of the flat FROM-clause namespace.
#[derive(Debug, Clone)]
struct NsEntry {
    binding: String,
    column: String,
    ty: DataType,
}

#[derive(Debug, Default)]
struct Namespace {
    entries: Vec<NsEntry>,
}

impl Namespace {
    fn push_source(&mut self, binding: &str, schema: &datacell_storage::Schema) {
        for c in schema.columns() {
            self.entries.push(NsEntry {
                binding: binding.to_owned(),
                column: c.name.clone(),
                ty: c.ty,
            });
        }
    }

    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, e) in self.entries.iter().enumerate() {
            let tbl_ok = table.is_none_or(|t| e.binding.eq_ignore_ascii_case(t));
            if tbl_ok && e.column.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(PlanError::Binding(format!("ambiguous column: {name}")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            let q = table.map(|t| format!("{t}.")).unwrap_or_default();
            PlanError::Binding(format!("unknown column: {q}{name}"))
        })
    }

    fn types(&self) -> Vec<DataType> {
        self.entries.iter().map(|e| e.ty).collect()
    }

    #[allow(dead_code)] // used by future EXPLAIN verbosity levels
    fn qualified_names(&self) -> Vec<String> {
        self.entries
            .iter()
            .map(|e| format!("{}.{}", e.binding, e.column))
            .collect()
    }
}

/// Convert a literal expression (as appears in `INSERT … VALUES`) to a
/// [`Value`]. Non-literals are rejected.
pub fn literal_to_value(expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(Literal::Int(v)) => Ok(Value::Int(*v)),
        Expr::Literal(Literal::Float(v)) => Ok(Value::Float(*v)),
        Expr::Literal(Literal::Str(s)) => Ok(Value::Str(s.clone())),
        Expr::Literal(Literal::Bool(b)) => Ok(Value::Bool(*b)),
        Expr::Literal(Literal::Null) => Ok(Value::Null),
        other => Err(PlanError::Unsupported(format!(
            "INSERT values must be literals, found {other}"
        ))),
    }
}

/// Map a SQL type name to a kernel type.
pub fn type_of(ty: TypeName) -> DataType {
    match ty {
        TypeName::Bool => DataType::Bool,
        TypeName::Int => DataType::Int,
        TypeName::Float => DataType::Float,
        TypeName::Str => DataType::Str,
        TypeName::Timestamp => DataType::Timestamp,
    }
}

/// The binder. Holds only a catalog reference; stateless across queries.
pub struct Binder<'a> {
    catalog: &'a Catalog,
}

impl<'a> Binder<'a> {
    /// Create a binder over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Binder { catalog }
    }

    /// Bind a SELECT statement into a logical plan.
    pub fn bind_select(&self, stmt: &SelectStmt) -> Result<BoundQuery> {
        let from = stmt
            .from
            .as_ref()
            .ok_or_else(|| PlanError::Unsupported("SELECT without FROM".into()))?;

        // --- sources and namespace -----------------------------------
        let mut sources: Vec<(TableRef, datacell_storage::Schema, bool)> = Vec::new();
        for tref in std::iter::once(from).chain(stmt.joins.iter().map(|j| &j.table)) {
            let schema = self.catalog.schema_of(&tref.name)?;
            let is_stream = self.catalog.is_stream(&tref.name);
            if let Some(w) = &tref.window {
                if !is_stream {
                    return Err(PlanError::Unsupported(format!(
                        "window clause on non-stream {}",
                        tref.name
                    )));
                }
                if let WindowSpec::Range { on, .. } = w {
                    let def = schema.column(on).map_err(PlanError::Storage)?;
                    if !matches!(def.ty, DataType::Int | DataType::Timestamp) {
                        return Err(PlanError::Unsupported(format!(
                            "RANGE window column {on} must be BIGINT or TIMESTAMP"
                        )));
                    }
                }
            }
            sources.push((tref.clone(), schema, is_stream));
        }
        // duplicate binding names
        for i in 0..sources.len() {
            for j in i + 1..sources.len() {
                if sources[i].0.binding_name().eq_ignore_ascii_case(sources[j].0.binding_name())
                {
                    return Err(PlanError::Binding(format!(
                        "duplicate source binding: {}",
                        sources[i].0.binding_name()
                    )));
                }
            }
        }

        let mut ns = Namespace::default();
        let mut offsets = Vec::with_capacity(sources.len());
        for (tref, schema, _) in &sources {
            offsets.push(ns.entries.len());
            ns.push_source(tref.binding_name(), schema);
        }

        // --- conjuncts from ON and WHERE ------------------------------
        let mut conjuncts: Vec<BoundExpr> = Vec::new();
        for join in &stmt.joins {
            collect_conjuncts(&join.on, &mut |e| {
                if !matches!(e, Expr::Literal(Literal::Bool(true))) {
                    conjuncts.push(self.bind_scalar(e, &ns)?);
                }
                Ok(())
            })?;
        }
        if let Some(w) = &stmt.where_clause {
            if w.contains_aggregate() {
                return Err(PlanError::Unsupported(
                    "aggregates are not allowed in WHERE".into(),
                ));
            }
            collect_conjuncts(w, &mut |e| {
                conjuncts.push(self.bind_scalar(e, &ns)?);
                Ok(())
            })?;
        }

        // --- left-deep join tree ---------------------------------------
        let mut used = vec![false; conjuncts.len()];
        let mut plan = scan_node(&sources[0]);
        for (i, source) in sources.iter().enumerate().skip(1) {
            let right_lo = offsets[i];
            let right_hi = right_lo + source.1.arity();
            let key = find_join_key(&conjuncts, &mut used, right_lo, right_hi)
                .ok_or_else(|| {
                    PlanError::Unsupported(format!(
                        "no equi-join condition found for {} (cross joins unsupported)",
                        source.0.binding_name()
                    ))
                })?;
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(scan_node(source)),
                left_key: key.0,
                right_key: key.1 - right_lo,
            };
        }

        // --- residual filter --------------------------------------------
        let residual: Vec<BoundExpr> = conjuncts
            .into_iter()
            .zip(used)
            .filter(|(_, u)| !u)
            .map(|(c, _)| c)
            .collect();
        if let Some(pred) = and_all(residual) {
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pred };
        }

        // --- aggregate vs plain projection -----------------------------
        let has_agg = !stmt.group_by.is_empty()
            || stmt.having.is_some()
            || stmt.projection.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            });

        let is_continuous = plan.is_continuous();
        let mut plan = if has_agg {
            self.bind_aggregate_query(stmt, plan, &ns)?
        } else {
            self.bind_plain_query(stmt, plan, &ns)?
        };

        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit { input: Box::new(plan), n };
        }
        Ok(BoundQuery { plan, is_continuous })
    }

    /// Bind a scalar (non-aggregate) expression over the namespace.
    fn bind_scalar(&self, expr: &Expr, ns: &Namespace) -> Result<BoundExpr> {
        match expr {
            Expr::Column { table, name } => {
                Ok(BoundExpr::Col(ns.resolve(table.as_deref(), name)?))
            }
            Expr::Literal(l) => Ok(BoundExpr::Const(lit_value(l))),
            Expr::Unary { op: UnaryOp::Neg, expr } => Ok(BoundExpr::Arith {
                left: Box::new(BoundExpr::Const(Value::Int(0))),
                op: ArithOp::Sub,
                right: Box::new(self.bind_scalar(expr, ns)?),
            }),
            Expr::Unary { op: UnaryOp::Not, expr } => {
                Ok(BoundExpr::Not(Box::new(self.bind_scalar(expr, ns)?)))
            }
            Expr::Binary { left, op, right } => {
                let l = Box::new(self.bind_scalar(left, ns)?);
                let r = Box::new(self.bind_scalar(right, ns)?);
                Ok(bind_binop(*op, l, r))
            }
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind_scalar(expr, ns)?),
                negated: *negated,
            }),
            Expr::Between { expr, low, high, negated } => Ok(BoundExpr::Between {
                expr: Box::new(self.bind_scalar(expr, ns)?),
                low: Box::new(self.bind_scalar(low, ns)?),
                high: Box::new(self.bind_scalar(high, ns)?),
                negated: *negated,
            }),
            Expr::Agg { .. } => Err(PlanError::Binding(
                "aggregate not allowed in this context".into(),
            )),
        }
    }

    fn bind_plain_query(
        &self,
        stmt: &SelectStmt,
        mut plan: LogicalPlan,
        ns: &Namespace,
    ) -> Result<LogicalPlan> {
        // ORDER BY binds over the pre-projection schema and sorts first;
        // projection afterwards is row-aligned so order is preserved.
        if !stmt.order_by.is_empty() {
            let mut keys = Vec::new();
            for item in &stmt.order_by {
                match self.bind_scalar(&item.expr, ns)? {
                    BoundExpr::Col(i) => keys.push((i, item.desc)),
                    _ => {
                        return Err(PlanError::Unsupported(
                            "ORDER BY supports plain columns (or projected aliases in aggregate queries)".into(),
                        ))
                    }
                }
            }
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }

        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &stmt.projection {
            match item {
                SelectItem::Wildcard => {
                    for (i, e) in ns.entries.iter().enumerate() {
                        exprs.push(BoundExpr::Col(i));
                        names.push(e.column.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(self.bind_scalar(expr, ns)?);
                    names.push(output_name(expr, alias.as_deref()));
                }
            }
        }
        let in_types = ns.types();
        let types: Result<Vec<DataType>> =
            exprs.iter().map(|e| e.output_type(&in_types)).collect();
        plan = LogicalPlan::Project { input: Box::new(plan), exprs, names, types: types? };
        if stmt.distinct {
            plan = LogicalPlan::Distinct { input: Box::new(plan) };
        }
        Ok(plan)
    }

    fn bind_aggregate_query(
        &self,
        stmt: &SelectStmt,
        input: LogicalPlan,
        ns: &Namespace,
    ) -> Result<LogicalPlan> {
        let in_types = ns.types();

        // Group keys.
        let mut group_exprs = Vec::new();
        let mut group_names = Vec::new();
        let mut group_types = Vec::new();
        for g in &stmt.group_by {
            if g.contains_aggregate() {
                return Err(PlanError::Unsupported("aggregate in GROUP BY".into()));
            }
            let bound = self.bind_scalar(g, ns)?;
            group_types.push(bound.output_type(&in_types)?);
            group_names.push(output_name(g, None));
            group_exprs.push(bound);
        }

        // Aggregate slots, deduplicated on (kind, bound arg).
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut slot_of = |func: AggFunc, arg: &Option<Box<Expr>>, binder: &Binder<'_>| -> Result<usize> {
            let (kind, bound_arg) = match (func, arg) {
                (AggFunc::Count, None) => (AggKind::CountStar, None),
                (AggFunc::Count, Some(a)) => (AggKind::Count, Some(binder.bind_scalar(a, ns)?)),
                (AggFunc::Sum, Some(a)) => (AggKind::Sum, Some(binder.bind_scalar(a, ns)?)),
                (AggFunc::Avg, Some(a)) => (AggKind::Avg, Some(binder.bind_scalar(a, ns)?)),
                (AggFunc::Min, Some(a)) => (AggKind::Min, Some(binder.bind_scalar(a, ns)?)),
                (AggFunc::Max, Some(a)) => (AggKind::Max, Some(binder.bind_scalar(a, ns)?)),
                (f, None) => {
                    return Err(PlanError::Unsupported(format!("{f} requires an argument")))
                }
            };
            if let Some(i) = aggs
                .iter()
                .position(|s| s.kind == kind && s.arg == bound_arg)
            {
                return Ok(i);
            }
            let input_ty = match &bound_arg {
                Some(a) => a.output_type(&in_types)?,
                None => DataType::Int,
            };
            let ty = kind.output_type(input_ty)?;
            let name = match (&kind, arg) {
                (AggKind::CountStar, _) => "COUNT(*)".to_owned(),
                (_, Some(a)) => format!("{}({})", agg_sql_name(kind), a),
                (_, None) => agg_sql_name(kind).to_owned(),
            };
            aggs.push(AggSpec { kind, arg: bound_arg, name, ty });
            Ok(aggs.len() - 1)
        };

        // Rewrite post-aggregate expressions (projection, HAVING, ORDER BY)
        // over the aggregate output schema [group keys..., agg slots...].
        /// Maps an aggregate call (function + argument) to its output slot.
        type SlotOf<'a> = dyn FnMut(AggFunc, &Option<Box<Expr>>) -> Result<usize> + 'a;

        struct Rewriter<'b, 'c> {
            binder: &'b Binder<'c>,
            ns: &'b Namespace,
            group_exprs: Vec<BoundExpr>,
        }
        impl Rewriter<'_, '_> {
            fn rewrite(
                &self,
                expr: &Expr,
                slot_of: &mut SlotOf<'_>,
                group_len: usize,
            ) -> Result<BoundExpr> {
                // A whole sub-expression equal to a group key becomes a key ref.
                if !expr.contains_aggregate() {
                    if let Ok(bound) = self.binder.bind_scalar(expr, self.ns) {
                        if let Some(i) =
                            self.group_exprs.iter().position(|g| *g == bound)
                        {
                            return Ok(BoundExpr::Col(i));
                        }
                        if let BoundExpr::Const(v) = bound {
                            return Ok(BoundExpr::Const(v));
                        }
                    }
                }
                match expr {
                    Expr::Agg { func, arg } => {
                        let slot = slot_of(*func, arg)?;
                        Ok(BoundExpr::Col(group_len + slot))
                    }
                    Expr::Binary { left, op, right } => {
                        let l = Box::new(self.rewrite(left, slot_of, group_len)?);
                        let r = Box::new(self.rewrite(right, slot_of, group_len)?);
                        Ok(bind_binop(*op, l, r))
                    }
                    Expr::Unary { op: UnaryOp::Neg, expr } => Ok(BoundExpr::Arith {
                        left: Box::new(BoundExpr::Const(Value::Int(0))),
                        op: ArithOp::Sub,
                        right: Box::new(self.rewrite(expr, slot_of, group_len)?),
                    }),
                    Expr::Unary { op: UnaryOp::Not, expr } => {
                        Ok(BoundExpr::Not(Box::new(self.rewrite(expr, slot_of, group_len)?)))
                    }
                    Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                        expr: Box::new(self.rewrite(expr, slot_of, group_len)?),
                        negated: *negated,
                    }),
                    Expr::Between { expr, low, high, negated } => Ok(BoundExpr::Between {
                        expr: Box::new(self.rewrite(expr, slot_of, group_len)?),
                        low: Box::new(self.rewrite(low, slot_of, group_len)?),
                        high: Box::new(self.rewrite(high, slot_of, group_len)?),
                        negated: *negated,
                    }),
                    Expr::Literal(l) => Ok(BoundExpr::Const(lit_value(l))),
                    Expr::Column { table, name } => {
                        let q = table.as_ref().map(|t| format!("{t}.")).unwrap_or_default();
                        Err(PlanError::Binding(format!(
                            "column {q}{name} must appear in GROUP BY or inside an aggregate"
                        )))
                    }
                }
            }
        }
        let rewriter =
            Rewriter { binder: self, ns, group_exprs: group_exprs.clone() };
        let group_len = group_exprs.len();

        // Projection.
        let mut post_exprs = Vec::new();
        let mut post_names = Vec::new();
        for item in &stmt.projection {
            match item {
                SelectItem::Wildcard => {
                    return Err(PlanError::Unsupported(
                        "SELECT * is not allowed in aggregate queries".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => {
                    let rewritten = rewriter.rewrite(
                        expr,
                        &mut |f, a| slot_of(f, a, self),
                        group_len,
                    )?;
                    post_exprs.push(rewritten);
                    post_names.push(output_name(expr, alias.as_deref()));
                }
            }
        }
        // HAVING.
        let having = stmt
            .having
            .as_ref()
            .map(|h| rewriter.rewrite(h, &mut |f, a| slot_of(f, a, self), group_len))
            .transpose()?;
        // ORDER BY: rewrite over aggregate output as well.
        let mut order_keys_pre: Vec<(BoundExpr, bool)> = Vec::new();
        for item in &stmt.order_by {
            let rewritten =
                rewriter.rewrite(&item.expr, &mut |f, a| slot_of(f, a, self), group_len)?;
            order_keys_pre.push((rewritten, item.desc));
        }

        // Assemble: Aggregate → (Filter having) → (Sort) → Project.
        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group_exprs,
            group_names,
            group_types,
            aggs,
        };
        if let Some(h) = having {
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: h };
        }
        if !order_keys_pre.is_empty() {
            let mut keys = Vec::new();
            for (e, desc) in order_keys_pre {
                match e {
                    BoundExpr::Col(i) => keys.push((i, desc)),
                    _ => {
                        return Err(PlanError::Unsupported(
                            "ORDER BY in aggregate queries must reference group keys or aggregates".into(),
                        ))
                    }
                }
            }
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
        }
        let agg_out_types = plan.types();
        let post_types: Result<Vec<DataType>> =
            post_exprs.iter().map(|e| e.output_type(&agg_out_types)).collect();
        let mut plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: post_exprs,
            names: post_names,
            types: post_types?,
        };
        if stmt.distinct {
            plan = LogicalPlan::Distinct { input: Box::new(plan) };
        }
        Ok(plan)
    }
}

fn agg_sql_name(kind: AggKind) -> &'static str {
    match kind {
        AggKind::CountStar | AggKind::Count => "COUNT",
        AggKind::Sum => "SUM",
        AggKind::Avg => "AVG",
        AggKind::Min => "MIN",
        AggKind::Max => "MAX",
    }
}

fn scan_node(source: &(TableRef, datacell_storage::Schema, bool)) -> LogicalPlan {
    let (tref, schema, is_stream) = source;
    LogicalPlan::Scan(ScanNode {
        binding: tref.binding_name().to_owned(),
        object: tref.name.clone(),
        is_stream: *is_stream,
        window: tref.window.clone(),
        names: schema
            .columns()
            .iter()
            .map(|c| format!("{}.{}", tref.binding_name(), c.name))
            .collect(),
        types: schema.columns().iter().map(|c| c.ty).collect(),
    })
}

fn lit_value(l: &Literal) -> Value {
    match l {
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
        Literal::Null => Value::Null,
    }
}

fn bind_binop(op: BinaryOp, l: Box<BoundExpr>, r: Box<BoundExpr>) -> BoundExpr {
    match op {
        BinaryOp::Add => BoundExpr::Arith { left: l, op: ArithOp::Add, right: r },
        BinaryOp::Sub => BoundExpr::Arith { left: l, op: ArithOp::Sub, right: r },
        BinaryOp::Mul => BoundExpr::Arith { left: l, op: ArithOp::Mul, right: r },
        BinaryOp::Div => BoundExpr::Arith { left: l, op: ArithOp::Div, right: r },
        BinaryOp::Mod => BoundExpr::Arith { left: l, op: ArithOp::Mod, right: r },
        BinaryOp::Eq => BoundExpr::Cmp { left: l, op: CmpOp::Eq, right: r },
        BinaryOp::Ne => BoundExpr::Cmp { left: l, op: CmpOp::Ne, right: r },
        BinaryOp::Lt => BoundExpr::Cmp { left: l, op: CmpOp::Lt, right: r },
        BinaryOp::Le => BoundExpr::Cmp { left: l, op: CmpOp::Le, right: r },
        BinaryOp::Gt => BoundExpr::Cmp { left: l, op: CmpOp::Gt, right: r },
        BinaryOp::Ge => BoundExpr::Cmp { left: l, op: CmpOp::Ge, right: r },
        BinaryOp::And => BoundExpr::And(l, r),
        BinaryOp::Or => BoundExpr::Or(l, r),
    }
}

/// Split a (possibly nested) AND tree into conjuncts.
fn collect_conjuncts(
    expr: &Expr,
    f: &mut impl FnMut(&Expr) -> Result<()>,
) -> Result<()> {
    match expr {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            collect_conjuncts(left, f)?;
            collect_conjuncts(right, f)
        }
        other => f(other),
    }
}

/// AND-combine a list of predicates (None if empty).
fn and_all(mut preds: Vec<BoundExpr>) -> Option<BoundExpr> {
    let first = if preds.is_empty() { None } else { Some(preds.remove(0)) };
    preds.into_iter().fold(first, |acc, p| {
        Some(match acc {
            None => p,
            Some(a) => BoundExpr::And(Box::new(a), Box::new(p)),
        })
    })
}

/// Find an unused `Col(a) = Col(b)` conjunct linking the accumulated left
/// side (cols `< right_lo`) with the new right source (`[right_lo,
/// right_hi)`), returning `(left_col, right_col_flat)`.
fn find_join_key(
    conjuncts: &[BoundExpr],
    used: &mut [bool],
    right_lo: usize,
    right_hi: usize,
) -> Option<(usize, usize)> {
    for (i, c) in conjuncts.iter().enumerate() {
        if used[i] {
            continue;
        }
        if let BoundExpr::Cmp { left, op: CmpOp::Eq, right } = c {
            if let (BoundExpr::Col(a), BoundExpr::Col(b)) = (left.as_ref(), right.as_ref()) {
                let (a, b) = (*a, *b);
                let pair = if a < right_lo && (right_lo..right_hi).contains(&b) {
                    Some((a, b))
                } else if b < right_lo && (right_lo..right_hi).contains(&a) {
                    Some((b, a))
                } else {
                    None
                };
                if let Some(p) = pair {
                    used[i] = true;
                    return Some(p);
                }
            }
        }
    }
    None
}

fn output_name(expr: &Expr, alias: Option<&str>) -> String {
    if let Some(a) = alias {
        return a.to_owned();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_sql::parse_statement;
    use datacell_storage::Schema;

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.create_table(
            "dim",
            Schema::of(&[("k", DataType::Int), ("label", DataType::Str)]),
        )
        .unwrap();
        cat.create_stream(
            "s",
            Schema::of(&[
                ("ts", DataType::Timestamp),
                ("k", DataType::Int),
                ("v", DataType::Float),
            ]),
        )
        .unwrap();
        cat
    }

    fn bind(sql: &str) -> Result<BoundQuery> {
        let cat = catalog();
        let stmt = match parse_statement(sql).unwrap() {
            datacell_sql::Statement::Select(s) => s,
            _ => panic!("not a select"),
        };
        Binder::new(&cat).bind_select(&stmt)
    }

    #[test]
    fn simple_projection() {
        let q = bind("SELECT v, k FROM s WHERE v > 1.0").unwrap();
        assert!(q.is_continuous);
        assert_eq!(q.plan.names(), vec!["v", "k"]);
        assert_eq!(q.plan.types(), vec![DataType::Float, DataType::Int]);
    }

    #[test]
    fn wildcard_expansion() {
        let q = bind("SELECT * FROM dim").unwrap();
        assert!(!q.is_continuous);
        assert_eq!(q.plan.names(), vec!["k", "label"]);
    }

    #[test]
    fn unknown_column_rejected() {
        assert!(matches!(bind("SELECT nope FROM s"), Err(PlanError::Binding(_))));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let err = bind("SELECT k FROM s JOIN dim ON s.k = dim.k").unwrap_err();
        assert!(matches!(err, PlanError::Binding(m) if m.contains("ambiguous")));
    }

    #[test]
    fn qualified_columns_resolve() {
        let q = bind("SELECT s.k, dim.label FROM s JOIN dim ON s.k = dim.k").unwrap();
        assert_eq!(q.plan.names(), vec!["k", "label"]);
        // join node present with correct keys
        let mut found_join = false;
        fn walk(p: &LogicalPlan, found: &mut bool) {
            if let LogicalPlan::Join { left_key, right_key, .. } = p {
                assert_eq!((*left_key, *right_key), (1, 0));
                *found = true;
            }
            match p {
                LogicalPlan::Filter { input, .. }
                | LogicalPlan::Project { input, .. }
                | LogicalPlan::Aggregate { input, .. }
                | LogicalPlan::Distinct { input }
                | LogicalPlan::Sort { input, .. }
                | LogicalPlan::Limit { input, .. } => walk(input, found),
                LogicalPlan::Join { left, right, .. } => {
                    walk(left, found);
                    walk(right, found);
                }
                LogicalPlan::Scan(_) => {}
            }
        }
        walk(&q.plan, &mut found_join);
        assert!(found_join);
    }

    #[test]
    fn comma_join_key_from_where() {
        let q = bind("SELECT s.v FROM s, dim WHERE s.k = dim.k AND s.v > 0.0").unwrap();
        // the equality must be consumed by the join, leaving v > 0 as filter
        let rendered = crate::explain::explain(&q.plan);
        assert!(rendered.contains("Join"), "{rendered}");
        assert!(rendered.contains("> 0"), "{rendered}");
    }

    #[test]
    fn cross_join_rejected() {
        let err = bind("SELECT s.v FROM s, dim").unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(m) if m.contains("equi-join")));
    }

    #[test]
    fn aggregate_query_shape() {
        let q = bind(
            "SELECT k, SUM(v) AS total, COUNT(*) FROM s GROUP BY k HAVING SUM(v) > 10 ORDER BY k LIMIT 3",
        )
        .unwrap();
        assert_eq!(q.plan.names(), vec!["k", "total", "COUNT(*)"]);
        assert_eq!(
            q.plan.types(),
            vec![DataType::Int, DataType::Float, DataType::Int]
        );
        assert!(q.plan.aggregate_node().is_some());
    }

    #[test]
    fn aggregate_dedup_slots() {
        // SUM(v) appears twice, must be computed once
        let q = bind("SELECT SUM(v), SUM(v) + 1 FROM s").unwrap();
        if let Some(LogicalPlan::Aggregate { aggs, .. }) = q.plan.aggregate_node() {
            assert_eq!(aggs.len(), 1);
        } else {
            panic!("no aggregate node");
        }
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let err = bind("SELECT v, SUM(v) FROM s GROUP BY k").unwrap_err();
        assert!(matches!(err, PlanError::Binding(m) if m.contains("GROUP BY")));
    }

    #[test]
    fn group_key_expression_matched() {
        let q = bind("SELECT k % 10, COUNT(*) FROM s GROUP BY k % 10").unwrap();
        assert_eq!(q.plan.names()[0], "(k % 10)");
    }

    #[test]
    fn window_on_table_rejected() {
        let err = bind("SELECT k FROM dim [ROWS 10]").unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(m) if m.contains("non-stream")));
    }

    #[test]
    fn range_window_column_checked() {
        assert!(bind("SELECT AVG(v) FROM s [RANGE 100 ON ts SLIDE 10]").is_ok());
        let err = bind("SELECT AVG(v) FROM s [RANGE 100 ON v SLIDE 10]").unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)));
        assert!(bind("SELECT AVG(v) FROM s [RANGE 100 ON missing SLIDE 10]").is_err());
    }

    #[test]
    fn order_by_plain_column_non_aggregate() {
        let q = bind("SELECT v FROM s ORDER BY k DESC").unwrap();
        let rendered = crate::explain::explain(&q.plan);
        assert!(rendered.contains("Sort"));
    }

    #[test]
    fn where_aggregate_rejected() {
        let err = bind("SELECT k FROM s WHERE SUM(v) > 1").unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(m) if m.contains("WHERE")));
    }

    #[test]
    fn duplicate_bindings_rejected() {
        let err = bind("SELECT 1 FROM s JOIN s ON s.k = s.k").unwrap_err();
        assert!(matches!(err, PlanError::Binding(m) if m.contains("duplicate")));
    }

    #[test]
    fn literal_conversion() {
        use datacell_sql::parse_expression;
        assert_eq!(
            literal_to_value(&parse_expression("42").unwrap()).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            literal_to_value(&parse_expression("-7").unwrap()).unwrap(),
            Value::Int(-7)
        );
        assert_eq!(
            literal_to_value(&parse_expression("NULL").unwrap()).unwrap(),
            Value::Null
        );
        assert!(literal_to_value(&parse_expression("1 + 2").unwrap()).is_err());
    }

    #[test]
    fn distinct_non_aggregate() {
        let q = bind("SELECT DISTINCT k FROM s").unwrap();
        assert!(matches!(q.plan, LogicalPlan::Distinct { .. }));
    }
}
