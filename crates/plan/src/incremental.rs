//! Incremental sliding-window rewriting.
//!
//! "Conceptually, DataCell achieves incremental processing by partitioning a
//! window into n smaller parts, called basic windows. Each basic window is
//! of equal size to the sliding step of the window and is processed
//! separately. The resulting partial results are then merged to yield the
//! complete window result. We design and develop the incremental logic at
//! the query plan level…" (paper §3).
//!
//! This module does exactly that, at the plan level:
//!
//! * [`rewrite_incremental`] splits an optimized continuous plan at its
//!   blocking operator (the Aggregate, or the stream⋈stream Join) into a
//!   **pre-plan** that runs independently per basic window, a mergeable
//!   **partial state** ([`PartialAgg`]), and a **post-plan** that runs over
//!   the merged result ("query plans are split such as as many operators as
//!   possible can run independently on each portion of a sliding window
//!   stream. Then, when blocking operators occur, the plan merges
//!   intermediates from the active slides").
//! * The runtime ring buffers that hold the cached partials live in
//!   `datacell-core`'s factory; this module is purely the plan transform
//!   plus the partial-state algebra.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use datacell_algebra::{
    fused_global_state, fused_grouped_states, group_by, AggState, Candidates, JoinKey,
};
use datacell_sql::WindowSpec;
use datacell_storage::{Bat, Chunk, DataType, Value};

use crate::error::Result;
use crate::expr::BoundExpr;
use crate::logical::{AggSpec, LogicalPlan, ScanNode};
use crate::physical;

/// Binding name under which the post-plan reads the merged aggregate.
pub const AGG_BINDING: &str = "__agg__";
/// Binding name under which a post-plan reads merged join pairs.
pub const JOIN_BINDING: &str = "__join__";

/// A windowed stream input of a continuous plan.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInput {
    /// Binding name inside the plan.
    pub binding: String,
    /// Catalog stream name.
    pub object: String,
    /// Window clause (None ⇒ unwindowed continuous query).
    pub window: Option<WindowSpec>,
}

/// Incremental strategy chosen for a continuous plan.
// One instance per registered query; the size gap between the variants
// doesn't matter and boxing would complicate every factory match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum IncrementalPlan {
    /// Single windowed stream → (scalar pipeline) → Aggregate → post.
    /// Partial aggregate states are cached per basic window and merged.
    Aggregate(IncrementalAggPlan),
    /// Two windowed streams joined (then optionally aggregated): join
    /// outputs are cached per basic-window *pair* and merged.
    Join(IncrementalJoinPlan),
}

/// Split form of a single-stream aggregate query.
#[derive(Debug, Clone)]
pub struct IncrementalAggPlan {
    /// The windowed stream that drives the factory.
    pub stream: StreamInput,
    /// Plan evaluated on each basic-window delta (stream scan + filters +
    /// table joins), producing the aggregate input.
    pub pre_plan: LogicalPlan,
    /// Group key expressions over the pre-plan output.
    pub group_exprs: Vec<BoundExpr>,
    /// Group key output types.
    pub group_types: Vec<DataType>,
    /// Aggregates.
    pub aggs: Vec<AggSpec>,
    /// Plan above the Aggregate, reading binding [`AGG_BINDING`].
    pub post_plan: LogicalPlan,
}

/// Split form of a two-stream windowed join query.
#[derive(Debug, Clone)]
pub struct IncrementalJoinPlan {
    /// Left windowed stream.
    pub left_stream: StreamInput,
    /// Right windowed stream.
    pub right_stream: StreamInput,
    /// Per-delta plan of the left side (scan + filters + table joins).
    pub left_pre: LogicalPlan,
    /// Per-delta plan of the right side.
    pub right_pre: LogicalPlan,
    /// Join key column in the left pre-plan output.
    pub left_key: usize,
    /// Join key column in the right pre-plan output.
    pub right_key: usize,
    /// Residual predicate over joined pairs (left ++ right schema).
    pub pair_filter: Option<BoundExpr>,
    /// Aggregation over pairs, if the query aggregates.
    pub agg: Option<PairAggregate>,
    /// Plan above the blocking operator, reading [`AGG_BINDING`] when `agg`
    /// is set, else [`JOIN_BINDING`].
    pub post_plan: LogicalPlan,
}

/// Aggregate step of an [`IncrementalJoinPlan`].
#[derive(Debug, Clone)]
pub struct PairAggregate {
    /// Group key expressions over the joined-pair schema.
    pub group_exprs: Vec<BoundExpr>,
    /// Group key output types.
    pub group_types: Vec<DataType>,
    /// Aggregates.
    pub aggs: Vec<AggSpec>,
}

// ---------------------------------------------------------------------
// PartialAgg: the mergeable, value-keyed grouped aggregate state.
// ---------------------------------------------------------------------

/// Key of one group across the group-by columns (`None` = NULL).
pub type GroupKey = Vec<Option<JoinKey>>;

/// A mergeable partial aggregation — the cached intermediate of one basic
/// window ("DataCell maintains intermediate results in columnar form to
/// avoid repeated evaluation of the same stream portions", paper abstract).
#[derive(Debug, Clone, Default)]
pub struct PartialAgg {
    groups: HashMap<GroupKey, (Vec<Value>, Vec<AggState>)>,
    /// First-appearance order of the keys, for deterministic output.
    order: Vec<GroupKey>,
    /// Rows folded in.
    pub rows_in: usize,
}

impl PartialAgg {
    /// Compute the partial aggregate of one chunk.
    pub fn compute(
        chunk: &Chunk,
        group_exprs: &[BoundExpr],
        aggs: &[AggSpec],
    ) -> Result<Self> {
        let mut out = PartialAgg::default();
        out.fold(chunk, group_exprs, aggs)?;
        Ok(out)
    }

    /// Fold another chunk into this partial.
    pub fn fold(
        &mut self,
        chunk: &Chunk,
        group_exprs: &[BoundExpr],
        aggs: &[AggSpec],
    ) -> Result<()> {
        let cand = if chunk.arity() == 0 {
            datacell_algebra::Candidates::range(0, chunk.len() as u64)
        } else {
            datacell_algebra::Candidates::all(chunk.column(0))
        };
        let n = cand.len();
        self.rows_in += n;

        // Evaluate group keys and aggregate args in bulk first.
        let keys: Result<Vec<Bat>> = group_exprs
            .iter()
            .map(|e| crate::expr::eval_expr(e, chunk, &cand))
            .collect();
        let keys = keys?;
        let args: Result<Vec<Option<Bat>>> = aggs
            .iter()
            .map(|a| {
                a.arg
                    .as_ref()
                    .map(|e| crate::expr::eval_expr(e, chunk, &cand))
                    .transpose()
            })
            .collect();
        let args = args?;

        if group_exprs.is_empty() {
            // Global aggregation: one group with the empty key.
            let entry = self.entry(GroupKey::new(), Vec::new(), aggs);
            for (slot, _spec) in aggs.iter().enumerate() {
                match &args[slot] {
                    Some(vals) => entry[slot].update_bulk(vals, None),
                    None => {
                        for _ in 0..n {
                            entry[slot].update(&Value::Bool(true));
                        }
                    }
                }
            }
            return Ok(());
        }

        for row in 0..n {
            let key: GroupKey = keys
                .iter()
                .map(|k| JoinKey::from_value(&k.get_at(row)))
                .collect();
            // `entry` ignores `values` for an existing group, so only
            // materialize them when the key is new.
            let values: Vec<Value> = if self.groups.contains_key(&key) {
                Vec::new()
            } else {
                keys.iter().map(|k| k.get_at(row)).collect()
            };
            let states = self.entry(key, values, aggs);
            for (slot, _spec) in aggs.iter().enumerate() {
                match &args[slot] {
                    Some(vals) => states[slot].update(&vals.get_at(row)),
                    None => states[slot].update(&Value::Bool(true)),
                }
            }
        }
        Ok(())
    }

    /// Fused filter+aggregate fast path: compute the partial directly from
    /// the **raw** basic-window delta and a selection vector, without
    /// materializing the filtered chunk ([`crate::physical::execute`] of
    /// the pre-plan) first.
    ///
    /// Applies when every group key and aggregate argument is a plain
    /// column reference into `chunk` and the fused kernels accept the
    /// column shapes; returns `Ok(None)` otherwise so the caller falls back
    /// to the general path. A `Some` result is field-identical to
    /// `execute(pre_plan)` + [`PartialAgg::compute`] — same group order
    /// (first appearance), same accumulation order (so float sums match
    /// bit-for-bit) — which the shared-execution equivalence and WAL
    /// recovery tests rely on.
    pub fn compute_fused(
        chunk: &Chunk,
        cand: &Candidates,
        group_exprs: &[BoundExpr],
        aggs: &[AggSpec],
    ) -> Result<Option<Self>> {
        let col_of = |e: &BoundExpr| -> Option<usize> {
            match e {
                BoundExpr::Col(k) if *k < chunk.arity() => Some(*k),
                _ => None,
            }
        };
        let mut arg_cols: Vec<Option<&Bat>> = Vec::with_capacity(aggs.len());
        for a in aggs {
            match &a.arg {
                None => arg_cols.push(None),
                Some(e) => match col_of(e) {
                    Some(k) => arg_cols.push(Some(chunk.column(k))),
                    None => return Ok(None),
                },
            }
        }
        let mut key_cols: Vec<&Bat> = Vec::with_capacity(group_exprs.len());
        for e in group_exprs {
            match col_of(e) {
                Some(k) => key_cols.push(chunk.column(k)),
                None => return Ok(None),
            }
        }

        let mut out = PartialAgg { rows_in: cand.len(), ..Default::default() };

        if group_exprs.is_empty() {
            let mut states = Vec::with_capacity(aggs.len());
            for (spec, col) in aggs.iter().zip(&arg_cols) {
                match fused_global_state(spec.kind, *col, cand) {
                    Some(s) => states.push(s),
                    None => return Ok(None),
                }
            }
            out.order.push(GroupKey::new());
            out.groups.insert(GroupKey::new(), (Vec::new(), states));
            return Ok(Some(out));
        }

        let map = group_by(&key_cols, Some(cand))?;
        let mut per_agg: Vec<Vec<AggState>> = Vec::with_capacity(aggs.len());
        for (spec, col) in aggs.iter().zip(&arg_cols) {
            match fused_grouped_states(spec.kind, *col, &map, Some(cand)) {
                Some(states) => per_agg.push(states),
                None => return Ok(None),
            }
        }
        for (g, &rep) in map.representatives.iter().enumerate() {
            let key: GroupKey =
                key_cols.iter().map(|k| JoinKey::from_value(&k.get_at(rep))).collect();
            let values: Vec<Value> = key_cols.iter().map(|k| k.get_at(rep)).collect();
            let states: Vec<AggState> = per_agg.iter().map(|s| s[g].clone()).collect();
            out.order.push(key.clone());
            out.groups.insert(key, (values, states));
        }
        Ok(Some(out))
    }

    fn entry(
        &mut self,
        key: GroupKey,
        values: Vec<Value>,
        aggs: &[AggSpec],
    ) -> &mut Vec<AggState> {
        match self.groups.entry(key) {
            Entry::Occupied(e) => &mut e.into_mut().1,
            Entry::Vacant(e) => {
                self.order.push(e.key().clone());
                let states = aggs.iter().map(|a| AggState::new(a.kind)).collect();
                &mut e.insert((values, states)).1
            }
        }
    }

    /// Merge another partial in (associative, commutative per group).
    pub fn merge(&mut self, other: &PartialAgg) {
        self.rows_in += other.rows_in;
        for key in &other.order {
            let (values, states) = &other.groups[key];
            match self.groups.get_mut(key) {
                Some((_, mine)) => {
                    for (a, b) in mine.iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
                None => {
                    self.groups.insert(key.clone(), (values.clone(), states.clone()));
                    self.order.push(key.clone());
                }
            }
        }
    }

    /// Number of groups.
    pub fn ngroups(&self) -> usize {
        self.order.len()
    }

    /// Materialize as a chunk `[group keys…, aggregates…]`.
    ///
    /// `global` aggregation (no keys) yields exactly one row even when no
    /// tuples were folded (SQL semantics).
    pub fn finalize(
        &self,
        group_exprs: &[BoundExpr],
        group_types: &[DataType],
        aggs: &[AggSpec],
    ) -> Result<Chunk> {
        if group_exprs.is_empty() {
            let mut cols = Vec::with_capacity(aggs.len());
            let empty: Vec<AggState>;
            let states: &[AggState] = match self.groups.get(&GroupKey::new()) {
                Some((_, s)) => s,
                None => {
                    empty = aggs.iter().map(|a| AggState::new(a.kind)).collect();
                    &empty
                }
            };
            for (spec, st) in aggs.iter().zip(states) {
                let mut bat = Bat::new(spec.ty);
                bat.push(&st.finalize().coerce(spec.ty).unwrap_or(Value::Null))?;
                cols.push(bat);
            }
            return Ok(Chunk::new(cols)?);
        }

        let mut key_cols: Vec<Bat> =
            group_types.iter().map(|t| Bat::new(*t)).collect();
        let mut agg_cols: Vec<Bat> = aggs.iter().map(|a| Bat::new(a.ty)).collect();
        for key in &self.order {
            let (values, states) = &self.groups[key];
            for (col, v) in key_cols.iter_mut().zip(values) {
                col.push(&v.coerce(col.data_type()).unwrap_or(Value::Null))?;
            }
            for (col, st) in agg_cols.iter_mut().zip(states) {
                col.push(&st.finalize().coerce(col.data_type()).unwrap_or(Value::Null))?;
            }
        }
        key_cols.extend(agg_cols);
        Ok(Chunk::new(key_cols)?)
    }
}

// ---------------------------------------------------------------------
// Plan splitting
// ---------------------------------------------------------------------

/// All stream inputs of a plan.
pub fn stream_inputs(plan: &LogicalPlan) -> Vec<StreamInput> {
    plan.scans()
        .into_iter()
        .filter(|s| s.is_stream)
        .map(|s| StreamInput {
            binding: s.binding.clone(),
            object: s.object.clone(),
            window: s.window.clone(),
        })
        .collect()
}

/// Attempt to rewrite an optimized continuous plan into incremental form.
/// Returns `None` when the shape does not decompose (the factory then runs
/// in full re-evaluation mode, the paper's first execution mode).
pub fn rewrite_incremental(plan: &LogicalPlan) -> Option<IncrementalPlan> {
    let streams = stream_inputs(plan);
    match streams.len() {
        1 => rewrite_single_stream(plan, &streams[0]),
        2 => rewrite_two_streams(plan, &streams),
        _ => None,
    }
}

/// Split at the Aggregate for a single windowed stream.
fn rewrite_single_stream(plan: &LogicalPlan, stream: &StreamInput) -> Option<IncrementalPlan> {
    stream.window.as_ref()?; // unwindowed queries re-evaluate trivially
    // Locate the aggregate node and build the post-plan with the aggregate
    // replaced by a scan of AGG_BINDING.
    let (post_plan, agg) = split_at_aggregate(plan)?;
    let LogicalPlan::Aggregate { input, group_exprs, group_types, aggs, .. } = agg else {
        return None;
    };
    // Pre-plan must contain only this stream and tables.
    if stream_inputs(input).len() != 1 {
        return None;
    }
    // MIN/MAX merge correctly across basic windows because expiry drops
    // whole partials; all supported aggregates are mergeable.
    Some(IncrementalPlan::Aggregate(IncrementalAggPlan {
        stream: stream.clone(),
        pre_plan: (**input).clone(),
        group_exprs: group_exprs.clone(),
        group_types: group_types.clone(),
        aggs: aggs.clone(),
        post_plan,
    }))
}

/// Split a two-stream plan at the stream⋈stream join (and the aggregate
/// above it, if any).
fn rewrite_two_streams(plan: &LogicalPlan, streams: &[StreamInput]) -> Option<IncrementalPlan> {
    if streams.iter().any(|s| s.window.is_none()) {
        return None;
    }
    // Expected shape: post* ( Aggregate? ( Filter? ( Join(l, r) ) ) )
    let (post_after_agg, agg_node) = match split_at_aggregate(plan) {
        Some((post, agg)) => (Some(post), Some(agg)),
        None => (None, None),
    };

    // The subtree to decompose at the join.
    let join_region: &LogicalPlan = match &agg_node {
        Some(LogicalPlan::Aggregate { input, .. }) => input,
        _ => plan,
    };

    // Peel an optional Filter above the Join.
    let (pair_filter, join_node) = match join_region {
        LogicalPlan::Filter { input, predicate } => (Some(predicate.clone()), input.as_ref()),
        other => (None, other),
    };
    let LogicalPlan::Join { left, right, left_key, right_key } = join_node else {
        return None;
    };
    // Each side must contain exactly one windowed stream.
    let ls = stream_inputs(left);
    let rs = stream_inputs(right);
    if ls.len() != 1 || rs.len() != 1 {
        return None;
    }

    let (agg, post_plan) = match (agg_node, post_after_agg) {
        (Some(LogicalPlan::Aggregate { group_exprs, group_types, aggs, .. }), Some(post)) => (
            Some(PairAggregate {
                group_exprs: group_exprs.clone(),
                group_types: group_types.clone(),
                aggs: aggs.clone(),
            }),
            post,
        ),
        _ => {
            // Pure join query: post-plan is everything above the join
            // region, reading JOIN_BINDING.
            let pair_schema_names = join_node.names();
            let pair_schema_types = join_node.types();
            let post = replace_subtree(
                plan,
                join_region,
                LogicalPlan::Scan(ScanNode {
                    binding: JOIN_BINDING.into(),
                    object: JOIN_BINDING.into(),
                    is_stream: false,
                    window: None,
                    names: pair_schema_names,
                    types: pair_schema_types,
                }),
            )?;
            // The pair filter stays inside the cached pair computation, so
            // drop it from the post side (replace_subtree swapped the whole
            // filtered region).
            (None, post)
        }
    };

    Some(IncrementalPlan::Join(IncrementalJoinPlan {
        left_stream: ls[0].clone(),
        right_stream: rs[0].clone(),
        left_pre: (**left).clone(),
        right_pre: (**right).clone(),
        left_key: *left_key,
        right_key: *right_key,
        pair_filter,
        agg,
        post_plan,
    }))
}

/// Find the unique Aggregate reachable through unary operators from the
/// root; return the post-plan (aggregate replaced by a scan of
/// [`AGG_BINDING`]) and a reference to the aggregate node.
fn split_at_aggregate(plan: &LogicalPlan) -> Option<(LogicalPlan, &LogicalPlan)> {
    let agg = plan.aggregate_node()?;
    let LogicalPlan::Aggregate { group_names, group_types, aggs, .. } = agg else {
        return None;
    };
    let mut names = group_names.clone();
    names.extend(aggs.iter().map(|a| a.name.clone()));
    let mut types = group_types.clone();
    types.extend(aggs.iter().map(|a| a.ty));
    let replacement = LogicalPlan::Scan(ScanNode {
        binding: AGG_BINDING.into(),
        object: AGG_BINDING.into(),
        is_stream: false,
        window: None,
        names,
        types,
    });
    let post = replace_subtree(plan, agg, replacement)?;
    Some((post, agg))
}

/// Clone `plan` with the subtree pointer-equal to `target` replaced.
fn replace_subtree(
    plan: &LogicalPlan,
    target: &LogicalPlan,
    replacement: LogicalPlan,
) -> Option<LogicalPlan> {
    if std::ptr::eq(plan, target) {
        return Some(replacement);
    }
    Some(match plan {
        LogicalPlan::Scan(_) => return None,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(replace_subtree(input, target, replacement)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { input, exprs, names, types } => LogicalPlan::Project {
            input: Box::new(replace_subtree(input, target, replacement)?),
            exprs: exprs.clone(),
            names: names.clone(),
            types: types.clone(),
        },
        LogicalPlan::Aggregate { input, group_exprs, group_names, group_types, aggs } => {
            LogicalPlan::Aggregate {
                input: Box::new(replace_subtree(input, target, replacement)?),
                group_exprs: group_exprs.clone(),
                group_names: group_names.clone(),
                group_types: group_types.clone(),
                aggs: aggs.clone(),
            }
        }
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(replace_subtree(input, target, replacement)?),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(replace_subtree(input, target, replacement)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(replace_subtree(input, target, replacement)?),
            n: *n,
        },
        LogicalPlan::Join { .. } => return None,
    })
}

/// Execute a post-plan over a merged aggregate chunk.
pub fn run_post_plan(
    post_plan: &LogicalPlan,
    binding: &str,
    merged: Chunk,
    extra_sources: &physical::ExecSources,
) -> Result<Chunk> {
    let mut sources = extra_sources.clone();
    sources.bind(binding, merged);
    physical::execute(post_plan, &sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_algebra::AggKind;

    fn agg_specs() -> Vec<AggSpec> {
        vec![
            AggSpec { kind: AggKind::Sum, arg: Some(BoundExpr::Col(1)), name: "s".into(), ty: DataType::Int },
            AggSpec { kind: AggKind::CountStar, arg: None, name: "c".into(), ty: DataType::Int },
            AggSpec { kind: AggKind::Min, arg: Some(BoundExpr::Col(1)), name: "m".into(), ty: DataType::Int },
        ]
    }

    fn chunk(keys: Vec<i64>, vals: Vec<i64>) -> Chunk {
        Chunk::new(vec![Bat::from_ints(keys), Bat::from_ints(vals)]).unwrap()
    }

    #[test]
    fn partial_agg_matches_whole_computation() {
        let group = vec![BoundExpr::Col(0)];
        let aggs = agg_specs();
        let whole = PartialAgg::compute(
            &chunk(vec![1, 2, 1, 2], vec![10, 20, 30, 40]),
            &group,
            &aggs,
        )
        .unwrap();
        let mut merged = PartialAgg::compute(&chunk(vec![1, 2], vec![10, 20]), &group, &aggs)
            .unwrap();
        merged.merge(
            &PartialAgg::compute(&chunk(vec![1, 2], vec![30, 40]), &group, &aggs).unwrap(),
        );
        let a = whole.finalize(&group, &[DataType::Int], &aggs).unwrap();
        let b = merged.finalize(&group, &[DataType::Int], &aggs).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.row(0), vec![Value::Int(1), Value::Int(40), Value::Int(2), Value::Int(10)]);
    }

    #[test]
    fn global_partial_agg() {
        let aggs = agg_specs();
        let mut p = PartialAgg::compute(&chunk(vec![1], vec![5]), &[], &aggs).unwrap();
        p.merge(&PartialAgg::compute(&chunk(vec![2], vec![7]), &[], &aggs).unwrap());
        let out = p.finalize(&[], &[], &aggs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), vec![Value::Int(12), Value::Int(2), Value::Int(5)]);
    }

    #[test]
    fn empty_global_partial_yields_row() {
        let aggs = agg_specs();
        let p = PartialAgg::default();
        let out = p.finalize(&[], &[], &aggs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), vec![Value::Null, Value::Int(0), Value::Null]);
    }

    #[test]
    fn merge_is_commutative_on_groups() {
        let group = vec![BoundExpr::Col(0)];
        let aggs = agg_specs();
        let a = PartialAgg::compute(&chunk(vec![1, 3], vec![1, 3]), &group, &aggs).unwrap();
        let b = PartialAgg::compute(&chunk(vec![3, 2], vec![30, 2]), &group, &aggs).unwrap();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // group order differs, but contents per key must agree
        assert_eq!(ab.ngroups(), ba.ngroups());
        let fa = ab.finalize(&group, &[DataType::Int], &aggs).unwrap();
        let fb = ba.finalize(&group, &[DataType::Int], &aggs).unwrap();
        let mut ra: Vec<_> = fa.rows().collect();
        let mut rb: Vec<_> = fb.rows().collect();
        let key = |r: &Vec<Value>| r[0].as_int().unwrap();
        ra.sort_by_key(key);
        rb.sort_by_key(key);
        assert_eq!(ra, rb);
    }

    #[test]
    fn fused_compute_matches_general_path() {
        let group = vec![BoundExpr::Col(0)];
        let aggs = agg_specs();
        let data = chunk(vec![1, 2, 1, 2, 3], vec![10, 20, 30, 40, 50]);
        for cand in [
            Candidates::all(data.column(0)),
            Candidates::range(1, 4),
            Candidates::List(vec![0, 2, 4]),
        ] {
            // General path: materialize the selected rows, then compute.
            let filtered = datacell_algebra::fetch_chunk(&data, &cand);
            let general = PartialAgg::compute(&filtered, &group, &aggs).unwrap();
            let fused = PartialAgg::compute_fused(&data, &cand, &group, &aggs)
                .unwrap()
                .expect("shape is fusible");
            let a = general.finalize(&group, &[DataType::Int], &aggs).unwrap();
            let b = fused.finalize(&group, &[DataType::Int], &aggs).unwrap();
            assert_eq!(a, b, "cand {cand:?}");
            assert_eq!(general.rows_in, fused.rows_in);

            // Global aggregation too.
            let general = PartialAgg::compute(&filtered, &[], &aggs).unwrap();
            let fused = PartialAgg::compute_fused(&data, &cand, &[], &aggs)
                .unwrap()
                .expect("global shape is fusible");
            let a = general.finalize(&[], &[], &aggs).unwrap();
            let b = fused.finalize(&[], &[], &aggs).unwrap();
            assert_eq!(a, b, "global cand {cand:?}");
        }
    }

    #[test]
    fn fused_compute_rejects_non_column_shapes() {
        let aggs = vec![AggSpec {
            kind: AggKind::Sum,
            arg: Some(BoundExpr::Col(9)), // out of range
            name: "s".into(),
            ty: DataType::Int,
        }];
        let data = chunk(vec![1], vec![2]);
        let cand = Candidates::all(data.column(0));
        assert!(PartialAgg::compute_fused(&data, &cand, &[], &aggs).unwrap().is_none());
    }

    #[test]
    fn rows_in_tracks_volume() {
        let aggs = agg_specs();
        let p = PartialAgg::compute(&chunk(vec![1, 1, 1], vec![1, 2, 3]), &[], &aggs).unwrap();
        assert_eq!(p.rows_in, 3);
    }
}
