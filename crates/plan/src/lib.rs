//! # datacell-plan
//!
//! The query-compilation middle of DataCell (paper Figure 1:
//! Parser/Compiler → Optimizer → **Rewriter**): binding SQL to the catalog,
//! rule-based optimization, bulk plan execution, and the continuous /
//! incremental rewriting that turns DBMS plans into online plans.
//!
//! * [`binder`] — name resolution, join-key extraction, aggregate split.
//! * [`expr`] — bound expressions evaluated in bulk over chunks.
//! * [`logical`] — the plan tree.
//! * [`optimizer`] — constant folding, filter pushdown, filter merging.
//! * [`physical`] — the bulk executor (and partial-aggregation states).
//! * [`continuous`] — compilation of continuous plans and execution modes.
//! * [`incremental`] — basic-window splitting and mergeable partials.
//! * [`explain`] — plan rendering (the demo's plan inspection pane).
//! * [`shared`] — structural fingerprints of shareable subplan prefixes.

#![warn(missing_docs)]

pub mod analyze;
pub mod binder;
pub mod continuous;
pub mod error;
pub mod explain;
pub mod expr;
pub mod incremental;
pub mod logical;
pub mod optimizer;
pub mod physical;
pub mod shared;

pub use analyze::{render_analyze, AnalyzeRow};
pub use binder::{literal_to_value, type_of, Binder, BoundQuery};
pub use continuous::{compile, CompiledQuery, ExecutionMode};
pub use error::{PlanError, Result};
pub use explain::explain;
pub use expr::{eval_expr, eval_predicate, BoundExpr};
pub use incremental::{
    rewrite_incremental, IncrementalAggPlan, IncrementalJoinPlan, IncrementalPlan,
    PairAggregate, PartialAgg, StreamInput, AGG_BINDING, JOIN_BINDING,
};
pub use logical::{AggSpec, LogicalPlan, ScanNode};
pub use optimizer::optimize;
pub use physical::{execute, execute_traced, ExecSources, OpTrace};
pub use shared::{shared_shape, sharing_section, SharedNodeKind, SharedShape, SubplanKey};
