//! Bound expressions: column references resolved to positions in a flat
//! input row, evaluable in bulk over a [`Chunk`].
//!
//! Predicates compile to candidate-list pipelines (select → select → …)
//! exactly like MonetDB plans; value expressions compile to `batcalc` calls.

use datacell_algebra::{
    arith_cols, arith_const, arith_const_left, select, select_between, select_null, ArithOp,
    Candidates, CmpOp,
};
use datacell_storage::{Bat, Chunk, DataType, Value, Vector};

use crate::error::{PlanError, Result};

/// An expression whose column references are input positions.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Input column at position `i`.
    Col(usize),
    /// Constant.
    Const(Value),
    /// Arithmetic `left op right`.
    Arith {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: ArithOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Comparison producing a boolean.
    Cmp {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Logical AND.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical OR.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical NOT.
    Not(Box<BoundExpr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// IS NOT NULL?
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (bounds must be constants after folding
    /// or arbitrary expressions — both supported).
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
        /// NOT BETWEEN?
        negated: bool,
    },
}

impl BoundExpr {
    /// Infer the output type against input column types.
    pub fn output_type(&self, input: &[DataType]) -> Result<DataType> {
        match self {
            BoundExpr::Col(i) => input.get(*i).copied().ok_or_else(|| {
                PlanError::Internal(format!("column index {i} out of range"))
            }),
            BoundExpr::Const(v) => Ok(v.data_type().unwrap_or(DataType::Int)),
            BoundExpr::Arith { left, op, right } => {
                let lt = left.output_type(input)?;
                let rt = right.output_type(input)?;
                lt.arith_result(rt).ok_or_else(|| {
                    PlanError::Unsupported(format!("arithmetic {lt} {} {rt}", op.sql()))
                })
            }
            BoundExpr::Cmp { .. }
            | BoundExpr::And(..)
            | BoundExpr::Or(..)
            | BoundExpr::Not(..)
            | BoundExpr::IsNull { .. }
            | BoundExpr::Between { .. } => Ok(DataType::Bool),
        }
    }

    /// True iff the expression references no input columns.
    pub fn is_const(&self) -> bool {
        match self {
            BoundExpr::Col(_) => false,
            BoundExpr::Const(_) => true,
            BoundExpr::Arith { left, right, .. } | BoundExpr::Cmp { left, right, .. } => {
                left.is_const() && right.is_const()
            }
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => a.is_const() && b.is_const(),
            BoundExpr::Not(e) | BoundExpr::IsNull { expr: e, .. } => e.is_const(),
            BoundExpr::Between { expr, low, high, .. } => {
                expr.is_const() && low.is_const() && high.is_const()
            }
        }
    }

    /// Collect referenced column positions.
    pub fn collect_cols(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Col(i) => out.push(*i),
            BoundExpr::Const(_) => {}
            BoundExpr::Arith { left, right, .. } | BoundExpr::Cmp { left, right, .. } => {
                left.collect_cols(out);
                right.collect_cols(out);
            }
            BoundExpr::And(a, b) | BoundExpr::Or(a, b) => {
                a.collect_cols(out);
                b.collect_cols(out);
            }
            BoundExpr::Not(e) | BoundExpr::IsNull { expr: e, .. } => e.collect_cols(out),
            BoundExpr::Between { expr, low, high, .. } => {
                expr.collect_cols(out);
                low.collect_cols(out);
                high.collect_cols(out);
            }
        }
    }

    /// Rewrite column indices through `mapping` (old → new position).
    pub fn remap(&self, mapping: &[usize]) -> BoundExpr {
        match self {
            BoundExpr::Col(i) => BoundExpr::Col(mapping[*i]),
            BoundExpr::Const(v) => BoundExpr::Const(v.clone()),
            BoundExpr::Arith { left, op, right } => BoundExpr::Arith {
                left: Box::new(left.remap(mapping)),
                op: *op,
                right: Box::new(right.remap(mapping)),
            },
            BoundExpr::Cmp { left, op, right } => BoundExpr::Cmp {
                left: Box::new(left.remap(mapping)),
                op: *op,
                right: Box::new(right.remap(mapping)),
            },
            BoundExpr::And(a, b) => {
                BoundExpr::And(Box::new(a.remap(mapping)), Box::new(b.remap(mapping)))
            }
            BoundExpr::Or(a, b) => {
                BoundExpr::Or(Box::new(a.remap(mapping)), Box::new(b.remap(mapping)))
            }
            BoundExpr::Not(e) => BoundExpr::Not(Box::new(e.remap(mapping))),
            BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.remap(mapping)),
                negated: *negated,
            },
            BoundExpr::Between { expr, low, high, negated } => BoundExpr::Between {
                expr: Box::new(expr.remap(mapping)),
                low: Box::new(low.remap(mapping)),
                high: Box::new(high.remap(mapping)),
                negated: *negated,
            },
        }
    }

    /// Evaluate as a scalar (valid when `is_const()`).
    pub fn eval_const(&self) -> Result<Value> {
        let empty = Chunk::empty();
        let bat = eval_expr(self, &empty, &Candidates::range(0, 1))?;
        Ok(bat.get_at(0))
    }

    /// Render for EXPLAIN output.
    pub fn render(&self, names: &[String]) -> String {
        match self {
            BoundExpr::Col(i) => names
                .get(*i)
                .cloned()
                .unwrap_or_else(|| format!("#{i}")),
            BoundExpr::Const(v) => match v {
                Value::Str(s) => format!("'{s}'"),
                other => other.to_string(),
            },
            BoundExpr::Arith { left, op, right } => {
                format!("({} {} {})", left.render(names), op.sql(), right.render(names))
            }
            BoundExpr::Cmp { left, op, right } => {
                format!("({} {} {})", left.render(names), op.sql(), right.render(names))
            }
            BoundExpr::And(a, b) => format!("({} AND {})", a.render(names), b.render(names)),
            BoundExpr::Or(a, b) => format!("({} OR {})", a.render(names), b.render(names)),
            BoundExpr::Not(e) => format!("(NOT {})", e.render(names)),
            BoundExpr::IsNull { expr, negated } => {
                format!("({} IS {}NULL)", expr.render(names), if *negated { "NOT " } else { "" })
            }
            BoundExpr::Between { expr, low, high, negated } => format!(
                "({} {}BETWEEN {} AND {})",
                expr.render(names),
                if *negated { "NOT " } else { "" },
                low.render(names),
                high.render(names)
            ),
        }
    }
}

/// Evaluate a value expression over the candidate rows of `chunk`,
/// producing a dense BAT aligned with candidate order.
pub fn eval_expr(expr: &BoundExpr, chunk: &Chunk, cand: &Candidates) -> Result<Bat> {
    match expr {
        BoundExpr::Col(i) => {
            let col = chunk
                .columns()
                .get(*i)
                .ok_or_else(|| PlanError::Internal(format!("column {i} missing")))?;
            Ok(datacell_algebra::fetch(col, cand))
        }
        BoundExpr::Const(v) => {
            let n = cand.len();
            let ty = v.data_type().unwrap_or(DataType::Int);
            let mut data = Vector::with_capacity(ty, n);
            for _ in 0..n {
                data.push(v)?;
            }
            let validity = if v.is_null() { Some(vec![false; n]) } else { None };
            Ok(Bat::from_parts(data, 0, validity)?)
        }
        BoundExpr::Arith { left, op, right } => match (left.as_ref(), right.as_ref()) {
            (l, BoundExpr::Const(v)) => {
                let lb = eval_expr(l, chunk, cand)?;
                Ok(arith_const(*op, &lb, v)?)
            }
            (BoundExpr::Const(v), r) => {
                let rb = eval_expr(r, chunk, cand)?;
                Ok(arith_const_left(*op, v, &rb)?)
            }
            (l, r) => {
                let lb = eval_expr(l, chunk, cand)?;
                let rb = eval_expr(r, chunk, cand)?;
                Ok(arith_cols(*op, &lb, &rb)?)
            }
        },
        // Boolean-valued expressions: evaluate via the predicate pipeline
        // and materialize a bool column.
        _ => {
            let truthy = eval_predicate(expr, chunk, cand)?;
            let n = cand.len();
            let mut out = vec![false; n];
            // `truthy` holds OIDs relative to chunk columns' head.
            for (row, oid) in cand.iter().enumerate() {
                if truthy.contains(oid) {
                    out[row] = true;
                }
            }
            Ok(Bat::from_vector(Vector::Bool(out.into()), 0))
        }
    }
}

/// Evaluate a predicate over `chunk`, returning the subset of `cand` whose
/// rows satisfy it. Compiles to MonetDB-style candidate pipelines:
/// conjunction = chained selects, disjunction = candidate union.
pub fn eval_predicate(expr: &BoundExpr, chunk: &Chunk, cand: &Candidates) -> Result<Candidates> {
    match expr {
        BoundExpr::And(a, b) => {
            let c1 = eval_predicate(a, chunk, cand)?;
            if c1.is_empty() {
                return Ok(c1);
            }
            eval_predicate(b, chunk, &c1)
        }
        BoundExpr::Or(a, b) => {
            let c1 = eval_predicate(a, chunk, cand)?;
            let c2 = eval_predicate(b, chunk, cand)?;
            Ok(c1.union(&c2))
        }
        BoundExpr::Not(inner) => {
            // NOT under three-valued logic: rows where inner is true are
            // excluded, rows where inner is NULL are also excluded. For
            // comparisons we can negate the operator (NULL-safe because
            // selects skip NULLs either way); the general fallback
            // complements and then re-filters NULL rows out.
            match inner.as_ref() {
                BoundExpr::Cmp { left, op, right } => eval_predicate(
                    &BoundExpr::Cmp {
                        left: left.clone(),
                        op: op.negate(),
                        right: right.clone(),
                    },
                    chunk,
                    cand,
                ),
                BoundExpr::IsNull { expr, negated } => eval_predicate(
                    &BoundExpr::IsNull { expr: expr.clone(), negated: !negated },
                    chunk,
                    cand,
                ),
                BoundExpr::Between { expr, low, high, negated } => eval_predicate(
                    &BoundExpr::Between {
                        expr: expr.clone(),
                        low: low.clone(),
                        high: high.clone(),
                        negated: !negated,
                    },
                    chunk,
                    cand,
                ),
                BoundExpr::Not(e) => eval_predicate(e, chunk, cand),
                other => {
                    let truthy = eval_predicate(other, chunk, cand)?;
                    // Complement within cand; NULL-producing rows of complex
                    // inner expressions are conservatively included only if
                    // the inner expression is genuinely boolean (And/Or of
                    // comparisons), whose eval treats NULL as false already.
                    Ok(subtract(cand, &truthy))
                }
            }
        }
        BoundExpr::Cmp { left, op, right } => eval_cmp(left, *op, right, chunk, cand),
        BoundExpr::IsNull { expr, negated } => {
            let bat = eval_expr(expr, chunk, cand)?;
            // bat rows align with cand order; map row positions back to OIDs.
            let null_rows = select_null(&bat, None, !*negated);
            Ok(rows_to_oids(&null_rows, cand))
        }
        BoundExpr::Between { expr, low, high, negated } => {
            if *negated {
                let lo_pred = BoundExpr::Cmp {
                    left: expr.clone(),
                    op: CmpOp::Lt,
                    right: low.clone(),
                };
                let hi_pred = BoundExpr::Cmp {
                    left: expr.clone(),
                    op: CmpOp::Gt,
                    right: high.clone(),
                };
                return eval_predicate(
                    &BoundExpr::Or(Box::new(lo_pred), Box::new(hi_pred)),
                    chunk,
                    cand,
                );
            }
            match (low.is_const(), high.is_const()) {
                (true, true) => {
                    let bat = eval_expr(expr, chunk, cand)?;
                    let lo = low.eval_const()?;
                    let hi = high.eval_const()?;
                    let rows = select_between(&bat, None, &lo, &hi)?;
                    Ok(rows_to_oids(&rows, cand))
                }
                _ => {
                    let ge = BoundExpr::Cmp {
                        left: expr.clone(),
                        op: CmpOp::Ge,
                        right: low.clone(),
                    };
                    let le = BoundExpr::Cmp {
                        left: expr.clone(),
                        op: CmpOp::Le,
                        right: high.clone(),
                    };
                    eval_predicate(&BoundExpr::And(Box::new(ge), Box::new(le)), chunk, cand)
                }
            }
        }
        BoundExpr::Const(Value::Bool(true)) => Ok(cand.clone()),
        BoundExpr::Const(Value::Bool(false)) | BoundExpr::Const(Value::Null) => {
            Ok(Candidates::empty())
        }
        BoundExpr::Col(i) => {
            // bare boolean column as predicate
            let col = chunk
                .columns()
                .get(*i)
                .ok_or_else(|| PlanError::Internal(format!("column {i} missing")))?;
            Ok(select(col, Some(cand), CmpOp::Eq, &Value::Bool(true))?)
        }
        other => Err(PlanError::Unsupported(format!(
            "expression used as predicate: {other:?}"
        ))),
    }
}

fn eval_cmp(
    left: &BoundExpr,
    op: CmpOp,
    right: &BoundExpr,
    chunk: &Chunk,
    cand: &Candidates,
) -> Result<Candidates> {
    // col op const → direct theta-select on the stored column (no copy).
    if let (BoundExpr::Col(i), true) = (left, right.is_const()) {
        let constant = right.eval_const()?;
        let col = &chunk.columns()[*i];
        return Ok(select(col, Some(cand), op, &constant)?);
    }
    if let (true, BoundExpr::Col(i)) = (left.is_const(), right) {
        let constant = left.eval_const()?;
        let col = &chunk.columns()[*i];
        return Ok(select(col, Some(cand), op.flip(), &constant)?);
    }
    // expr op const → evaluate expr, select over the intermediate.
    if right.is_const() {
        let bat = eval_expr(left, chunk, cand)?;
        let constant = right.eval_const()?;
        let rows = select(&bat, None, op, &constant)?;
        return Ok(rows_to_oids(&rows, cand));
    }
    if left.is_const() {
        let bat = eval_expr(right, chunk, cand)?;
        let constant = left.eval_const()?;
        let rows = select(&bat, None, op.flip(), &constant)?;
        return Ok(rows_to_oids(&rows, cand));
    }
    // expr op expr → evaluate both, compare pairwise.
    let lb = eval_expr(left, chunk, cand)?;
    let rb = eval_expr(right, chunk, cand)?;
    let mut out = Vec::new();
    for (row, oid) in cand.iter().enumerate() {
        let lv = lb.get_at(row);
        let rv = rb.get_at(row);
        if op.eval(lv.sql_cmp(&rv)) {
            out.push(oid);
        }
    }
    Ok(Candidates::from_sorted(out))
}

/// Convert row positions (0-based, aligned with `cand` order) back to OIDs.
fn rows_to_oids(rows: &Candidates, cand: &Candidates) -> Candidates {
    // Fast path: cand is dense — row i ↔ oid lo+i.
    if let Candidates::Range(lo, _) = cand {
        return match rows {
            Candidates::Range(a, b) => Candidates::range(lo + a, lo + b),
            Candidates::List(v) => {
                Candidates::from_sorted(v.iter().map(|r| lo + r).collect())
            }
        };
    }
    let oids: Vec<u64> = cand.iter().collect();
    Candidates::from_sorted(rows.iter().map(|r| oids[r as usize]).collect())
}

/// Difference `a \ b` of candidate sets.
fn subtract(a: &Candidates, b: &Candidates) -> Candidates {
    let mut out = Vec::new();
    for oid in a.iter() {
        if !b.contains(oid) {
            out.push(oid);
        }
    }
    Candidates::from_sorted(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::Bat;

    fn chunk() -> Chunk {
        Chunk::new(vec![
            Bat::from_ints(vec![1, 2, 3, 4, 5]),
            Bat::from_floats(vec![1.0, 4.0, 9.0, 16.0, 25.0]),
        ])
        .unwrap()
    }

    fn all(c: &Chunk) -> Candidates {
        Candidates::all(c.column(0))
    }

    #[test]
    fn eval_column_and_const() {
        let c = chunk();
        let b = eval_expr(&BoundExpr::Col(0), &c, &all(&c)).unwrap();
        assert_eq!(b.data().as_ints().unwrap(), &[1, 2, 3, 4, 5]);
        let k = eval_expr(&BoundExpr::Const(Value::Int(7)), &c, &Candidates::range(0, 3))
            .unwrap();
        assert_eq!(k.data().as_ints().unwrap(), &[7, 7, 7]);
    }

    #[test]
    fn eval_arith_tree() {
        let c = chunk();
        // a * 2 + 1
        let e = BoundExpr::Arith {
            left: Box::new(BoundExpr::Arith {
                left: Box::new(BoundExpr::Col(0)),
                op: ArithOp::Mul,
                right: Box::new(BoundExpr::Const(Value::Int(2))),
            }),
            op: ArithOp::Add,
            right: Box::new(BoundExpr::Const(Value::Int(1))),
        };
        let b = eval_expr(&e, &c, &all(&c)).unwrap();
        assert_eq!(b.data().as_ints().unwrap(), &[3, 5, 7, 9, 11]);
    }

    #[test]
    fn predicate_col_op_const() {
        let c = chunk();
        let p = BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(0)),
            op: CmpOp::Gt,
            right: Box::new(BoundExpr::Const(Value::Int(3))),
        };
        let cands = eval_predicate(&p, &c, &all(&c)).unwrap();
        assert_eq!(cands.to_vec(), vec![3, 4]);
    }

    #[test]
    fn predicate_and_chains_selects() {
        let c = chunk();
        let p = BoundExpr::And(
            Box::new(BoundExpr::Cmp {
                left: Box::new(BoundExpr::Col(0)),
                op: CmpOp::Ge,
                right: Box::new(BoundExpr::Const(Value::Int(2))),
            }),
            Box::new(BoundExpr::Cmp {
                left: Box::new(BoundExpr::Col(1)),
                op: CmpOp::Lt,
                right: Box::new(BoundExpr::Const(Value::Float(20.0))),
            }),
        );
        let cands = eval_predicate(&p, &c, &all(&c)).unwrap();
        assert_eq!(cands.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn predicate_or_unions() {
        let c = chunk();
        let lt2 = BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(0)),
            op: CmpOp::Lt,
            right: Box::new(BoundExpr::Const(Value::Int(2))),
        };
        let ge5 = BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(0)),
            op: CmpOp::Ge,
            right: Box::new(BoundExpr::Const(Value::Int(5))),
        };
        let cands =
            eval_predicate(&BoundExpr::Or(Box::new(lt2), Box::new(ge5)), &c, &all(&c))
                .unwrap();
        assert_eq!(cands.to_vec(), vec![0, 4]);
    }

    #[test]
    fn predicate_not_negates_cmp() {
        let c = chunk();
        let p = BoundExpr::Not(Box::new(BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(0)),
            op: CmpOp::Gt,
            right: Box::new(BoundExpr::Const(Value::Int(3))),
        }));
        let cands = eval_predicate(&p, &c, &all(&c)).unwrap();
        assert_eq!(cands.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn predicate_expr_op_expr() {
        let c = chunk();
        // b < a * a  (strictly less: never true since b == a²)
        let p = BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(1)),
            op: CmpOp::Lt,
            right: Box::new(BoundExpr::Arith {
                left: Box::new(BoundExpr::Col(0)),
                op: ArithOp::Mul,
                right: Box::new(BoundExpr::Col(0)),
            }),
        };
        assert!(eval_predicate(&p, &c, &all(&c)).unwrap().is_empty());
    }

    #[test]
    fn predicate_between() {
        let c = chunk();
        let p = BoundExpr::Between {
            expr: Box::new(BoundExpr::Col(0)),
            low: Box::new(BoundExpr::Const(Value::Int(2))),
            high: Box::new(BoundExpr::Const(Value::Int(4))),
            negated: false,
        };
        assert_eq!(eval_predicate(&p, &c, &all(&c)).unwrap().to_vec(), vec![1, 2, 3]);
        let p = BoundExpr::Between {
            expr: Box::new(BoundExpr::Col(0)),
            low: Box::new(BoundExpr::Const(Value::Int(2))),
            high: Box::new(BoundExpr::Const(Value::Int(4))),
            negated: true,
        };
        assert_eq!(eval_predicate(&p, &c, &all(&c)).unwrap().to_vec(), vec![0, 4]);
    }

    #[test]
    fn is_null_predicate() {
        let mut col = Bat::new(DataType::Int);
        col.push(&Value::Int(1)).unwrap();
        col.push(&Value::Null).unwrap();
        col.push(&Value::Int(3)).unwrap();
        let c = Chunk::new(vec![col]).unwrap();
        let p = BoundExpr::IsNull { expr: Box::new(BoundExpr::Col(0)), negated: false };
        assert_eq!(eval_predicate(&p, &c, &all(&c)).unwrap().to_vec(), vec![1]);
        let p = BoundExpr::IsNull { expr: Box::new(BoundExpr::Col(0)), negated: true };
        assert_eq!(eval_predicate(&p, &c, &all(&c)).unwrap().to_vec(), vec![0, 2]);
    }

    #[test]
    fn boolean_expr_materializes() {
        let c = chunk();
        let p = BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(0)),
            op: CmpOp::Ge,
            right: Box::new(BoundExpr::Const(Value::Int(4))),
        };
        let b = eval_expr(&p, &c, &all(&c)).unwrap();
        assert_eq!(b.data().as_bools().unwrap(), &[false, false, false, true, true]);
    }

    #[test]
    fn nonzero_base_candidates() {
        let col = Bat::from_vector(vec![5i64, 6, 7].into(), 100);
        let c = Chunk::new(vec![col]).unwrap();
        let p = BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(0)),
            op: CmpOp::Gt,
            right: Box::new(BoundExpr::Const(Value::Int(5))),
        };
        let cands = eval_predicate(&p, &c, &Candidates::range(100, 103)).unwrap();
        assert_eq!(cands.to_vec(), vec![101, 102]);
    }

    #[test]
    fn remap_and_collect() {
        let e = BoundExpr::Arith {
            left: Box::new(BoundExpr::Col(0)),
            op: ArithOp::Add,
            right: Box::new(BoundExpr::Col(2)),
        };
        let mut cols = Vec::new();
        e.collect_cols(&mut cols);
        assert_eq!(cols, vec![0, 2]);
        let remapped = e.remap(&[5, 6, 7]);
        let mut cols2 = Vec::new();
        remapped.collect_cols(&mut cols2);
        assert_eq!(cols2, vec![5, 7]);
    }

    #[test]
    fn output_types() {
        let types = [DataType::Int, DataType::Float];
        assert_eq!(BoundExpr::Col(1).output_type(&types).unwrap(), DataType::Float);
        let e = BoundExpr::Arith {
            left: Box::new(BoundExpr::Col(0)),
            op: ArithOp::Add,
            right: Box::new(BoundExpr::Col(1)),
        };
        assert_eq!(e.output_type(&types).unwrap(), DataType::Float);
    }

    use datacell_storage::DataType;
}
