//! Property test: the optimizer must never change query results — for
//! random predicates over random data, the optimized plan and the raw
//! bound plan produce identical chunks, and the volcano-style reference
//! (scalar per-row evaluation here) agrees with both.

use datacell_plan::{execute, optimize, Binder, ExecSources};
use datacell_sql::parse_statement;
use datacell_storage::{Bat, Catalog, Chunk, DataType, Schema, Value};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let cat = Catalog::new();
    cat.create_table(
        "t",
        Schema::of(&[("a", DataType::Int), ("b", DataType::Int), ("c", DataType::Int)]),
    )
    .unwrap();
    cat.create_table("d", Schema::of(&[("a", DataType::Int), ("w", DataType::Int)]))
        .unwrap();
    cat
}

fn sources(rows: &[(i64, i64, i64)], dim: &[(i64, i64)]) -> ExecSources {
    let mut s = ExecSources::new();
    s.bind(
        "t",
        Chunk::new(vec![
            Bat::from_ints(rows.iter().map(|r| r.0).collect()),
            Bat::from_ints(rows.iter().map(|r| r.1).collect()),
            Bat::from_ints(rows.iter().map(|r| r.2).collect()),
        ])
        .unwrap(),
    );
    s.bind(
        "d",
        Chunk::new(vec![
            Bat::from_ints(dim.iter().map(|r| r.0).collect()),
            Bat::from_ints(dim.iter().map(|r| r.1).collect()),
        ])
        .unwrap(),
    );
    s
}

fn run(sql: &str, src: &ExecSources, optimized: bool) -> Vec<String> {
    let cat = catalog();
    let stmt = match parse_statement(sql).unwrap() {
        datacell_sql::Statement::Select(s) => s,
        _ => unreachable!(),
    };
    let bound = Binder::new(&cat).bind_select(&stmt).unwrap();
    let plan = if optimized { optimize(bound.plan) } else { bound.plan };
    let out = execute(&plan, src).unwrap();
    let mut rows: Vec<String> = out
        .rows()
        .map(|r| r.iter().map(Value::to_string).collect::<Vec<_>>().join("|"))
        .collect();
    rows.sort();
    rows
}

/// A small grammar of predicates over columns `{q}a`, `{q}b`, `{q}c`,
/// where `q` is an optional qualifier (needed when joins make bare
/// column names ambiguous).
fn arb_predicate_q(q: &'static str) -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (-20i64..20).prop_map(move |k| format!("{q}a > {k}")),
        (-20i64..20).prop_map(move |k| format!("{q}b <= {k}")),
        (-20i64..20).prop_map(move |k| format!("{q}c = {k}")),
        (-20i64..0, 0i64..20)
            .prop_map(move |(lo, hi)| format!("{q}a BETWEEN {lo} AND {hi}")),
        (-20i64..20).prop_map(move |k| format!("NOT ({q}b = {k})")),
        Just(format!("{q}a + {q}b > {q}c")),
        Just(format!("{q}a % 3 = 1")),
    ];
    prop::collection::vec(atom, 1..4).prop_map(|atoms| {
        let mut out = atoms[0].clone();
        for (i, a) in atoms.iter().enumerate().skip(1) {
            let op = if i % 2 == 0 { "OR" } else { "AND" };
            out = format!("({out}) {op} ({a})");
        }
        out
    })
}

fn arb_predicate() -> impl Strategy<Value = String> {
    arb_predicate_q("")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimizer_preserves_filter_results(
        rows in prop::collection::vec((-20i64..20, -20i64..20, -20i64..20), 0..80),
        pred in arb_predicate(),
    ) {
        let src = sources(&rows, &[]);
        let sql = format!("SELECT a, b, c FROM t WHERE {pred}");
        prop_assert_eq!(run(&sql, &src, false), run(&sql, &src, true));
    }

    #[test]
    fn optimizer_preserves_join_results(
        rows in prop::collection::vec((-8i64..8, -20i64..20, -20i64..20), 0..60),
        dim in prop::collection::vec((-8i64..8, -20i64..20), 0..20),
        pred in arb_predicate_q("t."),
    ) {
        let src = sources(&rows, &dim);
        let sql = format!(
            "SELECT t.a, t.b, d.w FROM t JOIN d ON t.a = d.a WHERE {pred}"
        );
        prop_assert_eq!(run(&sql, &src, false), run(&sql, &src, true));
    }

    #[test]
    fn optimizer_preserves_aggregates(
        rows in prop::collection::vec((-5i64..5, -20i64..20, -20i64..20), 0..80),
        pred in arb_predicate(),
    ) {
        let src = sources(&rows, &[]);
        let sql = format!(
            "SELECT a, COUNT(*), SUM(b), MIN(c), MAX(c) FROM t WHERE {pred} GROUP BY a"
        );
        prop_assert_eq!(run(&sql, &src, false), run(&sql, &src, true));
    }

    /// Scalar reference check: the columnar filter agrees with a per-row
    /// reference evaluation of the simple conjunction `a > x AND b <= y`.
    #[test]
    fn filter_matches_scalar_reference(
        rows in prop::collection::vec((-20i64..20, -20i64..20, -20i64..20), 0..120),
        x in -20i64..20,
        y in -20i64..20,
    ) {
        let src = sources(&rows, &[]);
        let sql = format!("SELECT a FROM t WHERE a > {x} AND b <= {y}");
        let got = run(&sql, &src, true);
        let mut want: Vec<String> = rows
            .iter()
            .filter(|r| r.0 > x && r.1 <= y)
            .map(|r| r.0.to_string())
            .collect();
        want.sort();
        prop_assert_eq!(got, want);
    }
}
