//! Rule `codec-exhaustiveness`: every variant of a wire/WAL enum must be
//! named in both its encode and its decode function.
//!
//! A `match` makes the *encode* side exhaustive for free, but the decode
//! side is a tag dispatch — adding `MetaRecord::NewThing` and forgetting
//! the decode arm silently turns recovery into data loss. The rule pins
//! the pairing in [`crate::config::CodecSpec`] and checks that each
//! variant identifier appears in both function bodies.

use crate::config::CodecSpec;
use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::source::{fn_bodies, match_delim, SourceFile};

/// Extract the variant names of `enum_name` from a lexed file. Returns
/// `None` when the enum is not declared there (spec drift — reported by
/// the caller).
pub fn enum_variants(file: &SourceFile, enum_name: &str) -> Option<(u32, Vec<String>)> {
    let toks = &file.tokens;
    let mut i = 0;
    while i + 2 < toks.len() {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(enum_name) {
            // Skip generics/derive-free header to the body `{`.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            if j >= toks.len() {
                return None;
            }
            let close = match_delim(toks, j);
            return Some((toks[i].line, variants_in(&toks[j + 1..close])));
        }
        i += 1;
    }
    None
}

/// Variant identifiers at depth 0 of an enum body: the first ident of
/// each comma-separated entry, with `#[…]` attributes and payloads
/// (`(…)`, `{…}`, `= disc`) skipped.
fn variants_in(body: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    let mut expect_variant = true;
    while i < body.len() {
        let t = &body[i];
        match t.text.as_str() {
            "#" if body.get(i + 1).is_some_and(|n| n.is_punct('[')) => {
                let close = match_delim(body, i + 1);
                i = close + 1;
                continue;
            }
            "(" | "{" | "[" => {
                i = match_delim(body, i) + 1;
                continue;
            }
            "," => expect_variant = true,
            _ => {
                if expect_variant && t.kind == TokKind::Ident {
                    out.push(t.text.clone());
                    expect_variant = false;
                }
            }
        }
        i += 1;
    }
    out
}

/// Idents mentioned in all bodies of fns named `fn_name` within `file`
/// (several same-named methods merge — presence in any body counts).
fn fn_mentions(file: &SourceFile, fn_name: &str) -> Option<Vec<String>> {
    let toks = &file.tokens;
    let mut found = false;
    let mut out = Vec::new();
    for body in fn_bodies(toks) {
        if body.name != fn_name {
            continue;
        }
        found = true;
        for t in &toks[body.open + 1..body.close] {
            if t.kind == TokKind::Ident {
                out.push(t.text.clone());
            }
        }
    }
    found.then_some(out)
}

/// Check one codec pairing. `lookup` resolves a workspace-relative path
/// to its lexed file.
pub fn check<'a>(
    spec: &CodecSpec,
    lookup: impl Fn(&str) -> Option<&'a SourceFile>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(enum_src) = lookup(&spec.enum_file) else {
        return vec![drift(spec, &spec.enum_file, "file not found")];
    };
    let Some((enum_line, variants)) = enum_variants(enum_src, &spec.enum_name) else {
        return vec![drift(spec, &spec.enum_file, "enum not found")];
    };
    for (side, (file, fn_name)) in [("encode", &spec.encode), ("decode", &spec.decode)] {
        let Some(src) = lookup(file) else {
            out.push(drift(spec, file, "file not found"));
            continue;
        };
        let Some(mentions) = fn_mentions(src, fn_name) else {
            out.push(drift(spec, file, &format!("fn {fn_name} not found")));
            continue;
        };
        for v in &variants {
            if !mentions.contains(v) {
                out.push(Diagnostic {
                    rule: "codec-exhaustiveness",
                    rel: spec.enum_file.clone(),
                    line: enum_line,
                    msg: format!(
                        "{}::{} has no {} arm in {} ({})",
                        spec.enum_name, v, side, fn_name, file
                    ),
                });
            }
        }
    }
    out
}

fn drift(spec: &CodecSpec, file: &str, what: &str) -> Diagnostic {
    Diagnostic {
        rule: "codec-exhaustiveness",
        rel: file.to_string(),
        line: 1,
        msg: format!("codec spec for {} is stale: {what}", spec.enum_name),
    }
}
