//! The five shipped rules. Each module exposes `check(…) -> Vec<Diagnostic>`
//! over lexed sources; wiring (path policy, allow filtering) lives in
//! [`crate::run`].

pub mod bounded_decode;
pub mod codec;
pub mod layering;
pub mod lock_order;
pub mod panic_freedom;
