//! Rule `bounded-decode`: a decoder must not size an allocation from an
//! attacker-controlled length it has not bounded first.
//!
//! Finds `with_capacity(n)` / `.reserve(n)` / `.resize(n, …)` /
//! `vec![x; n]` in decode paths and classifies the length operand `n`:
//!
//! * **bounded** — all tokens are numeric literals or `UPPER_CASE`
//!   constants; or the operand itself derives from known data
//!   (`.len()`, `remaining(…)`, `.min(…)`); or an earlier `if` guard in
//!   the same function compares the operand's identifier against a bound
//!   source (`len`/`remaining`/`min`/`MAX_*` or a literal).
//! * **unbounded** — everything else: a `u32` read straight off the wire
//!   handed to the allocator is exactly the crash PR 5 fixed in
//!   `decode_batch`; this rule keeps the whole family fixed.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{TokKind, Token};
use crate::source::{fn_bodies, match_delim, SourceFile};

/// Allocation-site method/fn names whose first argument is a length.
const ALLOC_FNS: &[&str] = &["with_capacity", "reserve", "reserve_exact", "resize", "resize_with"];

/// Run the rule over one file (the caller has matched the decode path).
pub fn check(file: &SourceFile, _config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    let bodies = fn_bodies(toks);
    for (i, t) in toks.iter().enumerate() {
        if file.is_test_line(t.line) {
            continue;
        }
        // `with_capacity(cap)` etc: ident + `(`, first top-level argument.
        if t.kind == TokKind::Ident
            && ALLOC_FNS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let close = match_delim(toks, i + 1);
            let arg = first_arg(&toks[i + 2..close]);
            report_if_unbounded(file, &bodies, i, arg, &t.text, &mut out);
        }
        // `vec![elem; len]`: the length is after the top-level `;`.
        if t.is_ident("vec")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct('['))
        {
            let close = match_delim(toks, i + 2);
            let inner = &toks[i + 3..close.min(toks.len())];
            if let Some(semi) = top_level_semi(inner) {
                report_if_unbounded(file, &bodies, i, &inner[semi + 1..], "vec![_; n]", &mut out);
            }
        }
    }
    out
}

/// The first top-level comma-separated argument of a call.
fn first_arg(inner: &[Token]) -> &[Token] {
    let mut depth = 0i64;
    for (i, t) in inner.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => return &inner[..i],
            _ => {}
        }
    }
    inner
}

/// Index of the top-level `;` in a `vec![elem; len]` body.
fn top_level_semi(inner: &[Token]) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in inner.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

fn report_if_unbounded(
    file: &SourceFile,
    bodies: &[crate::source::FnBody],
    site: usize,
    arg: &[Token],
    what: &str,
    out: &mut Vec<Diagnostic>,
) {
    if arg.is_empty() || is_bounded_expr(arg) {
        return;
    }
    let Some(key) = key_ident(arg) else {
        return; // no variable in the operand — nothing wire-controlled
    };
    if guarded_earlier(file, bodies, site, &key) || bound_at_binding(file, bodies, site, &key) {
        return;
    }
    out.push(Diagnostic {
        rule: "bounded-decode",
        rel: file.rel.clone(),
        line: file.tokens[site].line,
        msg: format!(
            "{what} sized by `{key}` with no bound check — clamp against the \
             remaining input (or a protocol maximum) before allocating"
        ),
    });
}

/// Is the operand expression inherently bounded?
fn is_bounded_expr(arg: &[Token]) -> bool {
    // All literals / UPPER_CASE constants (and operators between them).
    let all_const = arg.iter().all(|t| match t.kind {
        TokKind::Num | TokKind::Punct => true,
        TokKind::Ident => is_const_ident(&t.text),
        _ => false,
    });
    if all_const {
        return true;
    }
    // Derived from known data.
    for (i, t) in arg.iter().enumerate() {
        let prev_dot = i > 0 && arg[i - 1].is_punct('.');
        if (t.is_ident("len") || t.is_ident("min")) && prev_dot {
            return true;
        }
        if t.is_ident("remaining") && arg.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            return true;
        }
    }
    false
}

fn is_const_ident(s: &str) -> bool {
    !s.is_empty() && !s.chars().any(|c| c.is_ascii_lowercase())
}

/// First lower-case identifier in the operand — the variable whose bound
/// we then go looking for.
fn key_ident(arg: &[Token]) -> Option<String> {
    arg.iter()
        .find(|t| t.kind == TokKind::Ident && !is_const_ident(&t.text) && t.text != "as")
        .map(|t| t.text.clone())
}

/// Does an earlier `if` condition in the same function mention `key`
/// together with a bound source?
fn guarded_earlier(
    file: &SourceFile,
    bodies: &[crate::source::FnBody],
    site: usize,
    key: &str,
) -> bool {
    let toks = &file.tokens;
    let Some(body) = bodies.iter().find(|b| b.open < site && site < b.close) else {
        return false;
    };
    let mut i = body.open + 1;
    while i < site {
        if toks[i].is_ident("if") {
            // Condition: every token up to the `{` at depth 0 (grouping
            // parens and call arguments both count as condition text).
            let mut j = i + 1;
            let mut depth = 0i64;
            let mut mentions_key = false;
            let mut has_bound = false;
            while j < site {
                let t = &toks[j];
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    "{" => depth += 1,
                    "}" => depth -= 1,
                    _ => {
                        if t.is_ident(key) {
                            mentions_key = true;
                        }
                        if t.kind == TokKind::Num
                            || t.is_ident("len")
                            || t.is_ident("remaining")
                            || t.is_ident("min")
                            || (t.kind == TokKind::Ident && t.text.starts_with("MAX"))
                        {
                            has_bound = true;
                        }
                    }
                }
                j += 1;
            }
            if mentions_key && has_bound {
                return true;
            }
            i = j;
        }
        i += 1;
    }
    false
}

/// Was `key` itself bound at its `let` binding (`let n = (…).min(…)`,
/// `let n = hdr.len()`, `let n = 4`)?
fn bound_at_binding(
    file: &SourceFile,
    bodies: &[crate::source::FnBody],
    site: usize,
    key: &str,
) -> bool {
    let toks = &file.tokens;
    let Some(body) = bodies.iter().find(|b| b.open < site && site < b.close) else {
        return false;
    };
    let mut i = body.open + 1;
    while i + 1 < site {
        if toks[i].is_ident("let") && toks[i + 1].is_ident(key) {
            let mut j = i + 2;
            while j < site && !toks[j].is_punct(';') {
                let t = &toks[j];
                if t.kind == TokKind::Num
                    || t.is_ident("len")
                    || t.is_ident("remaining")
                    || t.is_ident("min")
                    || (t.kind == TokKind::Ident && t.text.starts_with("MAX"))
                {
                    return true;
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    false
}
