//! Rule `lock-order`: build the held-while-acquiring graph and report
//! cycles.
//!
//! Token-level approximation: an acquisition is a `.lock()` / `.read()` /
//! `.write()` call with empty parens (the std/parking_lot shapes; I/O
//! `read`/`write` always take a buffer argument and never match). The
//! *lock class* is the last identifier of the receiver chain
//! (`self.engine.lock()` → `engine`), optionally normalized through
//! [`Config::lock_classes`]. A guard is *held* from its acquisition to
//! the end of the enclosing block when `let`-bound, or to the end of the
//! statement when temporary. Every acquisition B inside the hold range of
//! an earlier acquisition A (of a different class) adds the edge A → B;
//! a cycle in the resulting graph is a potential deadlock.
//!
//! Same-class pairs (two baskets locked in sequence) are skipped: ordering
//! within a class needs runtime information a lexer does not have.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::source::{fn_bodies, match_delim, SourceFile};

const ACQUIRE: &[&str] = &["lock", "read", "write"];

/// One lock acquisition site.
#[derive(Debug, Clone)]
struct Acq {
    class: String,
    line: u32,
    tok: usize,
    live_end: usize,
}

/// One directed edge with an example site.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Lock class held.
    pub from: String,
    /// Lock class acquired while holding `from`.
    pub to: String,
    /// File of the example.
    pub rel: String,
    /// Line of the held acquisition.
    pub from_line: u32,
    /// Line of the nested acquisition.
    pub to_line: u32,
    /// Enclosing function.
    pub in_fn: String,
}

/// Collect held-while-acquiring edges from one file.
pub fn collect_edges(file: &SourceFile, config: &Config) -> Vec<Edge> {
    let toks = &file.tokens;
    let mut edges = Vec::new();
    for body in fn_bodies(toks) {
        let mut acqs: Vec<Acq> = Vec::new();
        let mut i = body.open + 1;
        while i + 3 <= body.close {
            let is_acquire = toks[i].is_punct('.')
                && ACQUIRE.contains(&toks[i + 1].text.as_str())
                && toks[i + 2].is_punct('(')
                && toks[i + 3].is_punct(')');
            if !is_acquire {
                i += 1;
                continue;
            }
            if let Some(name) = receiver_name(file, i) {
                let class = config
                    .lock_classes
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, c)| c.clone())
                    .unwrap_or(name);
                let bound = is_let_bound(file, i);
                let live_end = if bound {
                    enclosing_block_close(toks, body.open, i)
                } else {
                    statement_end(file, i, body.close)
                };
                acqs.push(Acq { class, line: toks[i].line, tok: i, live_end });
            }
            i += 4;
        }
        for a in 0..acqs.len() {
            for b in a + 1..acqs.len() {
                if acqs[b].tok <= acqs[a].live_end && acqs[a].class != acqs[b].class {
                    edges.push(Edge {
                        from: acqs[a].class.clone(),
                        to: acqs[b].class.clone(),
                        rel: file.rel.clone(),
                        from_line: acqs[a].line,
                        to_line: acqs[b].line,
                        in_fn: body.name.clone(),
                    });
                }
            }
        }
    }
    edges
}

/// Last identifier of the receiver chain ending at the `.` token `dot`.
fn receiver_name(file: &SourceFile, dot: usize) -> Option<String> {
    let toks = &file.tokens;
    let mut j = dot.checked_sub(1)?;
    // Skip `?` propagation between the receiver and the call.
    while toks[j].is_punct('?') {
        j = j.checked_sub(1)?;
    }
    if toks[j].is_punct(')') || toks[j].is_punct(']') {
        // Method call / index: scan back to the matching opener, then take
        // the identifier before it (the method name).
        let close_ch = toks[j].text.as_bytes()[0];
        let open_ch = if close_ch == b')' { '(' } else { '[' };
        let mut depth = 0i64;
        loop {
            let t = &toks[j];
            if t.is_punct(close_ch as char) {
                depth += 1;
            } else if t.is_punct(open_ch) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
        j = j.checked_sub(1)?;
    }
    let t = &toks[j];
    if t.kind == crate::lexer::TokKind::Ident && t.text != "self" {
        Some(t.text.clone())
    } else if t.is_ident("self") {
        Some("self".into())
    } else {
        None
    }
}

/// Is the statement containing token `i` a `let` binding?
fn is_let_bound(file: &SourceFile, i: usize) -> bool {
    let toks = &file.tokens;
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].text.as_str() {
            ";" | "{" | "}" => {
                return toks.get(j + 1).is_some_and(|t| t.is_ident("let"));
            }
            _ => {}
        }
    }
    false
}

/// Token index of the `}` closing the innermost block containing `i`.
fn enclosing_block_close(toks: &[crate::lexer::Token], body_open: usize, i: usize) -> usize {
    let mut stack = vec![body_open];
    let mut j = body_open + 1;
    while j < i {
        if toks[j].is_punct('{') {
            stack.push(j);
        } else if toks[j].is_punct('}') {
            stack.pop();
        }
        j += 1;
    }
    stack.last().map_or(toks.len(), |&open| match_delim(toks, open))
}

/// Token index ending the statement containing `i` (next `;`, or the end
/// of the function body).
fn statement_end(file: &SourceFile, i: usize, body_close: usize) -> usize {
    let toks = &file.tokens;
    let mut j = i;
    while j < body_close {
        if toks[j].is_punct(';') {
            return j;
        }
        j += 1;
    }
    body_close
}

/// Find cycles in the merged edge set and render diagnostics.
pub fn cycles(edges: &[Edge]) -> Vec<Diagnostic> {
    // Adjacency with one example edge per (from, to).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut example: BTreeMap<(&str, &str), &Edge> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        example.entry((&e.from, &e.to)).or_insert(e);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut out = Vec::new();
    let mut reported: BTreeSet<Vec<&str>> = BTreeSet::new();
    // DFS from each node looking for a path back to it (graphs here are
    // tiny: a handful of lock classes).
    for &start in &nodes {
        let mut stack = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            for &next in adj.get(node).into_iter().flatten() {
                if next == start {
                    let mut canon = path.clone();
                    let min = canon
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, n)| **n)
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    canon.rotate_left(min);
                    if !reported.insert(canon) {
                        continue;
                    }
                    let mut msg = String::from("lock-order cycle: ");
                    for w in 0..path.len() {
                        let from = path[w];
                        let to = if w + 1 < path.len() { path[w + 1] } else { start };
                        let e = example[&(from, to)];
                        msg.push_str(&format!(
                            "{} → {} ({}:{} in {}), ",
                            from, to, e.rel, e.from_line, e.in_fn
                        ));
                    }
                    msg.truncate(msg.len() - 2);
                    let e = example[&(start, *adj[&start].iter().next().unwrap_or(&start))];
                    let first = example
                        .get(&(start, path.get(1).copied().unwrap_or(start)))
                        .unwrap_or(&e);
                    out.push(Diagnostic {
                        rule: "lock-order",
                        rel: first.rel.clone(),
                        line: first.from_line,
                        msg,
                    });
                } else if !path.contains(&next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    out
}

/// Run the rule over a set of files.
pub fn check(files: &[&SourceFile], config: &Config) -> Vec<Diagnostic> {
    let mut edges = Vec::new();
    for f in files {
        edges.extend(collect_edges(f, config));
    }
    cycles(&edges)
}
