//! Rule `panic-freedom`: no `unwrap`/`expect`/`panic!`/`unreachable!`/
//! `todo!`/`unimplemented!` in deny-path live code. `#[cfg(test)]` items
//! are exempt — tests may assert as loudly as they like; the engine's
//! durability and wire paths must degrade to `Result`, never abort.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Run the rule over one file (the caller has matched the deny path).
pub fn check(file: &SourceFile, _config: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct('.');
        let next = toks.get(i + 1);
        if PANIC_METHODS.contains(&t.text.as_str())
            && prev_dot
            && next.is_some_and(|n| n.is_punct('('))
        {
            out.push(Diagnostic {
                rule: "panic-freedom",
                rel: file.rel.clone(),
                line: t.line,
                msg: format!(
                    ".{}() can panic in a deny path — propagate a Result or add \
                     `// lint:allow(panic-freedom): <reason>`",
                    t.text
                ),
            });
        }
        if PANIC_MACROS.contains(&t.text.as_str())
            && !prev_dot
            && next.is_some_and(|n| n.is_punct('!'))
        {
            // `debug_assert!`-style macros lex as one ident and never get
            // here; `write!`/`vec!` are not in the list.
            out.push(Diagnostic {
                rule: "panic-freedom",
                rel: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "{}! aborts the engine in a deny path — return an error or add \
                     `// lint:allow(panic-freedom): <reason>`",
                    t.text
                ),
            });
        }
    }
    out
}
