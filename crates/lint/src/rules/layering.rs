//! Rule `crate-layering`: the dependency DAG is policy, not accident.
//!
//! Three checks per crate:
//! 1. `[dependencies]` in `Cargo.toml` ⊆ the allowed internal + external
//!    lists (a hand-rolled section scanner — the build env has no TOML
//!    crate, and manifests here are simple).
//! 2. Source references to `datacell_*` crates ⊆ the allowed internal
//!    list (catches a path dependency smuggled through an already-declared
//!    transitive crate).
//! 3. No-I/O paths never name `std::{io, fs, net, process}` — `protocol`
//!    stays a pure framing layer, `storage` delegates durability to `wal`.

use crate::config::{Config, CrateSpec};
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::source::SourceFile;

/// Dependency names declared in the `[dependencies]` section of a
/// manifest (handles `name = …`, `name.workspace = true`, and
/// `[dependencies.name]` headers).
pub fn manifest_deps(toml: &str) -> Vec<String> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for line in toml.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix('[') {
            let section = rest.trim_end_matches(']');
            if let Some(name) = section.strip_prefix("dependencies.") {
                deps.push(name.trim().to_string());
                in_deps = false;
            } else {
                in_deps = section == "dependencies";
            }
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(eq) = line.find('=') {
            let key = line[..eq].trim();
            let name = key.split('.').next().unwrap_or(key).trim();
            if !name.is_empty() {
                deps.push(name.to_string());
            }
        }
    }
    deps
}

/// Check one crate's manifest against its spec.
pub fn check_manifest(spec: &CrateSpec, toml: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let rel = format!("{}/Cargo.toml", spec.dir);
    for dep in manifest_deps(toml) {
        let allowed = if dep.starts_with("datacell-") {
            spec.internal_deps.contains(&dep)
        } else {
            spec.external_deps.contains(&dep)
        };
        if !allowed {
            out.push(Diagnostic {
                rule: "crate-layering",
                rel: rel.clone(),
                line: 1,
                msg: format!(
                    "{} must not depend on {} (allowed: {})",
                    spec.name,
                    dep,
                    allowed_list(spec)
                ),
            });
        }
    }
    out
}

fn allowed_list(spec: &CrateSpec) -> String {
    let all: Vec<&str> = spec
        .internal_deps
        .iter()
        .chain(spec.external_deps.iter())
        .map(String::as_str)
        .collect();
    if all.is_empty() { "none".into() } else { all.join(", ") }
}

/// Check one source file of `spec` for references to other workspace
/// crates (idents shaped `datacell_x`).
pub fn check_source(spec: &CrateSpec, file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let self_ident = spec.name.replace('-', "_");
    for t in &file.tokens {
        if t.kind != TokKind::Ident || !t.text.starts_with("datacell_") {
            continue;
        }
        if t.text == self_ident || file.is_test_line(t.line) {
            continue;
        }
        let as_dep = t.text.replace('_', "-");
        if !spec.internal_deps.contains(&as_dep) {
            out.push(Diagnostic {
                rule: "crate-layering",
                rel: file.rel.clone(),
                line: t.line,
                msg: format!(
                    "{} references {} outside its layer (allowed: {})",
                    spec.name,
                    as_dep,
                    allowed_list(spec)
                ),
            });
        }
    }
    out
}

/// Check a no-I/O file for `std::{io, fs, net, process}` references.
pub fn check_no_io(file: &SourceFile, _config: &Config) -> Vec<Diagnostic> {
    const BANNED: &[&str] = &["io", "fs", "net", "process"];
    let mut out = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident("std") || file.is_test_line(toks[i].line) {
            continue;
        }
        if i + 3 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
            && BANNED.contains(&toks[i + 3].text.as_str())
        {
            out.push(Diagnostic {
                rule: "crate-layering",
                rel: file.rel.clone(),
                line: toks[i].line,
                msg: format!(
                    "std::{} in an I/O-free layer — move the side effect behind the \
                     owning subsystem",
                    toks[i + 3].text
                ),
            });
        }
    }
    out
}
