//! A lexed source file plus the structural facts the rules share:
//! `#[cfg(test)]` regions, function bodies, and brace matching.

use crate::lexer::{lex, AllowDirective, Token};

/// One lexed workspace file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Token stream (comments/strings stripped).
    pub tokens: Vec<Token>,
    /// `lint:allow` directives found in comments.
    pub allows: Vec<AllowDirective>,
    /// Line spans (inclusive) covered by `#[cfg(test)]` items.
    test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lex `text` and compute structural facts.
    pub fn parse(rel: impl Into<String>, text: &str) -> SourceFile {
        let lexed = lex(text);
        let test_spans = find_cfg_test_spans(&lexed.tokens);
        SourceFile { rel: rel.into(), tokens: lexed.tokens, allows: lexed.allows, test_spans }
    }

    /// Is `line` inside a `#[cfg(test)]` item?
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }
}

/// Index of the matching close for the open delimiter at `open` (`{`/`(`/
/// `[`), or `tokens.len()` when unterminated. Counts all three delimiter
/// kinds together, which is exact for well-formed Rust.
pub fn match_delim(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (off, t) in tokens[open..].iter().enumerate() {
        match t.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return open + off;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Line spans covered by items annotated `#[cfg(test)]`.
fn find_cfg_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip this and any further attributes, then find the item's end:
        // the matching `}` of its first brace, or a `;` (e.g. `mod m;`).
        let mut j = i + 7;
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            j = match_delim(tokens, j + 1) + 1;
        }
        let mut end = tokens.len().saturating_sub(1);
        while j < tokens.len() {
            if tokens[j].is_punct('{') {
                end = match_delim(tokens, j).min(tokens.len() - 1);
                break;
            }
            if tokens[j].is_punct(';') {
                end = j;
                break;
            }
            j += 1;
        }
        let end_line = tokens.get(end).map_or(start_line, |t| t.line);
        spans.push((start_line, end_line));
        i = end.max(i) + 1;
    }
    spans
}

/// One `fn` item: its name and body token range (exclusive of braces).
#[derive(Debug)]
pub struct FnBody {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index of the body's `{`.
    pub open: usize,
    /// Token index of the body's matching `}`.
    pub close: usize,
}

/// Extract every `fn` item body in the file (methods included).
pub fn fn_bodies(tokens: &[Token]) -> Vec<FnBody> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn") && i + 1 < tokens.len() {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // The body `{` is the first `{` at delimiter depth 0 after the
            // signature (skipping parens/brackets of params, generics are
            // `<`/`>` puncts which we can ignore, and where-clauses hold
            // no braces).
            let mut j = i + 2;
            let mut open = None;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "(" | "[" => j = match_delim(tokens, j),
                    "{" => {
                        open = Some(j);
                        break;
                    }
                    ";" => break, // trait method declaration, no body
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = open {
                let close = match_delim(tokens, open);
                out.push(FnBody { name, line, open, close });
                // Continue *inside* the body too: nested fns are rare but
                // closures are not fn items, so just advance past `fn name`.
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}
