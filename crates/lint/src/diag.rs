//! Diagnostics, `lint:allow` suppression, and reporting.

use crate::source::SourceFile;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that produced the finding (`panic-freedom`, …).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl Diagnostic {
    /// Render as `path:line: [rule] message`.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.rel, self.line, self.rule, self.msg)
    }
}

/// Names of every shipped rule (used to validate `--rule` and allows).
pub const RULES: &[&str] = &[
    "panic-freedom",
    "crate-layering",
    "lock-order",
    "bounded-decode",
    "codec-exhaustiveness",
    "allow-syntax",
];

/// Apply `lint:allow` suppression to `diags` for one file. A directive
/// covers its own line; a directive alone on a line covers the next line.
/// Returns the surviving diagnostics and appends `allow-syntax` findings
/// for malformed directives (unknown rule, missing reason). Unused-allow
/// detection runs only when `check_unused` (i.e. when every rule ran — a
/// `--rule` subset would see its own suppressions as unused).
pub fn filter_allows(
    file: &SourceFile,
    diags: Vec<Diagnostic>,
    check_unused: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut used = vec![false; file.allows.len()];
    for d in diags {
        let suppressed = file.allows.iter().enumerate().any(|(i, a)| {
            let covers = a.line == d.line || (a.own_line && a.line + 1 == d.line);
            let matches = a.rules.iter().any(|r| r == d.rule);
            if covers && matches {
                used[i] = true;
            }
            covers && matches
        });
        if !suppressed {
            out.push(d);
        }
    }
    for (i, a) in file.allows.iter().enumerate() {
        if !a.has_reason {
            out.push(Diagnostic {
                rule: "allow-syntax",
                rel: file.rel.clone(),
                line: a.line,
                msg: format!(
                    "lint:allow({}) needs a justification: `// lint:allow(rule): <reason>`",
                    a.rules.join(", ")
                ),
            });
        }
        for r in &a.rules {
            if !RULES.contains(&r.as_str()) {
                out.push(Diagnostic {
                    rule: "allow-syntax",
                    rel: file.rel.clone(),
                    line: a.line,
                    msg: format!("lint:allow names unknown rule {r:?}"),
                });
            }
        }
        // An allow that suppressed nothing is rot: the hazard it excused
        // is gone (or the directive is on the wrong line).
        if check_unused
            && !used[i]
            && a.has_reason
            && a.rules.iter().all(|r| RULES.contains(&r.as_str()))
        {
            out.push(Diagnostic {
                rule: "allow-syntax",
                rel: file.rel.clone(),
                line: a.line,
                msg: format!(
                    "unused lint:allow({}): nothing on this line triggers the rule",
                    a.rules.join(", ")
                ),
            });
        }
    }
    out
}
