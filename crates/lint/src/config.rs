//! Lint policy: which paths each rule covers and the invariants it
//! enforces. [`Config::datacell`] is the shipped policy for this
//! workspace; tests build small configs over fixture trees.

use std::path::PathBuf;

/// One workspace crate and its allowed dependencies.
#[derive(Debug, Clone)]
pub struct CrateSpec {
    /// Package name (`datacell-wal`).
    pub name: String,
    /// Directory relative to the root (`crates/wal`).
    pub dir: String,
    /// Internal (`datacell-*`) crates this crate may depend on.
    pub internal_deps: Vec<String>,
    /// Non-`datacell` dependencies this crate may declare in
    /// `[dependencies]` (dev-dependencies are not policed).
    pub external_deps: Vec<String>,
}

impl CrateSpec {
    fn new(name: &str, dir: &str, internal: &[&str], external: &[&str]) -> CrateSpec {
        CrateSpec {
            name: name.into(),
            dir: dir.into(),
            internal_deps: internal.iter().map(|s| s.to_string()).collect(),
            external_deps: external.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A codec pairing: every variant of `enum_name` must be named in both
/// the encode and the decode function body.
#[derive(Debug, Clone)]
pub struct CodecSpec {
    /// File (workspace-relative) declaring the enum.
    pub enum_file: String,
    /// The enum whose variants are checked.
    pub enum_name: String,
    /// `(file, fn)` that must mention every variant on the encode side.
    pub encode: (String, String),
    /// `(file, fn)` that must mention every variant on the decode side.
    pub decode: (String, String),
}

/// The whole policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root.
    pub root: PathBuf,
    /// Crates to load and police.
    pub crates: Vec<CrateSpec>,
    /// Extra source directories outside any crate (workspace-relative),
    /// e.g. the facade's `src/`.
    pub extra_src: Vec<String>,
    /// Path prefixes where panics are denied.
    pub deny_panic_paths: Vec<String>,
    /// Path prefixes (or files) whose decode allocations must be bounded.
    pub decode_paths: Vec<String>,
    /// Path prefixes scanned for lock acquisition ordering.
    pub lock_paths: Vec<String>,
    /// Receiver-ident → lock-class normalization for the lock-order rule
    /// (distinct field names guarding the same logical lock).
    pub lock_classes: Vec<(String, String)>,
    /// Path prefixes that must not touch `std::{io,fs,net,process}`.
    pub no_io_paths: Vec<String>,
    /// Codec exhaustiveness pairings.
    pub codecs: Vec<CodecSpec>,
}

impl Config {
    /// An empty policy over `root` (fixture tests fill in what they need).
    pub fn bare(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            crates: Vec::new(),
            extra_src: Vec::new(),
            deny_panic_paths: Vec::new(),
            decode_paths: Vec::new(),
            lock_paths: Vec::new(),
            lock_classes: Vec::new(),
            no_io_paths: Vec::new(),
            codecs: Vec::new(),
        }
    }

    /// The shipped policy for the DataCell workspace.
    ///
    /// Layering follows the crate diagram in the README: `obs`, `faults`
    /// and `storage` are the foundation (no internal deps; all **no I/O**
    /// — `obs` is a dependency-free in-memory metrics/tracing leaf,
    /// `faults` a dependency-free injection-schedule leaf whose fired
    /// faults are plain values, durability lives in `wal`); `wal` sees
    /// `storage` + `obs` + `faults`; the
    /// language stack is `sql → plan → core`; `server` talks to the
    /// engine only through `core`/`storage` (observability types reach it
    /// as `core` re-exports); `bench` may see everything. `protocol.rs`
    /// stays I/O-free so every wire rule is unit-testable.
    pub fn datacell(root: impl Into<PathBuf>) -> Config {
        let crates = vec![
            CrateSpec::new("datacell-obs", "crates/obs", &[], &[]),
            CrateSpec::new("datacell-faults", "crates/faults", &[], &[]),
            CrateSpec::new("datacell-storage", "crates/storage", &[], &["parking_lot"]),
            CrateSpec::new(
                "datacell-wal",
                "crates/wal",
                &["datacell-storage", "datacell-obs", "datacell-faults"],
                &[],
            ),
            CrateSpec::new("datacell-algebra", "crates/algebra", &["datacell-storage"], &[]),
            CrateSpec::new("datacell-sql", "crates/sql", &[], &[]),
            CrateSpec::new(
                "datacell-plan",
                "crates/plan",
                &["datacell-storage", "datacell-algebra", "datacell-sql"],
                &[],
            ),
            CrateSpec::new(
                "datacell-core",
                "crates/core",
                &[
                    "datacell-obs",
                    "datacell-faults",
                    "datacell-storage",
                    "datacell-wal",
                    "datacell-algebra",
                    "datacell-sql",
                    "datacell-plan",
                ],
                &["parking_lot"],
            ),
            CrateSpec::new(
                "datacell-server",
                "crates/server",
                &["datacell-storage", "datacell-core", "datacell-faults"],
                &["polling"],
            ),
            CrateSpec::new(
                "datacell-baseline",
                "crates/baseline",
                &["datacell-storage", "datacell-algebra", "datacell-sql", "datacell-plan"],
                &[],
            ),
            CrateSpec::new(
                "datacell-workload",
                "crates/workload",
                &["datacell-storage", "datacell-sql"],
                &["rand"],
            ),
            CrateSpec::new(
                "datacell-bench",
                "crates/bench",
                &[
                    "datacell-storage",
                    "datacell-wal",
                    "datacell-algebra",
                    "datacell-sql",
                    "datacell-plan",
                    "datacell-core",
                    "datacell-server",
                    "datacell-baseline",
                    "datacell-workload",
                ],
                &["rand", "criterion"],
            ),
            CrateSpec::new("datacell-lint", "crates/lint", &[], &[]),
        ];
        let deny = |p: &str| p.to_string();
        Config {
            root: root.into(),
            crates,
            extra_src: vec!["src".into()],
            // Panic-freedom covers every library source dir. Bench
            // binaries (crates/bench/src/bin) are excluded by the loader's
            // bin-filter below via the dedicated prefix list: the
            // experiment drivers may panic on CLI misuse.
            deny_panic_paths: vec![
                deny("crates/obs/src/"),
                deny("crates/faults/src/"),
                deny("crates/storage/src/"),
                deny("crates/wal/src/"),
                deny("crates/algebra/src/"),
                deny("crates/sql/src/"),
                deny("crates/plan/src/"),
                deny("crates/core/src/"),
                deny("crates/server/src/"),
                deny("crates/baseline/src/"),
                deny("crates/workload/src/"),
                deny("crates/bench/src/lib.rs"),
                deny("crates/bench/src/cli.rs"),
                deny("crates/bench/src/report.rs"),
                deny("crates/lint/src/"),
                deny("src/"),
            ],
            decode_paths: vec![
                deny("crates/storage/src/binio.rs"),
                deny("crates/wal/src/frame.rs"),
                deny("crates/wal/src/segment.rs"),
                deny("crates/wal/src/meta.rs"),
                deny("crates/core/src/durability.rs"),
                deny("crates/server/src/protocol.rs"),
                deny("crates/server/src/session.rs"),
                deny("crates/server/src/frame.rs"),
                deny("crates/server/src/reactor.rs"),
            ],
            lock_paths: vec![
                deny("crates/core/src/"),
                deny("crates/server/src/"),
                deny("crates/wal/src/"),
            ],
            lock_classes: Vec::new(),
            no_io_paths: vec![
                deny("crates/obs/src/"),
                deny("crates/faults/src/"),
                deny("crates/storage/src/"),
                deny("crates/sql/src/"),
                deny("crates/algebra/src/"),
                deny("crates/plan/src/"),
                deny("crates/server/src/protocol.rs"),
                deny("crates/server/src/frame.rs"),
            ],
            codecs: vec![
                CodecSpec {
                    enum_file: "crates/core/src/durability.rs".into(),
                    enum_name: "MetaRecord".into(),
                    encode: ("crates/core/src/durability.rs".into(), "encode".into()),
                    decode: ("crates/core/src/durability.rs".into(), "decode".into()),
                },
                CodecSpec {
                    enum_file: "crates/core/src/factory.rs".into(),
                    enum_name: "CursorState".into(),
                    encode: (
                        "crates/core/src/durability.rs".into(),
                        "encode_factory_state".into(),
                    ),
                    decode: (
                        "crates/core/src/durability.rs".into(),
                        "decode_factory_state".into(),
                    ),
                },
                CodecSpec {
                    enum_file: "crates/core/src/factory.rs".into(),
                    enum_name: "IncrMeta".into(),
                    encode: (
                        "crates/core/src/durability.rs".into(),
                        "encode_factory_state".into(),
                    ),
                    decode: (
                        "crates/core/src/durability.rs".into(),
                        "decode_factory_state".into(),
                    ),
                },
                CodecSpec {
                    enum_file: "crates/storage/src/types.rs".into(),
                    enum_name: "DataType".into(),
                    encode: ("crates/storage/src/binio.rs".into(), "type_tag".into()),
                    decode: ("crates/storage/src/binio.rs".into(), "type_from_tag".into()),
                },
                CodecSpec {
                    enum_file: "crates/server/src/protocol.rs".into(),
                    enum_name: "Command".into(),
                    encode: ("crates/server/src/session.rs".into(), "dispatch".into()),
                    decode: ("crates/server/src/protocol.rs".into(), "parse_command".into()),
                },
                CodecSpec {
                    enum_file: "crates/server/src/frame.rs".into(),
                    enum_name: "FrameTag".into(),
                    encode: ("crates/server/src/frame.rs".into(), "tag_byte".into()),
                    decode: ("crates/server/src/frame.rs".into(), "tag_from_byte".into()),
                },
            ],
        }
    }
}
