//! datacell-lint: workspace static analysis for the DataCell engine.
//!
//! Four invariants the type system cannot express, enforced at the token
//! level (the build environment is offline, so no `syn`):
//!
//! * **panic-freedom** — durability and wire paths return `Result`, never
//!   abort; `#[cfg(test)]` code is exempt.
//! * **crate-layering** — the dependency DAG in the README is checked
//!   against both `Cargo.toml` and source references; `protocol` and
//!   `storage` stay I/O-free.
//! * **lock-order** — `.lock()`/`.read()`/`.write()` acquisition sites
//!   form a held-while-acquiring graph; cycles are reported.
//! * **bounded-decode** — decode-side allocations must bound their length
//!   operand before calling the allocator.
//! * **codec-exhaustiveness** — every WAL/wire enum variant appears in
//!   both its encode and decode function.
//!
//! Deny-by-default: findings are errors. The escape hatch is a justified
//! `// lint:allow(<rule>): <reason>` comment on (or directly above) the
//! offending line; unjustified or unused allows are themselves findings.

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use config::Config;
use diag::{filter_allows, Diagnostic, RULES};
use source::SourceFile;

/// A loaded workspace: lexed sources plus crate manifests.
pub struct Workspace {
    /// The policy the workspace was loaded under.
    pub config: Config,
    files: Vec<SourceFile>,
    /// `(crate index, manifest text)` for each crate with a `Cargo.toml`.
    manifests: Vec<(usize, String)>,
}

impl Workspace {
    /// Read and lex every `.rs` file under the configured crate `src/`
    /// dirs and extra source dirs.
    pub fn load(config: Config) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut manifests = Vec::new();
        for (idx, spec) in config.crates.iter().enumerate() {
            let dir = config.root.join(&spec.dir);
            let src = dir.join("src");
            if src.is_dir() {
                load_dir(&config.root, &src, &mut files)?;
            }
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                manifests.push((idx, fs::read_to_string(&manifest)?));
            }
        }
        for extra in &config.extra_src {
            let dir = config.root.join(extra);
            if dir.is_dir() {
                load_dir(&config.root, &dir, &mut files)?;
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        files.dedup_by(|a, b| a.rel == b.rel);
        Ok(Workspace { config, files, manifests })
    }

    /// Lexed files, sorted by path.
    pub fn files(&self) -> &[SourceFile] {
        &self.files
    }
}

fn load_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let path = e.path();
        if path.is_dir() {
            load_dir(root, &path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let text = fs::read_to_string(&path)?;
            out.push(SourceFile::parse(rel, &text));
        }
    }
    Ok(())
}

fn matches_any(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}

/// Run `active` rules over the workspace; returns sorted diagnostics
/// after `lint:allow` filtering.
pub fn run(ws: &Workspace, active: &[String]) -> Vec<Diagnostic> {
    let on = |r: &str| active.iter().any(|a| a == r);
    // Unused-allow detection needs every rule's findings to be present.
    let full = RULES.iter().filter(|r| **r != "allow-syntax").all(|r| on(r));

    let mut buckets: BTreeMap<String, Vec<Diagnostic>> = BTreeMap::new();
    // Manifest/codec findings land on files that may hold no allows
    // (Cargo.toml) — they bypass the allow filter.
    let mut passthrough: Vec<Diagnostic> = Vec::new();
    let push = |buckets: &mut BTreeMap<String, Vec<Diagnostic>>,
                passthrough: &mut Vec<Diagnostic>,
                files: &[SourceFile],
                d: Diagnostic| {
        if files.iter().any(|f| f.rel == d.rel) {
            buckets.entry(d.rel.clone()).or_default().push(d);
        } else {
            passthrough.push(d);
        }
    };

    for f in &ws.files {
        let owner = ws
            .config
            .crates
            .iter()
            .find(|c| f.rel.starts_with(&format!("{}/", c.dir)));
        if on("panic-freedom") && matches_any(&f.rel, &ws.config.deny_panic_paths) {
            for d in rules::panic_freedom::check(f, &ws.config) {
                push(&mut buckets, &mut passthrough, &ws.files, d);
            }
        }
        if on("bounded-decode") && matches_any(&f.rel, &ws.config.decode_paths) {
            for d in rules::bounded_decode::check(f, &ws.config) {
                push(&mut buckets, &mut passthrough, &ws.files, d);
            }
        }
        if on("crate-layering") {
            if let Some(spec) = owner {
                for d in rules::layering::check_source(spec, f) {
                    push(&mut buckets, &mut passthrough, &ws.files, d);
                }
            }
            if matches_any(&f.rel, &ws.config.no_io_paths) {
                for d in rules::layering::check_no_io(f, &ws.config) {
                    push(&mut buckets, &mut passthrough, &ws.files, d);
                }
            }
        }
    }

    if on("crate-layering") {
        for (idx, toml) in &ws.manifests {
            passthrough.extend(rules::layering::check_manifest(&ws.config.crates[*idx], toml));
        }
    }

    if on("lock-order") {
        let lock_files: Vec<&SourceFile> = ws
            .files
            .iter()
            .filter(|f| matches_any(&f.rel, &ws.config.lock_paths))
            .collect();
        for d in rules::lock_order::check(&lock_files, &ws.config) {
            push(&mut buckets, &mut passthrough, &ws.files, d);
        }
    }

    if on("codec-exhaustiveness") {
        let lookup = |rel: &str| ws.files.iter().find(|f| f.rel == rel);
        for spec in &ws.config.codecs {
            for d in rules::codec::check(spec, lookup) {
                push(&mut buckets, &mut passthrough, &ws.files, d);
            }
        }
    }

    let mut out = Vec::new();
    for f in &ws.files {
        let diags = buckets.remove(&f.rel).unwrap_or_default();
        if diags.is_empty() && f.allows.is_empty() {
            continue;
        }
        out.extend(filter_allows(f, diags, full));
    }
    out.extend(passthrough);
    out.sort_by(|a, b| (&a.rel, a.line, a.rule, &a.msg).cmp(&(&b.rel, b.line, b.rule, &b.msg)));
    out
}
