//! CLI for datacell-lint.
//!
//! ```text
//! cargo run -p datacell-lint --release -- --deny
//! ```
//!
//! Exit codes: 0 = clean (or advisory mode), 1 = findings under `--deny`,
//! 2 = usage or I/O error.

use std::process::exit;

use datacell_lint::config::Config;
use datacell_lint::diag::RULES;
use datacell_lint::{run, Workspace};

const USAGE: &str = "\
datacell-lint — workspace static analysis for the DataCell engine

USAGE:
    datacell-lint [--deny] [--root <dir>] [--rule <name>]... [--list-rules]

OPTIONS:
    --deny          exit 1 when any finding survives (CI mode); without it
                    findings are printed but the exit code stays 0
    --root <dir>    workspace root (default: current directory)
    --rule <name>   run only the named rule (repeatable); default: all
    --list-rules    print the rule names and exit
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny = false;
    let mut root = String::from(".");
    let mut only: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--root" => match it.next() {
                Some(v) => root = v.clone(),
                None => usage_error("--root needs a directory"),
            },
            "--rule" => match it.next() {
                Some(v) if RULES.contains(&v.as_str()) => only.push(v.clone()),
                Some(v) => usage_error(&format!("unknown rule {v:?} (see --list-rules)")),
                None => usage_error("--rule needs a rule name"),
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{r}");
                }
                return;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }
    let active: Vec<String> = if only.is_empty() {
        RULES.iter().map(|r| r.to_string()).collect()
    } else {
        only
    };

    let ws = match Workspace::load(Config::datacell(&root)) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("datacell-lint: cannot load workspace at {root:?}: {e}");
            exit(2);
        }
    };
    let diags = run(&ws, &active);
    for d in &diags {
        println!("{}", d.render());
    }
    if diags.is_empty() {
        eprintln!(
            "datacell-lint: clean — {} files, {} rule(s)",
            ws.files().len(),
            active.len()
        );
    } else {
        eprintln!(
            "datacell-lint: {} finding(s) across {} files{}",
            diags.len(),
            ws.files().len(),
            if deny { "" } else { " (advisory; pass --deny to fail)" }
        );
        if deny {
            exit(1);
        }
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("datacell-lint: {msg}\n\n{USAGE}");
    exit(2)
}
