//! A minimal token-level lexer for Rust source.
//!
//! The build environment is offline/vendored-only, so there is no `syn`;
//! the rules in this crate only need a faithful token stream with line
//! numbers, with comments, strings and char literals stripped (so an
//! `unwrap` inside a doc example or a format string is never a finding).
//! The lexer also extracts `// lint:allow(<rule>): <reason>` directives
//! from the comments it strips.

/// Kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `MetaRecord`, …).
    Ident,
    /// Numeric literal (`42`, `0xFF`, `1.5`, `1_000u64`).
    Num,
    /// String, byte-string or char literal (content dropped).
    Str,
    /// Lifetime (`'a`; content dropped).
    Lifetime,
    /// Single punctuation character (`.`, `(`, `!`, …).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text; for [`TokKind::Str`]/[`TokKind::Lifetime`] this is empty.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// True iff the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True iff the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }
}

/// One `// lint:allow(rule, …): reason` directive found in a comment.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Rule names the directive suppresses.
    pub rules: Vec<String>,
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Whether the comment is alone on its line (then it covers the next
    /// line); a trailing comment covers its own line.
    pub own_line: bool,
    /// Whether a non-empty `: reason` followed the rule list.
    pub has_reason: bool,
}

/// Lexer output: the token stream plus extracted allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Allow directives in source order.
    pub allows: Vec<AllowDirective>,
}

/// Parse the body of a line comment for a `lint:allow` directive.
fn parse_allow(comment: &str, line: u32, own_line: bool) -> Option<AllowDirective> {
    let rest = comment.trim_start_matches('/').trim_start_matches('!').trim_start();
    let rest = rest.strip_prefix("lint:allow")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
    Some(AllowDirective { rules, line, own_line, has_reason })
}

/// Lex one file. Total: arbitrary input produces a token stream, never a
/// panic (unterminated constructs simply run to end of input).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether only whitespace has been seen since the last newline (to
    // decide whether an allow comment is alone on its line).
    let mut line_blank = true;

    let bump_lines = |s: &[u8]| s.iter().filter(|&&c| c == b'\n').count() as u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                line_blank = true;
                i += 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let end = b[i..].iter().position(|&c| c == b'\n').map_or(b.len(), |p| i + p);
                let comment = &src[i..end];
                if let Some(d) = parse_allow(&comment[2..], line, line_blank) {
                    out.allows.push(d);
                }
                i = end;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting honoured.
                let mut depth = 1;
                let start = i;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += bump_lines(&b[start..i]);
            }
            b'"' => {
                let (end, lines) = skip_string(b, i);
                out.tokens.push(Token { kind: TokKind::Str, text: String::new(), line });
                line += lines;
                i = end;
                line_blank = false;
            }
            b'r' | b'b' if is_raw_or_byte_string(b, i) => {
                let (end, lines) = skip_raw_or_byte(b, i);
                out.tokens.push(Token { kind: TokKind::Str, text: String::new(), line });
                line += lines;
                i = end;
                line_blank = false;
            }
            b'\'' => {
                // Lifetime vs char literal.
                let next = b.get(i + 1).copied().unwrap_or(0);
                let after = b.get(i + 2).copied().unwrap_or(0);
                if (next.is_ascii_alphabetic() || next == b'_') && after != b'\'' {
                    // Lifetime: consume ident.
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: String::new(),
                        line,
                    });
                } else {
                    // Char literal: skip to the closing quote, honouring
                    // a single backslash escape.
                    let start = i;
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2;
                    } else {
                        i += 1;
                    }
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    line += bump_lines(&b[start..i.min(b.len())]);
                    out.tokens.push(Token { kind: TokKind::Str, text: String::new(), line });
                }
                line_blank = false;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
                line_blank = false;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        i += 1; // decimal point of a float, not `..` / method
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
                line_blank = false;
            }
            c => {
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
                line_blank = false;
            }
        }
    }
    out
}

/// Does `b[i..]` start a raw (`r"`, `r#"`) or byte (`b"`, `br#"`, `b'`)
/// literal rather than a plain identifier?
fn is_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'\'') {
            return true; // byte char b'x'
        }
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
    }
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    // `r#ident` (raw identifier) has an ident char after exactly one `#`
    // and no quote; only treat as string when a quote follows.
    b.get(j) == Some(&b'"') && j > i
}

/// Skip a plain `"…"` string starting at `i`; returns (end index, newlines).
fn skip_string(b: &[u8], i: usize) -> (usize, u32) {
    let start = i;
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let i = i.min(b.len());
    let lines = b[start..i].iter().filter(|&&c| c == b'\n').count() as u32;
    (i, lines)
}

/// Skip a raw/byte string (`r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'x'`)
/// starting at `i`; returns (end index, newlines).
fn skip_raw_or_byte(b: &[u8], i: usize) -> (usize, u32) {
    let start = i;
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if b.get(j) == Some(&b'\'') {
            // byte char literal
            j += 1;
            if b.get(j) == Some(&b'\\') {
                j += 2;
            } else {
                j += 1;
            }
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            let end = (j + 1).min(b.len());
            return (end, 0);
        }
    }
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    // Opening quote.
    j += 1;
    if raw {
        // Scan for `"` followed by `hashes` hashes; no escapes in raw strings.
        while j < b.len() {
            if b[j] == b'"' && b[j + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes {
                j += 1 + hashes;
                break;
            }
            j += 1;
        }
    } else {
        // Plain byte string: escapes apply.
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
    }
    let j = j.min(b.len());
    let lines = b[start..j].iter().filter(|&&c| c == b'\n').count() as u32;
    (j, lines)
}
