//! Rule-level fixture tests plus the live-workspace self-check.
//!
//! Each rule gets a bad fixture (exact diagnostics asserted) and a good
//! fixture (must stay clean); the final test lints the real workspace
//! under the shipped policy and requires zero findings — the same gate CI
//! runs via `scripts/lint.sh`.

use std::fs;
use std::path::Path;

use datacell_lint::config::{CodecSpec, Config, CrateSpec};
use datacell_lint::diag::{filter_allows, RULES};
use datacell_lint::rules;
use datacell_lint::source::SourceFile;
use datacell_lint::{run, Workspace};

fn fixture(rel: &str) -> SourceFile {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rel);
    SourceFile::parse(rel, &fs::read_to_string(path).unwrap())
}

fn storage_spec() -> CrateSpec {
    CrateSpec {
        name: "datacell-storage".into(),
        dir: "crates/storage".into(),
        internal_deps: vec![],
        external_deps: vec!["parking_lot".into()],
    }
}

#[test]
fn panic_freedom_fires_on_bad() {
    let f = fixture("panic/bad.rs");
    let diags = rules::panic_freedom::check(&f, &Config::bare("."));
    let hits: Vec<(u32, &str)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(
        hits,
        vec![(3, "panic-freedom"), (11, "panic-freedom"), (16, "panic-freedom")]
    );
    assert!(diags[0].msg.contains(".unwrap()"));
    assert!(diags[1].msg.contains("unreachable!"));
    assert!(diags[2].msg.contains(".expect()"));
}

#[test]
fn panic_freedom_clean_on_good() {
    let f = fixture("panic/good.rs");
    let diags = filter_allows(&f, rules::panic_freedom::check(&f, &Config::bare(".")), true);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_order_reports_seeded_cycle() {
    let f = fixture("lock/bad.rs");
    let diags = rules::lock_order::check(&[&f], &Config::bare("."));
    assert_eq!(diags.len(), 1, "{diags:?}");
    let msg = &diags[0].msg;
    assert!(msg.contains("cycle"), "{msg}");
    assert!(msg.contains("catalog") && msg.contains("sessions"), "{msg}");
    assert!(msg.contains("transfer") && msg.contains("report"), "{msg}");
}

#[test]
fn lock_order_clean_on_consistent_order() {
    let f = fixture("lock/good.rs");
    let diags = rules::lock_order::check(&[&f], &Config::bare("."));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bounded_decode_fires_on_unguarded_allocs() {
    let f = fixture("decode/bad.rs");
    let diags = rules::bounded_decode::check(&f, &Config::bare("."));
    let hits: Vec<(u32, &str)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(hits, vec![(4, "bounded-decode"), (13, "bounded-decode")]);
    assert!(diags[0].msg.contains("`n`"), "{}", diags[0].msg);
    assert!(diags[1].msg.contains("`count`"), "{}", diags[1].msg);
}

#[test]
fn bounded_decode_clean_on_guarded_allocs() {
    let f = fixture("decode/good.rs");
    let diags = rules::bounded_decode::check(&f, &Config::bare("."));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn codec_flags_missing_decode_arm() {
    let f = fixture("codec/bad.rs");
    let spec = CodecSpec {
        enum_file: "codec/bad.rs".into(),
        enum_name: "RecordKind".into(),
        encode: ("codec/bad.rs".into(), "encode".into()),
        decode: ("codec/bad.rs".into(), "decode".into()),
    };
    let diags = rules::codec::check(&spec, |rel| (rel == f.rel).then_some(&f));
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].msg.contains("Checkpoint"), "{}", diags[0].msg);
    assert!(diags[0].msg.contains("decode"), "{}", diags[0].msg);
}

#[test]
fn codec_clean_when_exhaustive() {
    let f = fixture("codec/good.rs");
    let spec = CodecSpec {
        enum_file: "codec/good.rs".into(),
        enum_name: "RecordKind".into(),
        encode: ("codec/good.rs".into(), "encode".into()),
        decode: ("codec/good.rs".into(), "decode".into()),
    };
    let diags = rules::codec::check(&spec, |rel| (rel == f.rel).then_some(&f));
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn layering_flags_cross_layer_reference_and_io() {
    let spec = storage_spec();
    let bad = fixture("layering/bad.rs");
    let cfg = Config::bare(".");

    let diags = rules::layering::check_source(&spec, &bad);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].msg.contains("datacell-core"), "{}", diags[0].msg);

    let io = rules::layering::check_no_io(&bad, &cfg);
    assert_eq!(io.len(), 1, "{io:?}");
    assert_eq!(io[0].line, 4);
    assert!(io[0].msg.contains("std::fs"), "{}", io[0].msg);

    let good = fixture("layering/good.rs");
    assert!(rules::layering::check_source(&spec, &good).is_empty());
    assert!(rules::layering::check_no_io(&good, &cfg).is_empty());
}

#[test]
fn layering_flags_undeclared_manifest_dep() {
    let toml = "[package]\nname = \"datacell-storage\"\n\n[dependencies]\n\
                datacell-core = { workspace = true }\nparking_lot = { workspace = true }\n";
    let diags = rules::layering::check_manifest(&storage_spec(), toml);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].msg.contains("datacell-core"), "{}", diags[0].msg);
}

#[test]
fn allow_without_reason_is_a_finding() {
    let src = "fn f(v: Option<u32>) -> u32 {\n    // lint:allow(panic-freedom)\n    v.unwrap()\n}\n";
    let f = SourceFile::parse("inline.rs", src);
    let diags = filter_allows(&f, rules::panic_freedom::check(&f, &Config::bare(".")), true);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "allow-syntax");
    assert!(diags[0].msg.contains("justification"), "{}", diags[0].msg);
}

#[test]
fn allow_with_unknown_rule_is_a_finding() {
    let src = "// lint:allow(made-up): because\nfn g() {}\n";
    let f = SourceFile::parse("inline.rs", src);
    let diags = filter_allows(&f, Vec::new(), true);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].msg.contains("unknown rule"), "{}", diags[0].msg);
}

#[test]
fn unused_allow_is_a_finding() {
    let src = "fn h() -> u32 {\n    // lint:allow(panic-freedom): stale excuse\n    4\n}\n";
    let f = SourceFile::parse("inline.rs", src);
    let diags = filter_allows(&f, Vec::new(), true);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].msg.contains("unused"), "{}", diags[0].msg);
}

#[test]
fn unused_allow_not_checked_under_rule_subset() {
    let src = "fn h() -> u32 {\n    // lint:allow(panic-freedom): held for the full run\n    4\n}\n";
    let f = SourceFile::parse("inline.rs", src);
    assert!(filter_allows(&f, Vec::new(), false).is_empty());
}

#[test]
fn live_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(Config::datacell(root)).unwrap();
    let active: Vec<String> = RULES.iter().map(|r| r.to_string()).collect();
    let diags = run(&ws, &active);
    assert!(
        diags.is_empty(),
        "live workspace must lint clean:\n{}",
        diags.iter().map(|d| d.render()).collect::<Vec<_>>().join("\n")
    );
}
