// Fixture: consistent ordering — catalog before sessions everywhere —
// plus a temporary guard whose hold ends at the statement.
pub fn transfer(engine: &Engine) {
    let cat = engine.catalog.lock();
    let sess = engine.sessions.lock();
    cat.apply(&sess);
}

pub fn report(engine: &Engine) {
    let cat = engine.catalog.lock();
    let sess = engine.sessions.lock();
    sess.render(&cat);
}

pub fn tick(engine: &Engine) {
    engine.sessions.lock().bump();
    let cat = engine.catalog.lock();
    cat.flush();
}
