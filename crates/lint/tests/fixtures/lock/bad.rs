// Fixture: a seeded lock-order cycle. `transfer` holds catalog while
// taking sessions; `report` holds sessions while taking catalog.
pub fn transfer(engine: &Engine) {
    let cat = engine.catalog.lock();
    let sess = engine.sessions.lock();
    cat.apply(&sess);
}

pub fn report(engine: &Engine) {
    let sess = engine.sessions.lock();
    let cat = engine.catalog.lock();
    sess.render(&cat);
}
