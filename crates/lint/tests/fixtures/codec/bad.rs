// Fixture: `Checkpoint` encodes but never decodes — replay would drop it.
pub enum RecordKind {
    Insert,
    Delete,
    Checkpoint,
}

pub fn encode(k: &RecordKind) -> u8 {
    match k {
        RecordKind::Insert => 1,
        RecordKind::Delete => 2,
        RecordKind::Checkpoint => 3,
    }
}

pub fn decode(tag: u8) -> Option<RecordKind> {
    match tag {
        1 => Some(RecordKind::Insert),
        2 => Some(RecordKind::Delete),
        _ => None,
    }
}
