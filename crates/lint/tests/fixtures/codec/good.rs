// Fixture: every variant appears on both sides (attrs and payloads are
// skipped when extracting variants).
pub enum RecordKind {
    Insert { rows: u32 },
    Delete(u64),
    #[doc = "full snapshot marker"]
    Checkpoint,
}

pub fn encode(k: &RecordKind) -> u8 {
    match k {
        RecordKind::Insert { .. } => 1,
        RecordKind::Delete(_) => 2,
        RecordKind::Checkpoint => 3,
    }
}

pub fn decode(tag: u8) -> Option<RecordKind> {
    match tag {
        1 => Some(RecordKind::Insert { rows: 0 }),
        2 => Some(RecordKind::Delete(0)),
        3 => Some(RecordKind::Checkpoint),
        _ => None,
    }
}
