// Fixture: wire-controlled lengths reach the allocator unchecked.
pub fn decode(r: &mut Reader) -> Result<Vec<u8>, Error> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u8()?);
    }
    Ok(out)
}

pub fn decode_rows(r: &mut Reader) -> Result<Vec<u64>, Error> {
    let count = r.u32()? as usize;
    let rows = vec![0u64; count];
    Ok(rows)
}
