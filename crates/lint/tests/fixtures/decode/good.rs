// Fixture: the same allocations, bounded first.
pub fn decode(r: &mut Reader) -> Result<Vec<u8>, Error> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(Error::Corrupt);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u8()?);
    }
    Ok(out)
}

pub fn decode_rows(r: &mut Reader) -> Result<Vec<u64>, Error> {
    let count = (r.u32()? as usize).min(r.remaining() / 8);
    let rows = vec![0u64; count];
    Ok(rows)
}

pub fn header() -> Vec<u8> {
    Vec::with_capacity(HEADER_BYTES * 2)
}

pub fn copy_of(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len());
    out.extend_from_slice(payload);
    out
}
