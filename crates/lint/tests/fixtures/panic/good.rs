// Fixture: the same shapes, panic-free or justified.
pub fn read_len(buf: &[u8]) -> Option<u32> {
    let raw: [u8; 4] = buf.get(..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

pub fn checked(v: Option<u32>) -> u32 {
    // lint:allow(panic-freedom): fixture demonstrating a justified own-line allow
    v.unwrap()
}

pub fn trailing(v: Option<u32>) -> u32 {
    v.expect("validated") // lint:allow(panic-freedom): fixture demonstrating a trailing allow
}

// A string mentioning .unwrap() and a doc example are not findings:
pub const HINT: &str = "never call .unwrap() here";

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_freely() {
        assert_eq!(Some(1).unwrap(), 1);
        Option::<u32>::None.map(|v| v).unwrap_or_else(|| panic!("fine in tests"));
    }
}
