// Fixture: panic-freedom violations in live code.
pub fn read_len(buf: &[u8]) -> u32 {
    let raw: [u8; 4] = buf[..4].try_into().unwrap();
    u32::from_le_bytes(raw)
}

pub fn route(tag: u8) -> &'static str {
    match tag {
        1 => "meta",
        2 => "stream",
        _ => unreachable!("bad tag"),
    }
}

pub fn checked(v: Option<u32>) -> u32 {
    v.expect("caller validated")
}
