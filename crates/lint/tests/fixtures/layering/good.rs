// Fixture: a storage-layer file staying in its layer — only allowed
// internal deps, no I/O.
use datacell_storage::Bat;

pub fn width(bat: &Bat) -> usize {
    bat.len()
}
