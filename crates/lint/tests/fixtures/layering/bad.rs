// Fixture: a "storage-layer" file reaching up into the engine and doing
// file I/O.
use datacell_core::Engine;
use std::fs::File;

pub fn peek(engine: &Engine) -> File {
    engine.open_data_file()
}
