//! Equivalence suite for zero-copy BAT views: random interleavings of
//! `push` / `append` / `slice` / `drop_front` must leave view-backed BATs
//! observationally identical to the old deep-copy semantics, while live
//! views taken at any point stay frozen at their capture contents.
//!
//! The reference model is the obvious deep-copy implementation: a
//! `Vec<Value>` plus a base OID. Every step compares the real BAT (and
//! every live view) against the model via the full `Value` read surface.

use datacell_storage::{Bat, Chunk, DataType, Oid, Value, Vector};
use proptest::prelude::*;

/// Deep-copy reference: the tuples a BAT should hold, plus its head base.
#[derive(Clone, Debug)]
struct Model {
    base: Oid,
    vals: Vec<Value>,
}

impl Model {
    fn new(base: Oid) -> Self {
        Model { base, vals: Vec::new() }
    }

    fn slice(&self, lo: Oid, hi: Oid) -> Model {
        let end = self.base + self.vals.len() as u64;
        let lo = lo.clamp(self.base, end);
        let hi = hi.clamp(lo, end);
        Model {
            base: lo,
            vals: self.vals[(lo - self.base) as usize..(hi - self.base) as usize].to_vec(),
        }
    }

    fn drop_front(&mut self, n: usize) {
        let n = n.min(self.vals.len());
        self.vals.drain(..n);
        self.base += n as u64;
    }
}

/// Assert a BAT reads exactly like its model: length, base, per-position
/// values, per-OID lookups, validity count, and iteration order.
fn assert_matches(bat: &Bat, model: &Model, ctx: &str) {
    assert_eq!(bat.len(), model.vals.len(), "{ctx}: len");
    if !model.vals.is_empty() {
        assert_eq!(bat.oid_base(), model.base, "{ctx}: base");
    }
    for (i, want) in model.vals.iter().enumerate() {
        assert_eq!(&bat.get_at(i), want, "{ctx}: get_at({i})");
        let oid = model.base + i as u64;
        assert_eq!(&bat.get(oid).unwrap(), want, "{ctx}: get({oid})");
    }
    let want_valid = model.vals.iter().filter(|v| !v.is_null()).count();
    assert_eq!(bat.valid_count(), want_valid, "{ctx}: valid_count");
    let pairs: Vec<(Oid, Value)> = bat.iter().collect();
    let want_pairs: Vec<(Oid, Value)> = model
        .vals
        .iter()
        .enumerate()
        .map(|(i, v)| (model.base + i as u64, v.clone()))
        .collect();
    assert_eq!(pairs, want_pairs, "{ctx}: iter");
}

/// One step of the interleaving.
#[derive(Clone, Debug)]
enum Op {
    /// Append one value (NULL with some probability).
    Push(Value),
    /// Append a batch through `Bat::append`.
    Append(Vec<Value>),
    /// Take a view `[lo_frac, hi_frac]` of the current OID span and hold it.
    Slice(u8, u8),
    /// Retire a prefix of the current length.
    DropFront(u8),
    /// Drop the oldest held view (releases its buffer reference).
    ReleaseView,
    /// Detach the newest held view from shared storage.
    CompactView,
}

fn arb_value(ty: DataType) -> impl Strategy<Value = Value> {
    (0i64..64, 0u8..8).prop_map(move |(x, null)| {
        if null == 0 {
            return Value::Null;
        }
        match ty {
            DataType::Int => Value::Int(x),
            DataType::Str => Value::Str(format!("s{x}")),
            DataType::Float => Value::Float(x as f64 / 2.0),
            DataType::Bool => Value::Bool(x % 2 == 0),
            DataType::Timestamp => Value::Timestamp(x),
        }
    })
}

fn arb_op(ty: DataType) -> impl Strategy<Value = Op> {
    prop_oneof![
        arb_value(ty).prop_map(Op::Push),
        prop::collection::vec(arb_value(ty), 0..6).prop_map(Op::Append),
        (0u8..101, 0u8..101).prop_map(|(a, b)| Op::Slice(a.min(b), a.max(b))),
        (0u8..101).prop_map(Op::DropFront),
        Just(Op::ReleaseView),
        Just(Op::CompactView),
    ]
}

/// Run one interleaving against one tail type.
fn check_interleaving(ty: DataType, ops: &[Op]) {
    let mut bat = Bat::new(ty);
    let mut model = Model::new(0);
    // Live views and the frozen model contents they must keep reading.
    let mut views: Vec<(Bat, Model)> = Vec::new();

    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Push(v) => {
                bat.push(v).unwrap();
                model.vals.push(v.clone());
            }
            Op::Append(vals) => {
                let mut delta = Bat::new(ty);
                for v in vals {
                    delta.push(v).unwrap();
                }
                bat.append(&delta).unwrap();
                model.vals.extend(vals.iter().cloned());
            }
            Op::Slice(lo_pct, hi_pct) => {
                let span = bat.len() as u64;
                let lo = bat.oid_base() + span * (*lo_pct as u64) / 100;
                let hi = bat.oid_base() + span * (*hi_pct as u64) / 100;
                let view = bat.slice_oids(lo, hi);
                let view_model = model.slice(lo, hi);
                assert_matches(&view, &view_model, &format!("step {step}: fresh slice"));
                views.push((view, view_model));
            }
            Op::DropFront(pct) => {
                let n = bat.len() * (*pct as usize) / 100;
                bat.drop_front(n);
                model.drop_front(n);
            }
            Op::ReleaseView => {
                if !views.is_empty() {
                    views.remove(0);
                }
            }
            Op::CompactView => {
                if let Some((view, _)) = views.last_mut() {
                    view.compact();
                }
            }
        }
        assert_matches(&bat, &model, &format!("step {step}: owner after {op:?}"));
        for (i, (view, view_model)) in views.iter().enumerate() {
            assert_matches(view, view_model, &format!("step {step}: held view {i}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn int_bats_with_views_match_deep_copy_semantics(
        ops in prop::collection::vec(arb_op(DataType::Int), 1..40)
    ) {
        check_interleaving(DataType::Int, &ops);
    }

    #[test]
    fn str_bats_with_views_match_deep_copy_semantics(
        ops in prop::collection::vec(arb_op(DataType::Str), 1..40)
    ) {
        check_interleaving(DataType::Str, &ops);
    }

    #[test]
    fn float_bats_with_views_match_deep_copy_semantics(
        ops in prop::collection::vec(arb_op(DataType::Float), 1..40)
    ) {
        check_interleaving(DataType::Float, &ops);
    }
}

/// The O(1) claim itself: slicing any of the five tail types aliases the
/// source buffer instead of copying elements, at every layer (`Vector`,
/// `Bat`, `Chunk`).
#[test]
fn slices_alias_for_all_five_types_at_every_layer() {
    let vectors: Vec<Vector> = vec![
        vec![1i64, 2, 3, 4].into(),
        vec![1.0f64, 2.0, 3.0, 4.0].into(),
        vec![true, false, true, false].into(),
        vec!["a".to_string(), "b".into(), "c".into(), "d".into()].into(),
        Vector::Timestamp(vec![10i64, 20, 30, 40].into()),
    ];
    for data in vectors {
        let ty = data.data_type();
        // Vector layer.
        let vs = data.slice(1, 3);
        assert!(vs.shares_buffer_with(&data), "{ty:?}: Vector::slice must alias");
        // Bat layer.
        let bat = Bat::from_vector(data, 100);
        let bs = bat.slice_oids(101, 103);
        assert!(bs.shares_buffer_with(&bat), "{ty:?}: Bat::slice_oids must alias");
        assert_eq!(bs.oid_base(), 101);
        assert_eq!(bs.get_at(0), bat.get_at(1), "{ty:?}: view reads through offset");
        // Chunk layer.
        let chunk = Chunk::new(vec![bat.clone()]).unwrap();
        let cs = chunk.slice_oids(101, 103);
        assert!(
            cs.column(0).shares_buffer_with(&bat),
            "{ty:?}: Chunk::slice_oids must alias"
        );
    }
}

/// Validity is a shared segment too: slicing a nullable BAT copies no
/// validity bits and the view reports NULLs at view-relative positions.
#[test]
fn validity_views_read_through_offset() {
    let mut bat = Bat::new(DataType::Int);
    bat.push(&Value::Int(1)).unwrap();
    bat.push(&Value::Null).unwrap();
    bat.push(&Value::Int(3)).unwrap();
    bat.push(&Value::Null).unwrap();
    let view = bat.slice_oids(1, 4);
    assert_eq!(view.get_at(0), Value::Null);
    assert_eq!(view.get_at(1), Value::Int(3));
    assert_eq!(view.get_at(2), Value::Null);
    assert_eq!(view.valid_count(), 1);
    assert_eq!(view.validity().unwrap(), &[false, true, false]);
}

/// Appending to a BAT whose buffer is shared with a live view must leave
/// the view frozen (copy-on-write), and an unshared BAT must keep its
/// buffer (fast path) — the CoW contract at the Bat layer.
#[test]
fn bat_append_is_cow_under_sharing() {
    let mut bat = Bat::from_ints(vec![1, 2, 3]);
    let view = bat.slice_oids(0, 3);
    bat.push(&Value::Int(4)).unwrap();
    assert_eq!(view.len(), 3, "live view must not grow");
    assert_eq!(bat.len(), 4);
    assert!(!bat.shares_buffer_with(&view), "append under sharing detaches");
    // A fresh slice of the detached BAT aliases its new buffer again.
    let snapshot = bat.slice_oids(0, 4);
    assert!(snapshot.shares_buffer_with(&bat));
}
