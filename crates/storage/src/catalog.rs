//! The catalog: named persistent tables and stream (basket) declarations.
//!
//! Tables live here; baskets themselves are runtime objects owned by the
//! DataCell engine (`datacell-core`), but their *declarations* — name plus
//! schema, produced by `CREATE STREAM` — are catalog entries so that the
//! binder can resolve both paradigms uniformly (paper §3, "the natural
//! integration of baskets and tables within the same processing fabric").

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::table::Table;

/// Shared, thread-safe handle to a table.
pub type TableHandle = Arc<RwLock<Table>>;

/// Declaration of a stream: name + schema. The engine materializes a basket
/// for each declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDef {
    /// Stream name.
    pub name: String,
    /// Tuple schema of the stream.
    pub schema: Schema,
}

/// What a name resolves to.
#[derive(Debug, Clone)]
pub enum CatalogEntry {
    /// A persistent table.
    Table(TableHandle),
    /// A declared stream (backed by a basket at runtime).
    Stream(StreamDef),
}

/// Thread-safe name → object map.
#[derive(Debug, Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, CatalogEntry>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register a new table; fails if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<TableHandle> {
        let mut entries = self.entries.write();
        let key = Self::key(name);
        if entries.contains_key(&key) {
            return Err(StorageError::DuplicateName(name.to_owned()));
        }
        let handle = Arc::new(RwLock::new(Table::new(name, schema)));
        entries.insert(key, CatalogEntry::Table(handle.clone()));
        Ok(handle)
    }

    /// Register a new stream declaration; fails if the name is taken.
    pub fn create_stream(&self, name: &str, schema: Schema) -> Result<StreamDef> {
        let mut entries = self.entries.write();
        let key = Self::key(name);
        if entries.contains_key(&key) {
            return Err(StorageError::DuplicateName(name.to_owned()));
        }
        let def = StreamDef { name: name.to_owned(), schema };
        entries.insert(key, CatalogEntry::Stream(def.clone()));
        Ok(def)
    }

    /// Resolve a name to its entry.
    pub fn get(&self, name: &str) -> Result<CatalogEntry> {
        self.entries
            .read()
            .get(&Self::key(name))
            .cloned()
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Resolve to a table handle, or error if missing / a stream.
    pub fn table(&self, name: &str) -> Result<TableHandle> {
        match self.get(name)? {
            CatalogEntry::Table(t) => Ok(t),
            CatalogEntry::Stream(_) => Err(StorageError::UnknownTable(format!(
                "{name} is a stream, not a table"
            ))),
        }
    }

    /// Resolve to a stream declaration, or error if missing / a table.
    pub fn stream(&self, name: &str) -> Result<StreamDef> {
        match self.get(name)? {
            CatalogEntry::Stream(s) => Ok(s),
            CatalogEntry::Table(_) => Err(StorageError::UnknownTable(format!(
                "{name} is a table, not a stream"
            ))),
        }
    }

    /// Schema of either kind of object.
    pub fn schema_of(&self, name: &str) -> Result<Schema> {
        match self.get(name)? {
            CatalogEntry::Table(t) => Ok(t.read().schema().clone()),
            CatalogEntry::Stream(s) => Ok(s.schema),
        }
    }

    /// True iff `name` resolves to a stream.
    pub fn is_stream(&self, name: &str) -> bool {
        matches!(self.get(name), Ok(CatalogEntry::Stream(_)))
    }

    /// Remove an entry (DROP TABLE / DROP STREAM).
    pub fn drop_entry(&self, name: &str) -> Result<()> {
        self.entries
            .write()
            .remove(&Self::key(name))
            .map(|_| ())
            .ok_or_else(|| StorageError::UnknownTable(name.to_owned()))
    }

    /// Names of all registered objects, sorted (for the monitor pane).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.entries.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Names of all streams, sorted.
    pub fn stream_names(&self) -> Vec<String> {
        let entries = self.entries.read();
        let mut v: Vec<String> = entries
            .iter()
            .filter(|(_, e)| matches!(e, CatalogEntry::Stream(_)))
            .map(|(k, _)| k.clone())
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;
    use crate::value::Value;

    #[test]
    fn create_and_resolve_table() {
        let cat = Catalog::new();
        let schema = Schema::of(&[("x", DataType::Int)]);
        cat.create_table("T", schema.clone()).unwrap();
        let t = cat.table("t").unwrap();
        t.write().insert(&vec![Value::Int(1)]).unwrap();
        assert_eq!(t.read().len(), 1);
        assert_eq!(cat.schema_of("T").unwrap(), schema);
    }

    #[test]
    fn duplicate_names_rejected_across_kinds() {
        let cat = Catalog::new();
        let schema = Schema::of(&[("x", DataType::Int)]);
        cat.create_table("obj", schema.clone()).unwrap();
        assert!(matches!(
            cat.create_stream("OBJ", schema),
            Err(StorageError::DuplicateName(_))
        ));
    }

    #[test]
    fn stream_vs_table_resolution() {
        let cat = Catalog::new();
        let schema = Schema::of(&[("x", DataType::Int)]);
        cat.create_stream("s", schema.clone()).unwrap();
        assert!(cat.is_stream("S"));
        assert!(cat.table("s").is_err());
        assert_eq!(cat.stream("s").unwrap().schema, schema);
    }

    #[test]
    fn drop_removes_entry() {
        let cat = Catalog::new();
        cat.create_table("t", Schema::of(&[("x", DataType::Int)])).unwrap();
        cat.drop_entry("t").unwrap();
        assert!(cat.get("t").is_err());
        assert!(cat.drop_entry("t").is_err());
    }

    #[test]
    fn names_are_sorted() {
        let cat = Catalog::new();
        let s = Schema::of(&[("x", DataType::Int)]);
        cat.create_table("zeta", s.clone()).unwrap();
        cat.create_stream("alpha", s.clone()).unwrap();
        cat.create_table("mid", s).unwrap();
        assert_eq!(cat.names(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(cat.stream_names(), vec!["alpha"]);
    }
}
