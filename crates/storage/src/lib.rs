//! # datacell-storage
//!
//! The columnar storage kernel underneath the DataCell engine: a from-scratch
//! reproduction of the MonetDB storage layer the paper builds on (§3, "A
//! Column-oriented DBMS").
//!
//! * [`Bat`] — Binary Association Table: virtual dense-OID head + typed tail.
//! * [`Vector`] — the typed tail storage, processed one column at a time.
//! * [`Chunk`] — a batch of aligned BATs, the currency between operators.
//! * [`Table`] — persistent relation (one BAT per attribute).
//! * [`Catalog`] — names for tables and stream declarations.
//!
//! Everything downstream (the bulk algebra, the baskets, the factories)
//! manipulates these types only; there is no tuple-at-a-time path in the
//! kernel.

#![warn(missing_docs)]

pub mod bat;
pub mod binio;
pub mod catalog;
pub mod chunk;
pub mod error;
pub mod schema;
pub mod table;
pub mod types;
pub mod value;
pub mod vector;

pub use bat::Bat;
pub use catalog::{Catalog, CatalogEntry, StreamDef, TableHandle};
pub use chunk::{Chunk, IngestStamp};
pub use error::{Result, StorageError};
pub use schema::{ColumnDef, Schema};
pub use table::Table;
pub use types::{DataType, Oid};
pub use value::{Row, Value};
pub use vector::{Segment, Vector};
