//! Scalar values exchanged at the system boundary.
//!
//! Inside the kernel everything is columnar; `Value` only appears when rows
//! enter (receptors, `INSERT`) or leave (emitters, result sets) the engine,
//! and in constant expressions of query plans.

use std::cmp::Ordering;
use std::fmt;

use crate::types::DataType;

/// A single scalar value, possibly NULL.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL (untyped; adopts the column type on insert).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Microseconds since epoch.
    Timestamp(i64),
}

impl Value {
    /// The type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this value can be stored in a column of type `ty`
    /// (NULL fits everywhere; Int coerces into Float and Timestamp).
    pub fn fits(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Bool(_), DataType::Bool)
                | (Value::Int(_), DataType::Int)
                | (Value::Int(_), DataType::Float)
                | (Value::Int(_), DataType::Timestamp)
                | (Value::Float(_), DataType::Float)
                | (Value::Str(_), DataType::Str)
                | (Value::Timestamp(_), DataType::Timestamp)
        )
    }

    /// Coerce this value to exactly `ty`, applying the implicit casts
    /// accepted by [`Value::fits`]. Returns `None` when the cast is invalid.
    pub fn coerce(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Bool(b), DataType::Bool) => Some(Value::Bool(*b)),
            (Value::Int(i), DataType::Int) => Some(Value::Int(*i)),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Int(i), DataType::Timestamp) => Some(Value::Timestamp(*i)),
            (Value::Float(x), DataType::Float) => Some(Value::Float(*x)),
            // Checked: `as i64` would saturate NaN/±inf/out-of-range to
            // i64::MIN/MAX silently; those casts are rejected instead.
            // Both bounds are exactly representable as f64.
            #[allow(clippy::manual_range_contains)]
            (Value::Float(x), DataType::Int)
                if x.is_finite() && *x >= -9_223_372_036_854_775_808.0 && *x < 9_223_372_036_854_775_808.0 =>
            {
                Some(Value::Int(*x as i64))
            }
            (Value::Str(s), DataType::Str) => Some(Value::Str(s.clone())),
            (Value::Timestamp(t), DataType::Timestamp) => Some(Value::Timestamp(*t)),
            (Value::Timestamp(t), DataType::Int) => Some(Value::Int(*t)),
            _ => None,
        }
    }

    /// Extract an `i64`, if this is an Int or Timestamp.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) | Value::Timestamp(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract an `f64`, widening Int if necessary.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) | Value::Timestamp(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison. NULL compares as `None` (unknown); mixed numeric
    /// types compare by value; incompatible types also return `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Int(a), Timestamp(b)) | (Timestamp(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) | (Timestamp(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) | (Float(a), Timestamp(b)) => a.partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.as_str().cmp(b.as_str())),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            // `{:?}` is shortest-round-trip and always keeps a '.' or 'e'
            // marker, so text decode can't type-flip a Float into an Int
            // (plain `{}` prints 1e15 as "1000000000000000").
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A row of values, used at ingest/egress boundaries.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_values() {
        assert_eq!(Value::Int(3).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Str("x".into()).data_type(), Some(DataType::Str));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).coerce(DataType::Float), Some(Value::Float(3.0)));
        assert_eq!(Value::Int(3).coerce(DataType::Timestamp), Some(Value::Timestamp(3)));
        assert_eq!(Value::Float(2.9).coerce(DataType::Int), Some(Value::Int(2)));
        assert_eq!(Value::Str("a".into()).coerce(DataType::Int), None);
        assert_eq!(Value::Null.coerce(DataType::Str), Some(Value::Null));
    }

    #[test]
    fn float_to_int_coercion_is_checked() {
        assert_eq!(Value::Float(f64::NAN).coerce(DataType::Int), None);
        assert_eq!(Value::Float(f64::INFINITY).coerce(DataType::Int), None);
        assert_eq!(Value::Float(f64::NEG_INFINITY).coerce(DataType::Int), None);
        // 2^63 is the first float past i64::MAX; -2^63 is exactly i64::MIN.
        assert_eq!(Value::Float(9_223_372_036_854_775_808.0).coerce(DataType::Int), None);
        assert_eq!(
            Value::Float(-9_223_372_036_854_775_808.0).coerce(DataType::Int),
            Some(Value::Int(i64::MIN))
        );
        assert_eq!(Value::Float(1e300).coerce(DataType::Int), None);
        assert_eq!(Value::Float(-0.0).coerce(DataType::Int), Some(Value::Int(0)));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_numeric_comparisons() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(3.0).sql_cmp(&Value::Int(3)), Some(Ordering::Equal));
        assert_eq!(
            Value::Timestamp(10).sql_cmp(&Value::Int(9)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incompatible_comparisons() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Timestamp(5).to_string(), "@5");
    }

    #[test]
    fn float_display_is_round_trip_exact() {
        // Every spelling must re-parse to the identical bit pattern, and must
        // keep a '.' or 'e' so the text protocol can't type-flip it to Int.
        for x in [
            0.1f64 + 0.2,
            -0.0,
            1e15,
            1e16,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
            f64::MAX,
        ] {
            let s = Value::Float(x).to_string();
            assert!(
                s.contains('.') || s.contains('e') || s.contains("inf"),
                "ambiguous float spelling {s:?}"
            );
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "round-trip of {s:?}");
        }
        assert_eq!(Value::Float(-0.0).to_string(), "-0.0");
    }
}
