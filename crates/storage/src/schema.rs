//! Relational schemas: ordered, named, typed column lists.

use crate::error::{Result, StorageError};
use crate::types::DataType;
use crate::value::{Row, Value};

/// Definition of one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-preserving, matched case-insensitively).
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// Whether NULLs are rejected on insert.
    pub not_null: bool,
}

impl ColumnDef {
    /// A nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef { name: name.into(), ty, not_null: false }
    }

    /// A NOT NULL column.
    pub fn not_null(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef { name: name.into(), ty, not_null: true }
    }
}

/// An ordered list of column definitions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema from column definitions.
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    /// Shorthand: schema from `(name, type)` pairs, all nullable.
    pub fn of(cols: &[(&str, DataType)]) -> Self {
        Schema {
            columns: cols.iter().map(|(n, t)| ColumnDef::new(*n, *t)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All column definitions in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Position of `name` (case-insensitive), or an error.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| StorageError::UnknownColumn(name.to_owned()))
    }

    /// Column definition for `name`.
    pub fn column(&self, name: &str) -> Result<&ColumnDef> {
        self.index_of(name).map(|i| &self.columns[i])
    }

    /// Column definition at position `i`.
    pub fn column_at(&self, i: usize) -> &ColumnDef {
        &self.columns[i]
    }

    /// Check a row against arity, types (with implicit casts) and NOT NULL.
    pub fn validate_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                found: row.len(),
            });
        }
        for (value, def) in row.iter().zip(&self.columns) {
            if value.is_null() {
                if def.not_null {
                    return Err(StorageError::NullViolation(def.name.clone()));
                }
                continue;
            }
            if !value.fits(def.ty) {
                return Err(StorageError::TypeMismatch {
                    expected: def.ty,
                    found: value.data_type().unwrap_or(def.ty),
                });
            }
        }
        Ok(())
    }

    /// Columnar analogue of [`validate_row`](Self::validate_row): check a
    /// whole decoded [`Chunk`](crate::chunk::Chunk) against this schema in
    /// O(arity) — exact arity, exact column types (wire decoding already
    /// produced typed columns, so no per-cell coercion applies), and no
    /// NULL slot under a NOT NULL column. Gate for the binary `PUSH`
    /// ingest path, which appends columns wholesale without ever
    /// materializing rows.
    pub fn validate_chunk(&self, chunk: &crate::chunk::Chunk) -> Result<()> {
        if chunk.arity() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                found: chunk.arity(),
            });
        }
        for (col, def) in chunk.columns().iter().zip(&self.columns) {
            if col.data_type() != def.ty {
                return Err(StorageError::TypeMismatch {
                    expected: def.ty,
                    found: col.data_type(),
                });
            }
            if def.not_null && col.has_nulls() {
                return Err(StorageError::NullViolation(def.name.clone()));
            }
        }
        Ok(())
    }

    /// Append another schema's columns (for join output schemas). Columns
    /// from `other` that clash by name get `prefix.` prepended.
    pub fn concat(&self, other: &Schema, prefix: &str) -> Schema {
        let mut columns = self.columns.clone();
        for c in &other.columns {
            let clash = columns.iter().any(|x| x.name.eq_ignore_ascii_case(&c.name));
            let name = if clash { format!("{prefix}.{}", c.name) } else { c.name.clone() };
            columns.push(ColumnDef { name, ty: c.ty, not_null: c.not_null });
        }
        Schema { columns }
    }
}

impl std::fmt::Display for Schema {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.ty)?;
            if c.not_null {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

/// Validate many rows at once; reports the first offending row index.
pub fn validate_rows(schema: &Schema, rows: &[Row]) -> Result<()> {
    for row in rows {
        schema.validate_row(row)?;
    }
    Ok(())
}

/// Helper used by validation paths that need a typed NULL check.
pub fn value_matches(def: &ColumnDef, v: &Value) -> bool {
    if v.is_null() {
        !def.not_null
    } else {
        v.fits(def.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("temp", DataType::Float),
            ColumnDef::new("tag", DataType::Str),
        ])
    }

    #[test]
    fn index_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID").unwrap(), 0);
        assert_eq!(s.index_of("Temp").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn validate_accepts_good_row() {
        let s = schema();
        s.validate_row(&vec![Value::Int(1), Value::Float(2.5), Value::Str("a".into())])
            .unwrap();
        // int→float coercion allowed
        s.validate_row(&vec![Value::Int(1), Value::Int(2), Value::Null]).unwrap();
    }

    #[test]
    fn validate_rejects_arity() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&vec![Value::Int(1)]),
            Err(StorageError::ArityMismatch { expected: 3, found: 1 })
        ));
    }

    #[test]
    fn validate_rejects_null_in_not_null() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&vec![Value::Null, Value::Null, Value::Null]),
            Err(StorageError::NullViolation(_))
        ));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let s = schema();
        assert!(matches!(
            s.validate_row(&vec![Value::Str("x".into()), Value::Null, Value::Null]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn concat_prefixes_clashes() {
        let a = Schema::of(&[("id", DataType::Int), ("v", DataType::Float)]);
        let b = Schema::of(&[("id", DataType::Int), ("w", DataType::Float)]);
        let j = a.concat(&b, "r");
        assert_eq!(j.arity(), 4);
        assert_eq!(j.column_at(2).name, "r.id");
        assert_eq!(j.column_at(3).name, "w");
    }

    #[test]
    fn display_renders_sql() {
        let s = Schema::of(&[("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a BIGINT)");
    }
}
