//! Typed column vectors — the tails of BATs — as zero-copy views over
//! Arc-shared immutable segments.
//!
//! A [`Vector`] is a homogeneous array of one [`DataType`]. All kernel
//! operators work directly on these arrays in a bulk, column-at-a-time
//! fashion (MonetDB's "bulk processing model"): a whole vector is consumed
//! per operator call, never one tuple at a time.
//!
//! # View semantics
//!
//! Since PR 4 a vector is a [`Segment`]: an `(offset, len)` window over an
//! `Arc<Vec<T>>` buffer. This is what makes DataCell's stream windows cheap
//! the same way MonetDB's BAT slices are: [`Vector::slice`] is an O(1)
//! refcount bump, never an element copy, so every sliding-window fire reuses
//! the basket's physical storage instead of re-materializing the window.
//! Mutation is copy-on-write: appends take the in-place fast path when the
//! segment uniquely owns the tail of its buffer (the common case for
//! append-only baskets) and copy the window out otherwise, so live views
//! held by factories or emitters are never invalidated.

use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::types::DataType;
use crate::value::{Row, Value};

/// An `(offset, len)` window over an `Arc`-shared buffer.
///
/// Cloning and [`Segment::slice`] are O(1); mutation is copy-on-write.
/// Derefs to the window slice, so all `&[T]` reads go through the view
/// offset automatically.
#[derive(Debug, Clone)]
pub struct Segment<T> {
    buf: Arc<Vec<T>>,
    off: usize,
    len: usize,
}

impl<T> Default for Segment<T> {
    fn default() -> Self {
        Segment::new()
    }
}

impl<T> Segment<T> {
    /// An empty segment.
    pub fn new() -> Self {
        Segment { buf: Arc::new(Vec::new()), off: 0, len: 0 }
    }

    /// An empty segment whose buffer pre-reserves `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Segment { buf: Arc::new(Vec::with_capacity(cap)), off: 0, len: 0 }
    }

    /// Take ownership of a buffer (whole-buffer window).
    pub fn from_vec(v: Vec<T>) -> Self {
        let len = v.len();
        Segment { buf: Arc::new(v), off: 0, len }
    }

    /// Number of elements in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The window as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[self.off..self.off + self.len]
    }

    /// O(1) sub-window `[lo, hi)` of this window: shares the buffer,
    /// bumps the refcount.
    ///
    /// # Panics
    /// Panics if `hi > len` or `lo > hi`.
    pub fn slice(&self, lo: usize, hi: usize) -> Segment<T> {
        assert!(lo <= hi && hi <= self.len, "slice [{lo}, {hi}) out of range 0..{}", self.len);
        Segment { buf: self.buf.clone(), off: self.off + lo, len: hi - lo }
    }

    /// True iff this segment shares its buffer with at least one other
    /// segment (a clone, a slice, or the owner it was sliced from).
    pub fn is_shared(&self) -> bool {
        Arc::strong_count(&self.buf) > 1
    }

    /// True iff the window covers only part of the backing buffer.
    pub fn is_view(&self) -> bool {
        self.off != 0 || self.len != self.buf.len()
    }

    /// Elements physically held by the backing buffer (≥ `len`).
    pub fn buffer_len(&self) -> usize {
        self.buf.len()
    }

    /// True iff `self` and `other` are windows over the same buffer.
    pub fn shares_buffer_with(&self, other: &Segment<T>) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// Drop the first `n` window elements. When the buffer is uniquely
    /// owned the dead prefix (including any prior offset) is physically
    /// reclaimed; when shared, only the offset advances — live views keep
    /// the buffer alive and stay valid.
    pub fn drop_front(&mut self, n: usize) {
        let n = n.min(self.len);
        if n == 0 {
            return;
        }
        if let Some(v) = Arc::get_mut(&mut self.buf) {
            v.drain(..self.off + n);
            self.off = 0;
        } else {
            self.off += n;
        }
        self.len -= n;
    }

    /// Empty the window. A uniquely owned buffer keeps its allocation
    /// (workhorse reuse); a shared one is released to its other holders.
    pub fn clear(&mut self) {
        if let Some(v) = Arc::get_mut(&mut self.buf) {
            v.clear();
        } else {
            self.buf = Arc::new(Vec::new());
        }
        self.off = 0;
        self.len = 0;
    }
}

impl<T: Clone> Segment<T> {
    /// Make the buffer uniquely owned with the window tail-aligned so
    /// in-place appends are safe, copying the window out if the buffer is
    /// shared or the window does not end at the buffer's end. Returns the
    /// now-exclusive buffer with at least `reserve` spare capacity.
    fn tail_mut(&mut self, reserve: usize) -> &mut Vec<T> {
        let aligned = self.off + self.len == self.buf.len();
        if !aligned || Arc::get_mut(&mut self.buf).is_none() {
            let mut v = Vec::with_capacity(self.len + reserve);
            v.extend_from_slice(self.as_slice());
            self.buf = Arc::new(v);
            self.off = 0;
        }
        // The branch above guaranteed unique ownership, so make_mut never
        // actually clones; if that invariant ever broke, cloning is the
        // correct recovery rather than aborting the engine.
        let v = Arc::make_mut(&mut self.buf);
        v.reserve(reserve);
        v
    }

    /// Append one element (copy-on-write).
    pub fn push(&mut self, value: T) {
        self.tail_mut(1).push(value);
        self.len += 1;
    }

    /// Append a slice of elements (copy-on-write; empty appends are free).
    pub fn extend_from_slice(&mut self, values: &[T]) {
        if values.is_empty() {
            return;
        }
        self.tail_mut(values.len()).extend_from_slice(values);
        self.len += values.len();
    }

    /// Append the results of `f(0..n)` (copy-on-write, bulk reservation;
    /// empty appends are free).
    pub fn extend_with(&mut self, n: usize, mut f: impl FnMut(usize) -> T) {
        if n == 0 {
            return;
        }
        let v = self.tail_mut(n);
        for i in 0..n {
            v.push(f(i));
        }
        self.len += n;
    }

    /// Shrink the window from the back to `new_len` elements, physically
    /// truncating when uniquely owned (append rollback).
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        if let Some(v) = Arc::get_mut(&mut self.buf) {
            v.truncate(self.off + new_len);
        }
        self.len = new_len;
    }

    /// Copy the window into a fresh, uniquely owned buffer, detaching from
    /// any shared storage. Call before retaining a segment across scheduler
    /// passes so the source basket's append fast path stays available.
    pub fn compact(&mut self) {
        if self.is_shared() || self.is_view() {
            self.buf = Arc::new(self.as_slice().to_vec());
            self.off = 0;
        }
    }
}

impl<T> std::ops::Deref for Segment<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: PartialEq> PartialEq for Segment<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T> From<Vec<T>> for Segment<T> {
    fn from(v: Vec<T>) -> Self {
        Segment::from_vec(v)
    }
}

/// A typed column of values without NULL information.
///
/// NULL-ness is tracked separately by [`crate::bat::Bat`] via an optional
/// validity segment, so the common all-valid case pays nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum Vector {
    /// Boolean column.
    Bool(Segment<bool>),
    /// Integer column.
    Int(Segment<i64>),
    /// Float column.
    Float(Segment<f64>),
    /// String column.
    Str(Segment<String>),
    /// Timestamp column (microseconds).
    Timestamp(Segment<i64>),
}

impl Vector {
    /// An empty vector of type `ty`.
    pub fn new(ty: DataType) -> Self {
        Self::with_capacity(ty, 0)
    }

    /// An empty vector of type `ty` with pre-reserved capacity.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        match ty {
            DataType::Bool => Vector::Bool(Segment::with_capacity(cap)),
            DataType::Int => Vector::Int(Segment::with_capacity(cap)),
            DataType::Float => Vector::Float(Segment::with_capacity(cap)),
            DataType::Str => Vector::Str(Segment::with_capacity(cap)),
            DataType::Timestamp => Vector::Timestamp(Segment::with_capacity(cap)),
        }
    }

    /// The vector's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Vector::Bool(_) => DataType::Bool,
            Vector::Int(_) => DataType::Int,
            Vector::Float(_) => DataType::Float,
            Vector::Str(_) => DataType::Str,
            Vector::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Vector::Bool(v) => v.len(),
            Vector::Int(v) => v.len(),
            Vector::Float(v) => v.len(),
            Vector::Str(v) => v.len(),
            Vector::Timestamp(v) => v.len(),
        }
    }

    /// True iff the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch element `i` as a [`Value`] (ignores validity; see `Bat::get`).
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Vector::Bool(v) => Value::Bool(v[i]),
            Vector::Int(v) => Value::Int(v[i]),
            Vector::Float(v) => Value::Float(v[i]),
            Vector::Str(v) => Value::Str(v[i].clone()),
            Vector::Timestamp(v) => Value::Timestamp(v[i]),
        }
    }

    /// Append a value, coercing per [`Value::coerce`]. NULLs are stored as
    /// the type's zero value; the caller records validity separately.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        let ty = self.data_type();
        let coerced = value
            .coerce(ty)
            .ok_or_else(|| StorageError::TypeMismatch {
                expected: ty,
                found: value.data_type().unwrap_or(ty),
            })?;
        match (self, coerced) {
            (Vector::Bool(v), Value::Bool(b)) => v.push(b),
            (Vector::Bool(v), Value::Null) => v.push(false),
            (Vector::Int(v), Value::Int(i)) => v.push(i),
            (Vector::Int(v), Value::Null) => v.push(0),
            (Vector::Float(v), Value::Float(x)) => v.push(x),
            (Vector::Float(v), Value::Null) => v.push(0.0),
            (Vector::Str(v), Value::Str(s)) => v.push(s),
            (Vector::Str(v), Value::Null) => v.push(String::new()),
            (Vector::Timestamp(v), Value::Timestamp(t)) => v.push(t),
            (Vector::Timestamp(v), Value::Null) => v.push(0),
            // coerce() returning a foreign variant would be a bug in
            // Value::coerce — degrade to an error, not an abort.
            (_, other) => {
                return Err(StorageError::TypeMismatch {
                    expected: ty,
                    found: other.data_type().unwrap_or(ty),
                })
            }
        }
        Ok(())
    }

    /// Append column `col` of every row in one pass (bulk columnar append:
    /// one ownership acquisition and one reservation for the whole batch).
    /// On a coercion error the vector is rolled back to its prior length.
    pub fn extend_from_rows(&mut self, rows: &[Row], col: usize) -> Result<()> {
        if rows.is_empty() {
            return Ok(());
        }
        let ty = self.data_type();
        let before = self.len();
        macro_rules! bulk {
            ($seg:expr, $variant:path, $null:expr) => {{
                let seg = $seg;
                let buf = seg.tail_mut(rows.len());
                let mut err = None;
                let mut pushed = 0usize;
                for row in rows {
                    let value = &row[col];
                    match value.coerce(ty) {
                        Some($variant(x)) => buf.push(x),
                        Some(Value::Null) => buf.push($null),
                        _ => {
                            err = Some(StorageError::TypeMismatch {
                                expected: ty,
                                found: value.data_type().unwrap_or(ty),
                            });
                            break;
                        }
                    }
                    pushed += 1;
                }
                seg.len += pushed;
                match err {
                    Some(e) => {
                        seg.truncate(before);
                        Err(e)
                    }
                    None => Ok(()),
                }
            }};
        }
        match self {
            Vector::Bool(v) => bulk!(v, Value::Bool, false),
            Vector::Int(v) => bulk!(v, Value::Int, 0),
            Vector::Float(v) => bulk!(v, Value::Float, 0.0),
            Vector::Str(v) => bulk!(v, Value::Str, String::new()),
            Vector::Timestamp(v) => bulk!(v, Value::Timestamp, 0),
        }
    }

    /// Append all elements of `other` (must have the same type).
    pub fn append(&mut self, other: &Vector) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(StorageError::TypeMismatch {
                expected: self.data_type(),
                found: other.data_type(),
            });
        }
        match (self, other) {
            (Vector::Bool(a), Vector::Bool(b)) => a.extend_from_slice(b),
            (Vector::Int(a), Vector::Int(b)) => a.extend_from_slice(b),
            (Vector::Float(a), Vector::Float(b)) => a.extend_from_slice(b),
            (Vector::Str(a), Vector::Str(b)) => a.extend_from_slice(b),
            (Vector::Timestamp(a), Vector::Timestamp(b)) => a.extend_from_slice(b),
            // The data_type() guard above makes this arm unreachable, but
            // an error beats an abort if the variants ever diverge.
            (a, b) => {
                return Err(StorageError::TypeMismatch {
                    expected: a.data_type(),
                    found: b.data_type(),
                })
            }
        }
        Ok(())
    }

    /// Gather elements at `indices` into a new vector (bulk fetch).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Vector {
        match self {
            Vector::Bool(v) => {
                Vector::Bool(indices.iter().map(|&i| v[i]).collect::<Vec<_>>().into())
            }
            Vector::Int(v) => {
                Vector::Int(indices.iter().map(|&i| v[i]).collect::<Vec<_>>().into())
            }
            Vector::Float(v) => {
                Vector::Float(indices.iter().map(|&i| v[i]).collect::<Vec<_>>().into())
            }
            Vector::Str(v) => {
                Vector::Str(indices.iter().map(|&i| v[i].clone()).collect::<Vec<_>>().into())
            }
            Vector::Timestamp(v) => {
                Vector::Timestamp(indices.iter().map(|&i| v[i]).collect::<Vec<_>>().into())
            }
        }
    }

    /// The view `[lo, hi)` of this vector: O(1), shares the buffer for all
    /// five data types — no element is copied.
    ///
    /// # Panics
    /// Panics if `hi > len` or `lo > hi`.
    pub fn slice(&self, lo: usize, hi: usize) -> Vector {
        match self {
            Vector::Bool(v) => Vector::Bool(v.slice(lo, hi)),
            Vector::Int(v) => Vector::Int(v.slice(lo, hi)),
            Vector::Float(v) => Vector::Float(v.slice(lo, hi)),
            Vector::Str(v) => Vector::Str(v.slice(lo, hi)),
            Vector::Timestamp(v) => Vector::Timestamp(v.slice(lo, hi)),
        }
    }

    /// Drop the first `n` elements (basket retirement fast path): physical
    /// reclaim when uniquely owned, O(1) offset advance when views are live.
    pub fn drop_front(&mut self, n: usize) {
        match self {
            Vector::Bool(v) => v.drop_front(n),
            Vector::Int(v) => v.drop_front(n),
            Vector::Float(v) => v.drop_front(n),
            Vector::Str(v) => v.drop_front(n),
            Vector::Timestamp(v) => v.drop_front(n),
        }
    }

    /// Remove all elements, keeping the allocation when uniquely owned.
    pub fn clear(&mut self) {
        match self {
            Vector::Bool(v) => v.clear(),
            Vector::Int(v) => v.clear(),
            Vector::Float(v) => v.clear(),
            Vector::Str(v) => v.clear(),
            Vector::Timestamp(v) => v.clear(),
        }
    }

    /// Detach from shared storage: copy the window into a fresh, uniquely
    /// owned buffer (no-op for an unshared whole-buffer segment). Use
    /// before retaining a vector across scheduler passes.
    pub fn compact(&mut self) {
        match self {
            Vector::Bool(v) => v.compact(),
            Vector::Int(v) => v.compact(),
            Vector::Float(v) => v.compact(),
            Vector::Str(v) => v.compact(),
            Vector::Timestamp(v) => v.compact(),
        }
    }

    /// True iff this vector windows only part of its backing buffer.
    pub fn is_view(&self) -> bool {
        match self {
            Vector::Bool(v) => v.is_view(),
            Vector::Int(v) => v.is_view(),
            Vector::Float(v) => v.is_view(),
            Vector::Str(v) => v.is_view(),
            Vector::Timestamp(v) => v.is_view(),
        }
    }

    /// True iff the backing buffer is shared with another vector.
    pub fn is_shared(&self) -> bool {
        match self {
            Vector::Bool(v) => v.is_shared(),
            Vector::Int(v) => v.is_shared(),
            Vector::Float(v) => v.is_shared(),
            Vector::Str(v) => v.is_shared(),
            Vector::Timestamp(v) => v.is_shared(),
        }
    }

    /// True iff `self` and `other` window the same physical buffer (the
    /// O(1)-slice aliasing check).
    pub fn shares_buffer_with(&self, other: &Vector) -> bool {
        match (self, other) {
            (Vector::Bool(a), Vector::Bool(b)) => a.shares_buffer_with(b),
            (Vector::Int(a), Vector::Int(b)) => a.shares_buffer_with(b),
            (Vector::Float(a), Vector::Float(b)) => a.shares_buffer_with(b),
            (Vector::Str(a), Vector::Str(b)) => a.shares_buffer_with(b),
            (Vector::Timestamp(a), Vector::Timestamp(b)) => a.shares_buffer_with(b),
            _ => false,
        }
    }

    /// Borrow as `&[i64]` (Int or Timestamp), or `None`. Reads through the
    /// view offset: element `i` of the slice is element `i` of the window.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            Vector::Int(v) | Vector::Timestamp(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[f64]`, or `None`.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            Vector::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[bool]`, or `None`.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match self {
            Vector::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[String]`, or `None`.
    pub fn as_strs(&self) -> Option<&[String]> {
        match self {
            Vector::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate heap footprint of the *window* in bytes. A view reports
    /// only its window; a whole-buffer owner's window *is* the buffer, so a
    /// segment shared between an owner and views is counted once (by the
    /// owner). See [`Vector::buffer_byte_size`] for the physical buffer.
    pub fn byte_size(&self) -> usize {
        match self {
            Vector::Bool(v) => v.len(),
            Vector::Int(v) | Vector::Timestamp(v) => v.len() * 8,
            Vector::Float(v) => v.len() * 8,
            Vector::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }

    /// Approximate heap footprint of the whole backing buffer, including
    /// any retired-but-unreclaimed prefix pinned by live views.
    pub fn buffer_byte_size(&self) -> usize {
        match self {
            Vector::Bool(v) => v.buffer_len(),
            Vector::Int(v) | Vector::Timestamp(v) => v.buffer_len() * 8,
            Vector::Float(v) => v.buffer_len() * 8,
            Vector::Str(v) => v.buf.iter().map(|s| s.len() + 24).sum(),
        }
    }
}

/// Build a Vector directly from typed Rust data (test/workload helper).
impl From<Vec<i64>> for Vector {
    fn from(v: Vec<i64>) -> Self {
        Vector::Int(v.into())
    }
}
impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector::Float(v.into())
    }
}
impl From<Vec<bool>> for Vector {
    fn from(v: Vec<bool>) -> Self {
        Vector::Bool(v.into())
    }
}
impl From<Vec<String>> for Vector {
    fn from(v: Vec<String>) -> Self {
        Vector::Str(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut v = Vector::new(DataType::Int);
        v.push(&Value::Int(1)).unwrap();
        v.push(&Value::Int(-5)).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), Value::Int(1));
        assert_eq!(v.get(1), Value::Int(-5));
    }

    #[test]
    fn push_coerces_int_to_float() {
        let mut v = Vector::new(DataType::Float);
        v.push(&Value::Int(2)).unwrap();
        assert_eq!(v.get(0), Value::Float(2.0));
    }

    #[test]
    fn push_rejects_wrong_type() {
        let mut v = Vector::new(DataType::Int);
        let err = v.push(&Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn null_stored_as_zero_value() {
        let mut v = Vector::new(DataType::Int);
        v.push(&Value::Null).unwrap();
        assert_eq!(v.get(0), Value::Int(0));
    }

    #[test]
    fn gather_selects_by_index() {
        let v: Vector = vec![10i64, 20, 30, 40].into();
        let g = v.gather(&[3, 1]);
        assert_eq!(g.get(0), Value::Int(40));
        assert_eq!(g.get(1), Value::Int(20));
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        // Replaces the old `slice_copies_range`: a slice is an O(1) aliased
        // window of the same buffer, for every data type.
        let cases: Vec<Vector> = vec![
            vec![1i64, 2, 3, 4, 5].into(),
            vec![1.0f64, 2.0, 3.0, 4.0, 5.0].into(),
            vec![true, false, true, false, true].into(),
            vec!["a".to_string(), "b".into(), "c".into(), "d".into(), "e".into()].into(),
            Vector::Timestamp(vec![1i64, 2, 3, 4, 5].into()),
        ];
        for v in cases {
            let s = v.slice(1, 4);
            assert_eq!(s.len(), 3, "{:?}", v.data_type());
            assert_eq!(s.get(0), v.get(1));
            assert_eq!(s.get(2), v.get(3));
            assert!(s.shares_buffer_with(&v), "slice must alias, not copy");
            assert!(s.is_view());
            assert!(v.is_shared() && s.is_shared());
        }
    }

    #[test]
    fn slice_of_slice_composes_offsets() {
        let v: Vector = (0..10i64).collect::<Vec<_>>().into();
        let a = v.slice(2, 9);
        let b = a.slice(3, 6);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(0), Value::Int(5));
        assert!(b.shares_buffer_with(&v));
    }

    #[test]
    fn append_to_shared_buffer_copies_on_write() {
        let mut v: Vector = vec![1i64, 2, 3].into();
        let view = v.slice(0, 2);
        v.push(&Value::Int(4)).unwrap();
        // The view still sees its original window, untouched.
        assert_eq!(view.len(), 2);
        assert_eq!(view.get(1), Value::Int(2));
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(3), Value::Int(4));
        // Write went to a fresh buffer: the two no longer alias.
        assert!(!v.shares_buffer_with(&view));
    }

    #[test]
    fn append_unique_takes_in_place_fast_path() {
        let mut v: Vector = vec![1i64, 2].into();
        let before = match &v {
            Vector::Int(s) => Arc::as_ptr(&s.buf),
            _ => unreachable!(),
        };
        v.push(&Value::Int(3)).unwrap();
        let after = match &v {
            Vector::Int(s) => Arc::as_ptr(&s.buf),
            _ => unreachable!(),
        };
        assert_eq!(before, after, "unique append must not reallocate the Arc");
    }

    #[test]
    fn drop_front_on_shared_buffer_keeps_views_valid() {
        let mut v: Vector = vec![1i64, 2, 3, 4].into();
        let view = v.slice(0, 4);
        v.drop_front(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), Value::Int(3));
        // Shared: offset advanced, buffer intact, view unaffected.
        assert!(v.shares_buffer_with(&view));
        assert_eq!(view.get(0), Value::Int(1));
        // Once the view dies, the next drop_front physically reclaims.
        drop(view);
        v.drop_front(1);
        assert!(!v.is_view(), "unique drop_front compacts the dead prefix");
        assert_eq!(v.get(0), Value::Int(4));
    }

    #[test]
    fn drop_front_retires_prefix() {
        let mut v: Vector = vec![1i64, 2, 3, 4].into();
        v.drop_front(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), Value::Int(3));
        // dropping more than len is a no-op beyond emptying
        v.drop_front(10);
        assert!(v.is_empty());
    }

    #[test]
    fn append_same_type() {
        let mut a: Vector = vec![1i64].into();
        let b: Vector = vec![2i64, 3].into();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn append_type_mismatch_fails() {
        let mut a: Vector = vec![1i64].into();
        let b: Vector = vec![1.0f64].into();
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn compact_detaches_from_shared_buffer() {
        let v: Vector = vec![1i64, 2, 3, 4].into();
        let mut s = v.slice(1, 3);
        s.compact();
        assert!(!s.shares_buffer_with(&v));
        assert!(!s.is_view());
        assert_eq!(s.get(0), Value::Int(2));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn extend_from_rows_bulk_append() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Float(0.5)],
            vec![Value::Null, Value::Float(1.5)],
            vec![Value::Int(3), Value::Int(2)],
        ];
        let mut ints = Vector::new(DataType::Int);
        ints.extend_from_rows(&rows, 0).unwrap();
        assert_eq!(ints.as_ints().unwrap(), &[1, 0, 3]);
        let mut floats = Vector::new(DataType::Float);
        floats.extend_from_rows(&rows, 1).unwrap();
        assert_eq!(floats.as_floats().unwrap(), &[0.5, 1.5, 2.0]);
    }

    #[test]
    fn extend_from_rows_rolls_back_on_error() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1)],
            vec![Value::Str("boom".into())],
            vec![Value::Int(3)],
        ];
        let mut v: Vector = vec![9i64].into();
        assert!(v.extend_from_rows(&rows, 0).is_err());
        assert_eq!(v.as_ints().unwrap(), &[9], "partial batch must roll back");
    }

    #[test]
    fn byte_size_scales_with_len() {
        let v: Vector = vec![0i64; 100].into();
        assert_eq!(v.byte_size(), 800);
    }

    #[test]
    fn view_byte_size_reports_window_owner_reports_buffer() {
        let v: Vector = vec![0i64; 100].into();
        let s = v.slice(10, 20);
        assert_eq!(s.byte_size(), 80, "view reports its window");
        assert_eq!(s.buffer_byte_size(), 800, "buffer size counts the whole segment");
        assert_eq!(v.byte_size(), 800, "whole-buffer owner reports the buffer");
    }
}
