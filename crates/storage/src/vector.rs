//! Typed, contiguous column vectors — the tails of BATs.
//!
//! A [`Vector`] is a homogeneous, densely packed array of one
//! [`DataType`]. All kernel operators work directly on these arrays in a
//! bulk, column-at-a-time fashion (MonetDB's "bulk processing model"):
//! a whole vector is consumed per operator call, never one tuple at a time.

use crate::error::{Result, StorageError};
use crate::types::DataType;
use crate::value::Value;

/// A typed column of values without NULL information.
///
/// NULL-ness is tracked separately by [`crate::bat::Bat`] via an optional
/// validity vector, so the common all-valid case pays nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum Vector {
    /// Boolean column.
    Bool(Vec<bool>),
    /// Integer column.
    Int(Vec<i64>),
    /// Float column.
    Float(Vec<f64>),
    /// String column.
    Str(Vec<String>),
    /// Timestamp column (microseconds).
    Timestamp(Vec<i64>),
}

impl Vector {
    /// An empty vector of type `ty`.
    pub fn new(ty: DataType) -> Self {
        Self::with_capacity(ty, 0)
    }

    /// An empty vector of type `ty` with pre-reserved capacity.
    pub fn with_capacity(ty: DataType, cap: usize) -> Self {
        match ty {
            DataType::Bool => Vector::Bool(Vec::with_capacity(cap)),
            DataType::Int => Vector::Int(Vec::with_capacity(cap)),
            DataType::Float => Vector::Float(Vec::with_capacity(cap)),
            DataType::Str => Vector::Str(Vec::with_capacity(cap)),
            DataType::Timestamp => Vector::Timestamp(Vec::with_capacity(cap)),
        }
    }

    /// The vector's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Vector::Bool(_) => DataType::Bool,
            Vector::Int(_) => DataType::Int,
            Vector::Float(_) => DataType::Float,
            Vector::Str(_) => DataType::Str,
            Vector::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Vector::Bool(v) => v.len(),
            Vector::Int(v) => v.len(),
            Vector::Float(v) => v.len(),
            Vector::Str(v) => v.len(),
            Vector::Timestamp(v) => v.len(),
        }
    }

    /// True iff the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch element `i` as a [`Value`] (ignores validity; see `Bat::get`).
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Value {
        match self {
            Vector::Bool(v) => Value::Bool(v[i]),
            Vector::Int(v) => Value::Int(v[i]),
            Vector::Float(v) => Value::Float(v[i]),
            Vector::Str(v) => Value::Str(v[i].clone()),
            Vector::Timestamp(v) => Value::Timestamp(v[i]),
        }
    }

    /// Append a value, coercing per [`Value::coerce`]. NULLs are stored as
    /// the type's zero value; the caller records validity separately.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        let ty = self.data_type();
        let coerced = value
            .coerce(ty)
            .ok_or_else(|| StorageError::TypeMismatch {
                expected: ty,
                found: value.data_type().unwrap_or(ty),
            })?;
        match (self, coerced) {
            (Vector::Bool(v), Value::Bool(b)) => v.push(b),
            (Vector::Bool(v), Value::Null) => v.push(false),
            (Vector::Int(v), Value::Int(i)) => v.push(i),
            (Vector::Int(v), Value::Null) => v.push(0),
            (Vector::Float(v), Value::Float(x)) => v.push(x),
            (Vector::Float(v), Value::Null) => v.push(0.0),
            (Vector::Str(v), Value::Str(s)) => v.push(s),
            (Vector::Str(v), Value::Null) => v.push(String::new()),
            (Vector::Timestamp(v), Value::Timestamp(t)) => v.push(t),
            (Vector::Timestamp(v), Value::Null) => v.push(0),
            _ => unreachable!("coerce() returned a value of the wrong type"),
        }
        Ok(())
    }

    /// Append all elements of `other` (must have the same type).
    pub fn append(&mut self, other: &Vector) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(StorageError::TypeMismatch {
                expected: self.data_type(),
                found: other.data_type(),
            });
        }
        match (self, other) {
            (Vector::Bool(a), Vector::Bool(b)) => a.extend_from_slice(b),
            (Vector::Int(a), Vector::Int(b)) => a.extend_from_slice(b),
            (Vector::Float(a), Vector::Float(b)) => a.extend_from_slice(b),
            (Vector::Str(a), Vector::Str(b)) => a.extend_from_slice(b),
            (Vector::Timestamp(a), Vector::Timestamp(b)) => a.extend_from_slice(b),
            _ => unreachable!(),
        }
        Ok(())
    }

    /// Gather elements at `indices` into a new vector (bulk fetch).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Vector {
        match self {
            Vector::Bool(v) => Vector::Bool(indices.iter().map(|&i| v[i]).collect()),
            Vector::Int(v) => Vector::Int(indices.iter().map(|&i| v[i]).collect()),
            Vector::Float(v) => Vector::Float(indices.iter().map(|&i| v[i]).collect()),
            Vector::Str(v) => Vector::Str(indices.iter().map(|&i| v[i].clone()).collect()),
            Vector::Timestamp(v) => Vector::Timestamp(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Copy the contiguous range `[lo, hi)` into a new vector.
    ///
    /// # Panics
    /// Panics if `hi > len` or `lo > hi`.
    pub fn slice(&self, lo: usize, hi: usize) -> Vector {
        match self {
            Vector::Bool(v) => Vector::Bool(v[lo..hi].to_vec()),
            Vector::Int(v) => Vector::Int(v[lo..hi].to_vec()),
            Vector::Float(v) => Vector::Float(v[lo..hi].to_vec()),
            Vector::Str(v) => Vector::Str(v[lo..hi].to_vec()),
            Vector::Timestamp(v) => Vector::Timestamp(v[lo..hi].to_vec()),
        }
    }

    /// Drop the first `n` elements in place (basket retirement fast path).
    pub fn drop_front(&mut self, n: usize) {
        match self {
            Vector::Bool(v) => {
                v.drain(..n.min(v.len()));
            }
            Vector::Int(v) => {
                v.drain(..n.min(v.len()));
            }
            Vector::Float(v) => {
                v.drain(..n.min(v.len()));
            }
            Vector::Str(v) => {
                v.drain(..n.min(v.len()));
            }
            Vector::Timestamp(v) => {
                v.drain(..n.min(v.len()));
            }
        }
    }

    /// Remove all elements, keeping the allocation (workhorse reuse).
    pub fn clear(&mut self) {
        match self {
            Vector::Bool(v) => v.clear(),
            Vector::Int(v) => v.clear(),
            Vector::Float(v) => v.clear(),
            Vector::Str(v) => v.clear(),
            Vector::Timestamp(v) => v.clear(),
        }
    }

    /// Borrow as `&[i64]` (Int or Timestamp), or `None`.
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            Vector::Int(v) | Vector::Timestamp(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[f64]`, or `None`.
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            Vector::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[bool]`, or `None`.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match self {
            Vector::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Borrow as `&[String]`, or `None`.
    pub fn as_strs(&self) -> Option<&[String]> {
        match self {
            Vector::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate heap footprint in bytes (used by the monitoring pane).
    pub fn byte_size(&self) -> usize {
        match self {
            Vector::Bool(v) => v.len(),
            Vector::Int(v) | Vector::Timestamp(v) => v.len() * 8,
            Vector::Float(v) => v.len() * 8,
            Vector::Str(v) => v.iter().map(|s| s.len() + 24).sum(),
        }
    }
}

/// Build a Vector directly from typed Rust data (test/workload helper).
impl From<Vec<i64>> for Vector {
    fn from(v: Vec<i64>) -> Self {
        Vector::Int(v)
    }
}
impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector::Float(v)
    }
}
impl From<Vec<bool>> for Vector {
    fn from(v: Vec<bool>) -> Self {
        Vector::Bool(v)
    }
}
impl From<Vec<String>> for Vector {
    fn from(v: Vec<String>) -> Self {
        Vector::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_round_trip() {
        let mut v = Vector::new(DataType::Int);
        v.push(&Value::Int(1)).unwrap();
        v.push(&Value::Int(-5)).unwrap();
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), Value::Int(1));
        assert_eq!(v.get(1), Value::Int(-5));
    }

    #[test]
    fn push_coerces_int_to_float() {
        let mut v = Vector::new(DataType::Float);
        v.push(&Value::Int(2)).unwrap();
        assert_eq!(v.get(0), Value::Float(2.0));
    }

    #[test]
    fn push_rejects_wrong_type() {
        let mut v = Vector::new(DataType::Int);
        let err = v.push(&Value::Str("x".into())).unwrap_err();
        assert!(matches!(err, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn null_stored_as_zero_value() {
        let mut v = Vector::new(DataType::Int);
        v.push(&Value::Null).unwrap();
        assert_eq!(v.get(0), Value::Int(0));
    }

    #[test]
    fn gather_selects_by_index() {
        let v: Vector = vec![10i64, 20, 30, 40].into();
        let g = v.gather(&[3, 1]);
        assert_eq!(g.get(0), Value::Int(40));
        assert_eq!(g.get(1), Value::Int(20));
    }

    #[test]
    fn slice_copies_range() {
        let v: Vector = vec![1i64, 2, 3, 4, 5].into();
        let s = v.slice(1, 4);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), Value::Int(2));
        assert_eq!(s.get(2), Value::Int(4));
    }

    #[test]
    fn drop_front_retires_prefix() {
        let mut v: Vector = vec![1i64, 2, 3, 4].into();
        v.drop_front(2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(0), Value::Int(3));
        // dropping more than len is a no-op beyond emptying
        v.drop_front(10);
        assert!(v.is_empty());
    }

    #[test]
    fn append_same_type() {
        let mut a: Vector = vec![1i64].into();
        let b: Vector = vec![2i64, 3].into();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn append_type_mismatch_fails() {
        let mut a: Vector = vec![1i64].into();
        let b: Vector = vec![1.0f64].into();
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn byte_size_scales_with_len() {
        let v: Vector = vec![0i64; 100].into();
        assert_eq!(v.byte_size(), 800);
    }
}
