//! Error type shared by the storage kernel.

use std::fmt;

use crate::types::DataType;

/// Errors produced by the storage kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operation received a value whose type does not match the column type.
    TypeMismatch {
        /// Type the column or operator expected.
        expected: DataType,
        /// Type actually supplied.
        found: DataType,
    },
    /// A row had a different number of fields than the schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of fields supplied.
        found: usize,
    },
    /// The named column does not exist in the schema.
    UnknownColumn(String),
    /// The named table or stream does not exist in the catalog.
    UnknownTable(String),
    /// An object with this name already exists in the catalog.
    DuplicateName(String),
    /// An OID was outside the BAT's `[oid_base, oid_base + len)` range.
    OidOutOfRange {
        /// The offending OID.
        oid: u64,
        /// First valid OID.
        base: u64,
        /// Number of valid OIDs.
        len: usize,
    },
    /// Columns of one table disagreed on length (internal invariant violation).
    ColumnLengthMismatch {
        /// Length of the first column.
        expected: usize,
        /// Length of the offending column.
        found: usize,
    },
    /// A NULL was supplied for a column declared NOT NULL.
    NullViolation(String),
    /// Serialized data failed to decode (truncated or damaged bytes).
    Corrupt(String),
    /// An I/O error from the durability layer (message-only so the enum
    /// stays `Clone`/`PartialEq`).
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            StorageError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: schema has {expected} columns, row has {found}")
            }
            StorageError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            StorageError::UnknownTable(name) => write!(f, "unknown table or stream: {name}"),
            StorageError::DuplicateName(name) => write!(f, "name already exists: {name}"),
            StorageError::OidOutOfRange { oid, base, len } => {
                write!(f, "oid {oid} out of range [{base}, {})", base + *len as u64)
            }
            StorageError::ColumnLengthMismatch { expected, found } => {
                write!(f, "column length mismatch: expected {expected}, found {found}")
            }
            StorageError::NullViolation(name) => {
                write!(f, "NULL value for NOT NULL column: {name}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
