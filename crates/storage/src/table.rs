//! Persistent relational tables.
//!
//! A table is a named schema plus one BAT per attribute, all sharing one
//! dense OID head. Tables are the "persistent data" side of the paper's two
//! query paradigms; baskets (in `datacell-core`) reuse the same columnar
//! layout but add windowed retirement.

use crate::bat::Bat;
use crate::chunk::Chunk;
use crate::error::{Result, StorageError};
use crate::schema::Schema;
use crate::types::Oid;
use crate::value::Row;

/// A persistent, append-only columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Bat>,
    /// Bumped on every mutation; lets readers cache scan snapshots.
    version: u64,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Bat::new(c.ty))
            .collect();
        Table { name: name.into(), schema, columns, version: 0 }
    }

    /// Version counter: bumped on every mutation (insert/truncate).
    /// Readers can cache `scan()` snapshots keyed by this value.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Bat::len)
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// OID that the next inserted row will receive.
    pub fn next_oid(&self) -> Oid {
        self.columns.first().map_or(0, Bat::oid_end)
    }

    /// Validate and append one row.
    pub fn insert(&mut self, row: &Row) -> Result<Oid> {
        self.schema.validate_row(row)?;
        let oid = self.next_oid();
        for (col, val) in self.columns.iter_mut().zip(row) {
            col.push(val)?;
        }
        self.version += 1;
        Ok(oid)
    }

    /// Validate and append many rows; all-or-nothing per row batch.
    /// Column-at-a-time: one bulk append per column, not one per cell.
    pub fn insert_rows(&mut self, rows: &[Row]) -> Result<usize> {
        for row in rows {
            self.schema.validate_row(row)?;
        }
        for (j, col) in self.columns.iter_mut().enumerate() {
            col.extend_from_rows(rows, j)?;
        }
        self.version += 1;
        Ok(rows.len())
    }

    /// Append a columnar chunk (arity and types must match the schema).
    pub fn insert_chunk(&mut self, chunk: &Chunk) -> Result<usize> {
        if chunk.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                found: chunk.arity(),
            });
        }
        for (col, inc) in self.columns.iter_mut().zip(chunk.columns()) {
            col.append(inc)?;
        }
        self.version += 1;
        Ok(chunk.len())
    }

    /// Borrow column `i`.
    pub fn column(&self, i: usize) -> &Bat {
        &self.columns[i]
    }

    /// Borrow a column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Bat> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Full scan: clone all columns into a chunk. Columns share the table's
    /// OID head, so positional alignment is preserved.
    pub fn scan(&self) -> Chunk {
        // lint:allow(panic-freedom): insert() appends to every column in lockstep, so lengths agree
        Chunk::new(self.columns.clone()).expect("table columns are aligned")
    }

    /// Scan a subset of columns by position.
    pub fn scan_columns(&self, positions: &[usize]) -> Chunk {
        Chunk::new(positions.iter().map(|&i| self.columns[i].clone()).collect())
            // lint:allow(panic-freedom): insert() appends to every column in lockstep, so lengths agree
            .expect("table columns are aligned")
    }

    /// Remove all rows (OIDs keep advancing, as in a DBMS truncate that does
    /// not reset identity).
    pub fn truncate(&mut self) {
        for c in &mut self.columns {
            c.clear();
        }
        self.version += 1;
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Bat::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;
    use crate::value::Value;

    fn table() -> Table {
        Table::new(
            "sensors",
            Schema::new(vec![
                ColumnDef::not_null("id", DataType::Int),
                ColumnDef::new("temp", DataType::Float),
            ]),
        )
    }

    #[test]
    fn insert_assigns_dense_oids() {
        let mut t = table();
        let o1 = t.insert(&vec![Value::Int(1), Value::Float(20.0)]).unwrap();
        let o2 = t.insert(&vec![Value::Int(2), Value::Float(21.0)]).unwrap();
        assert_eq!((o1, o2), (0, 1));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn insert_validates() {
        let mut t = table();
        assert!(t.insert(&vec![Value::Null, Value::Null]).is_err());
        assert!(t.insert(&vec![Value::Int(1)]).is_err());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn batch_insert_validates_before_writing() {
        let mut t = table();
        let rows = vec![
            vec![Value::Int(1), Value::Float(1.0)],
            vec![Value::Null, Value::Null], // violates NOT NULL
        ];
        assert!(t.insert_rows(&rows).is_err());
        assert_eq!(t.len(), 0, "failed batch must not partially apply");
    }

    #[test]
    fn scan_returns_aligned_chunk() {
        let mut t = table();
        t.insert(&vec![Value::Int(1), Value::Float(5.0)]).unwrap();
        t.insert(&vec![Value::Int(2), Value::Float(6.0)]).unwrap();
        let c = t.scan();
        assert_eq!(c.row(1), vec![Value::Int(2), Value::Float(6.0)]);
    }

    #[test]
    fn scan_columns_projects() {
        let mut t = table();
        t.insert(&vec![Value::Int(7), Value::Float(5.0)]).unwrap();
        let c = t.scan_columns(&[1]);
        assert_eq!(c.arity(), 1);
        assert_eq!(c.row(0), vec![Value::Float(5.0)]);
    }

    #[test]
    fn truncate_keeps_oid_progression() {
        let mut t = table();
        t.insert(&vec![Value::Int(1), Value::Null]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        let oid = t.insert(&vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(oid, 1, "truncate must not reuse OIDs");
    }

    #[test]
    fn insert_chunk_appends_columns() {
        let mut t = table();
        let chunk = Chunk::new(vec![
            Bat::from_ints(vec![1, 2]),
            Bat::from_floats(vec![0.1, 0.2]),
        ])
        .unwrap();
        assert_eq!(t.insert_chunk(&chunk).unwrap(), 2);
        assert_eq!(t.len(), 2);
        assert!(t
            .insert_chunk(&Chunk::new(vec![Bat::from_ints(vec![1])]).unwrap())
            .is_err());
    }

    #[test]
    fn column_by_name() {
        let mut t = table();
        t.insert(&vec![Value::Int(9), Value::Float(1.0)]).unwrap();
        assert_eq!(t.column_by_name("TEMP").unwrap().get_at(0), Value::Float(1.0));
        assert!(t.column_by_name("nope").is_err());
    }
}
