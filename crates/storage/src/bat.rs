//! Binary Association Tables — MonetDB's storage primitive.
//!
//! A BAT is logically a two-column table `(head, tail)`. In modern MonetDB
//! (and here) the head is *virtual*: a dense, ascending OID sequence that is
//! fully described by its first value, `oid_base`. The tail is a typed
//! [`Vector`]. Every relational column, every stream basket column, and every
//! intermediate result in the engine is a BAT, which is what lets DataCell
//! "selectively keep around the proper intermediates at the proper places of
//! a plan for efficient future reuse" (paper §3).

use crate::error::{Result, StorageError};
use crate::types::{DataType, Oid};
use crate::value::{Row, Value};
use crate::vector::{Segment, Vector};

/// A BAT: dense virtual-OID head plus typed tail, with optional validity
/// (NULL) information.
///
/// Both the tail and the validity bits are Arc-shared [`Segment`]s, so
/// cloning a BAT and [`Bat::slice_oids`] are O(1) view operations; appends
/// are copy-on-write (see [`crate::vector`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Bat {
    /// OID of the first tuple; tuple `i` has OID `oid_base + i`.
    oid_base: Oid,
    /// Tail values.
    data: Vector,
    /// `Some(v)` iff at least one value is NULL; `v[i] == false` means NULL.
    validity: Option<Segment<bool>>,
}

impl Bat {
    /// An empty BAT of tail type `ty` with head starting at OID 0.
    pub fn new(ty: DataType) -> Self {
        Bat { oid_base: 0, data: Vector::new(ty), validity: None }
    }

    /// An empty BAT of tail type `ty` whose head starts at `oid_base`.
    pub fn with_base(ty: DataType, oid_base: Oid) -> Self {
        Bat { oid_base, data: Vector::new(ty), validity: None }
    }

    /// Wrap an existing vector (all values valid) with head base `oid_base`.
    pub fn from_vector(data: Vector, oid_base: Oid) -> Self {
        Bat { oid_base, data, validity: None }
    }

    /// Wrap a vector with explicit validity. `validity.len()` must equal
    /// `data.len()`; passing `None` means all-valid.
    pub fn from_parts(data: Vector, oid_base: Oid, validity: Option<Vec<bool>>) -> Result<Self> {
        if let Some(v) = &validity {
            if v.len() != data.len() {
                return Err(StorageError::ColumnLengthMismatch {
                    expected: data.len(),
                    found: v.len(),
                });
            }
        }
        // Normalize: an all-true validity vector is dropped.
        let validity = validity
            .filter(|v| v.iter().any(|&b| !b))
            .map(Segment::from_vec);
        Ok(Bat { oid_base, data, validity })
    }

    /// Convenience: BAT of ints based at 0 (tests/workloads).
    pub fn from_ints(values: Vec<i64>) -> Self {
        Bat::from_vector(Vector::Int(values.into()), 0)
    }

    /// Convenience: BAT of floats based at 0.
    pub fn from_floats(values: Vec<f64>) -> Self {
        Bat::from_vector(Vector::Float(values.into()), 0)
    }

    /// Tail type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff the BAT holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// First OID of the (virtual) head.
    pub fn oid_base(&self) -> Oid {
        self.oid_base
    }

    /// One-past-the-last OID.
    pub fn oid_end(&self) -> Oid {
        self.oid_base + self.len() as u64
    }

    /// The raw tail vector.
    pub fn data(&self) -> &Vector {
        &self.data
    }

    /// The validity vector, if any value is NULL.
    pub fn validity(&self) -> Option<&[bool]> {
        self.validity.as_deref()
    }

    /// Whether any value is NULL.
    pub fn has_nulls(&self) -> bool {
        self.validity.is_some()
    }

    /// True iff position `i` holds a NULL.
    #[inline]
    pub fn is_null_at(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v[i])
    }

    /// Value at physical position `i` (NULL-aware).
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get_at(&self, i: usize) -> Value {
        if self.is_null_at(i) {
            Value::Null
        } else {
            self.data.get(i)
        }
    }

    /// Value with OID `oid`, or an error if the OID is outside this BAT.
    pub fn get(&self, oid: Oid) -> Result<Value> {
        let i = self.position_of(oid)?;
        Ok(self.get_at(i))
    }

    /// Physical position of `oid`, or an error if out of range.
    #[inline]
    pub fn position_of(&self, oid: Oid) -> Result<usize> {
        if oid < self.oid_base || oid >= self.oid_end() {
            return Err(StorageError::OidOutOfRange {
                oid,
                base: self.oid_base,
                len: self.len(),
            });
        }
        Ok((oid - self.oid_base) as usize)
    }

    /// Append one value (NULL-aware).
    pub fn push(&mut self, value: &Value) -> Result<()> {
        let was_null = value.is_null();
        self.data.push(value)?;
        match (&mut self.validity, was_null) {
            (Some(v), _) => v.push(!was_null),
            (None, true) => {
                let mut v = vec![true; self.data.len() - 1];
                v.push(false);
                self.validity = Some(Segment::from_vec(v));
            }
            (None, false) => {}
        }
        Ok(())
    }

    /// Bulk columnar append: fold column `col` of every row in, in one
    /// pass (one buffer-ownership acquisition per column instead of one
    /// per cell — the receptor/server PUSH hot path).
    pub fn extend_from_rows(&mut self, rows: &[Row], col: usize) -> Result<()> {
        let old_len = self.data.len();
        self.data.extend_from_rows(rows, col)?;
        let any_null = rows.iter().any(|r| r[col].is_null());
        match (&mut self.validity, any_null) {
            (None, false) => {}
            (Some(v), _) => v.extend_with(rows.len(), |i| !rows[i][col].is_null()),
            (None, true) => {
                let mut v = Segment::with_capacity(old_len + rows.len());
                v.extend_with(old_len, |_| true);
                v.extend_with(rows.len(), |i| !rows[i][col].is_null());
                self.validity = Some(v);
            }
        }
        Ok(())
    }

    /// Append the whole tail of `other` (head bases need not be contiguous;
    /// the result keeps `self`'s base — used for intermediates, not tables).
    pub fn append(&mut self, other: &Bat) -> Result<()> {
        let old_len = self.data.len();
        self.data.append(&other.data)?;
        match (&mut self.validity, &other.validity) {
            (Some(a), Some(b)) => a.extend_from_slice(b),
            (Some(a), None) => a.extend_with(other.len(), |_| true),
            (None, Some(b)) => {
                let mut v = Segment::with_capacity(old_len + b.len());
                v.extend_with(old_len, |_| true);
                v.extend_from_slice(b);
                self.validity = Some(v);
            }
            (None, None) => {}
        }
        Ok(())
    }

    /// The view of the tuples with OIDs in `[lo, hi)` as a new BAT whose
    /// head starts at `lo`. OIDs outside the BAT are clamped. O(1): tail
    /// and validity share the original buffers — no element is copied.
    pub fn slice_oids(&self, lo: Oid, hi: Oid) -> Bat {
        let lo = lo.clamp(self.oid_base, self.oid_end());
        let hi = hi.clamp(lo, self.oid_end());
        let a = (lo - self.oid_base) as usize;
        let b = (hi - self.oid_base) as usize;
        Bat {
            oid_base: lo,
            data: self.data.slice(a, b),
            validity: self.validity.as_ref().map(|v| v.slice(a, b)),
        }
    }

    /// The same view rebased to a new head start (O(1); operator-local
    /// realignment after a dense fetch).
    pub fn rebased(&self, oid_base: Oid) -> Bat {
        Bat { oid_base, data: self.data.clone(), validity: self.validity.clone() }
    }

    /// Drop the validity segment if the window holds no NULL (an O(window)
    /// bool scan). Slicing never scans, so a null-free view of a column
    /// that held a NULL elsewhere carries a spurious all-true validity;
    /// operators call this at a materialization boundary to re-enable the
    /// `has_nulls() == false` typed fast paths downstream.
    pub fn normalize_validity(&mut self) {
        if self.validity.as_ref().is_some_and(|v| v.iter().all(|&b| b)) {
            self.validity = None;
        }
    }

    /// Bulk positional fetch: gather the values at physical `positions` into
    /// a new BAT based at 0 (MonetDB's `algebra.projection`).
    pub fn gather_positions(&self, positions: &[usize]) -> Bat {
        let data = self.data.gather(positions);
        let validity = self
            .validity
            .as_ref()
            .map(|v| positions.iter().map(|&i| v[i]).collect::<Vec<bool>>())
            .filter(|v| v.iter().any(|&b| !b))
            .map(Segment::from_vec);
        Bat { oid_base: 0, data, validity }
    }

    /// Drop the first `n` tuples, advancing `oid_base` by `n`
    /// (basket retirement: "once a tuple has been seen by all relevant
    /// queries it is dropped from its basket").
    pub fn drop_front(&mut self, n: usize) {
        let n = n.min(self.len());
        self.data.drop_front(n);
        if let Some(v) = &mut self.validity {
            v.drop_front(n);
            if v.iter().all(|&b| b) {
                self.validity = None;
            }
        }
        self.oid_base += n as u64;
    }

    /// Remove all tuples, advancing the base past them.
    pub fn clear(&mut self) {
        self.oid_base = self.oid_end();
        self.data.clear();
        self.validity = None;
    }

    /// Iterate `(oid, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, Value)> + '_ {
        (0..self.len()).map(move |i| (self.oid_base + i as u64, self.get_at(i)))
    }

    /// Approximate heap footprint of this BAT's *window* in bytes. Views
    /// report only their window; a whole-buffer owner's window is the
    /// buffer, so shared segments are counted once.
    pub fn byte_size(&self) -> usize {
        self.data.byte_size() + self.validity.as_ref().map_or(0, |v| v.len())
    }

    /// Approximate heap footprint of the backing buffers, including any
    /// retired prefix still pinned by live views.
    pub fn buffer_byte_size(&self) -> usize {
        self.data.buffer_byte_size() + self.validity.as_ref().map_or(0, |v| v.buffer_len())
    }

    /// True iff tail or validity windows only part of its backing buffer.
    pub fn is_view(&self) -> bool {
        self.data.is_view() || self.validity.as_ref().is_some_and(|v| v.is_view())
    }

    /// True iff `self` and `other` window the same physical tail buffer.
    pub fn shares_buffer_with(&self, other: &Bat) -> bool {
        self.data.shares_buffer_with(&other.data)
    }

    /// Detach from shared storage: copy tail and validity windows into
    /// fresh, uniquely owned buffers. Call before retaining a BAT across
    /// scheduler passes so the source basket keeps its append fast path.
    pub fn compact(&mut self) {
        self.data.compact();
        if let Some(v) = &mut self.validity {
            v.compact();
        }
    }

    /// Count of non-NULL values.
    pub fn valid_count(&self) -> usize {
        match &self.validity {
            None => self.len(),
            Some(v) => v.iter().filter(|&&b| b).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_arithmetic() {
        let b = Bat::from_vector(vec![10i64, 20, 30].into(), 100);
        assert_eq!(b.oid_base(), 100);
        assert_eq!(b.oid_end(), 103);
        assert_eq!(b.get(101).unwrap(), Value::Int(20));
        assert!(b.get(103).is_err());
        assert!(b.get(99).is_err());
    }

    #[test]
    fn push_tracks_validity_lazily() {
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Int(1)).unwrap();
        assert!(!b.has_nulls());
        b.push(&Value::Null).unwrap();
        assert!(b.has_nulls());
        b.push(&Value::Int(3)).unwrap();
        assert_eq!(b.get_at(0), Value::Int(1));
        assert_eq!(b.get_at(1), Value::Null);
        assert_eq!(b.get_at(2), Value::Int(3));
        assert_eq!(b.valid_count(), 2);
    }

    #[test]
    fn slice_oids_sets_new_base() {
        let b = Bat::from_vector(vec![1i64, 2, 3, 4, 5].into(), 10);
        let s = b.slice_oids(11, 14);
        assert_eq!(s.oid_base(), 11);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(11).unwrap(), Value::Int(2));
        // clamped slice
        let s2 = b.slice_oids(0, 100);
        assert_eq!(s2.len(), 5);
        assert_eq!(s2.oid_base(), 10);
    }

    #[test]
    fn drop_front_advances_base() {
        let mut b = Bat::from_vector(vec![1i64, 2, 3].into(), 0);
        b.drop_front(2);
        assert_eq!(b.oid_base(), 2);
        assert_eq!(b.get(2).unwrap(), Value::Int(3));
        assert!(b.get(1).is_err());
    }

    #[test]
    fn drop_front_clears_validity_when_all_valid_remain() {
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Null).unwrap();
        b.push(&Value::Int(2)).unwrap();
        assert!(b.has_nulls());
        b.drop_front(1);
        assert!(!b.has_nulls());
    }

    #[test]
    fn append_merges_validity() {
        let mut a = Bat::from_ints(vec![1, 2]);
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Null).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get_at(2), Value::Null);
        assert_eq!(a.get_at(0), Value::Int(1));
    }

    #[test]
    fn gather_positions_rebases_to_zero() {
        let b = Bat::from_vector(vec![5i64, 6, 7].into(), 50);
        let g = b.gather_positions(&[2, 0]);
        assert_eq!(g.oid_base(), 0);
        assert_eq!(g.get_at(0), Value::Int(7));
        assert_eq!(g.get_at(1), Value::Int(5));
    }

    #[test]
    fn from_parts_normalizes_all_true_validity() {
        let b =
            Bat::from_parts(vec![1i64, 2].into(), 0, Some(vec![true, true])).unwrap();
        assert!(!b.has_nulls());
        let b2 =
            Bat::from_parts(vec![1i64, 2].into(), 0, Some(vec![true, false])).unwrap();
        assert!(b2.has_nulls());
    }

    #[test]
    fn from_parts_length_check() {
        let r = Bat::from_parts(vec![1i64, 2].into(), 0, Some(vec![true]));
        assert!(r.is_err());
    }

    #[test]
    fn clear_advances_base_past_end() {
        let mut b = Bat::from_vector(vec![1i64, 2].into(), 7);
        b.clear();
        assert_eq!(b.oid_base(), 9);
        assert!(b.is_empty());
    }

    #[test]
    fn iter_yields_oid_value_pairs() {
        let b = Bat::from_vector(vec![4i64, 5].into(), 2);
        let pairs: Vec<_> = b.iter().collect();
        assert_eq!(pairs, vec![(2, Value::Int(4)), (3, Value::Int(5))]);
    }
}
