//! [`Chunk`]: a batch of equal-length BATs — the unit of data flowing
//! between operators, into factories and out of emitters.
//!
//! A chunk is schema-free by itself (names live in plans); it is just the
//! columnar payload, mirroring how MonetDB's MAL programs pass sets of BATs.

use std::time::Instant;

use crate::bat::Bat;
use crate::error::{Result, StorageError};
use crate::types::Oid;
use crate::value::{Row, Value};

/// Observability side-band: the wall-clock tick at which the newest tuple
/// contributing to this chunk entered a receptor basket.
///
/// The stamp is *equality-transparent* — `PartialEq` always answers `true`
/// — so chunks compare by data alone: recovery-equivalence and socket
/// round-trip suites stay byte-identical whether or not latency tracing is
/// enabled. It is never serialized; the wire and WAL codecs see only the
/// columns.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStamp(Option<Instant>);

impl PartialEq for IngestStamp {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl IngestStamp {
    /// A stamp for a chunk whose tuples entered ingest at `at`.
    pub fn at(at: Instant) -> Self {
        IngestStamp(Some(at))
    }

    /// The recorded ingest tick, if tracing stamped one.
    pub fn instant(&self) -> Option<Instant> {
        self.0
    }

    /// Combine two stamps: keeps the *newest* tick, matching the chunk
    /// semantics — a result chunk is ready only once its newest input
    /// tuple has arrived.
    pub fn merged(self, other: IngestStamp) -> IngestStamp {
        match (self.0, other.0) {
            (Some(a), Some(b)) => IngestStamp(Some(a.max(b))),
            (a, b) => IngestStamp(a.or(b)),
        }
    }
}

/// A set of equal-length columns with aligned (virtual) heads.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Chunk {
    columns: Vec<Bat>,
    stamp: IngestStamp,
}

impl Chunk {
    /// An empty, zero-column chunk.
    pub fn empty() -> Self {
        Chunk { columns: Vec::new(), stamp: IngestStamp::default() }
    }

    /// Build from columns, verifying equal lengths.
    pub fn new(columns: Vec<Bat>) -> Result<Self> {
        if let Some(first) = columns.first() {
            for c in &columns[1..] {
                if c.len() != first.len() {
                    return Err(StorageError::ColumnLengthMismatch {
                        expected: first.len(),
                        found: c.len(),
                    });
                }
            }
        }
        Ok(Chunk { columns, stamp: IngestStamp::default() })
    }

    /// The chunk's ingest stamp (see [`IngestStamp`]).
    pub fn stamp(&self) -> IngestStamp {
        self.stamp
    }

    /// Set the ingest stamp, replacing any prior one.
    pub fn set_stamp(&mut self, stamp: IngestStamp) {
        self.stamp = stamp;
    }

    /// Builder-style [`Chunk::set_stamp`].
    pub fn with_stamp(mut self, stamp: IngestStamp) -> Self {
        self.stamp = stamp;
        self
    }

    /// Number of rows (0 for a zero-column chunk).
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Bat::len)
    }

    /// True iff no rows (also true for zero columns).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Borrow column `i`.
    pub fn column(&self, i: usize) -> &Bat {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[Bat] {
        &self.columns
    }

    /// Consume into the column vector.
    pub fn into_columns(self) -> Vec<Bat> {
        self.columns
    }

    /// Append another chunk row-wise (same arity and column types required).
    pub fn append(&mut self, other: &Chunk) -> Result<()> {
        if self.columns.is_empty() {
            self.columns = other.columns.clone();
            self.stamp = self.stamp.merged(other.stamp);
            return Ok(());
        }
        if self.arity() != other.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                found: other.arity(),
            });
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.append(b)?;
        }
        self.stamp = self.stamp.merged(other.stamp);
        Ok(())
    }

    /// Extract row `i` as values.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.get_at(i)).collect()
    }

    /// Iterate all rows (boundary/debug use only — O(rows × cols) Values).
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len()).map(move |i| self.row(i))
    }

    /// Gather physical positions across every column.
    pub fn gather_positions(&self, positions: &[usize]) -> Chunk {
        Chunk {
            columns: self.columns.iter().map(|c| c.gather_positions(positions)).collect(),
            stamp: self.stamp,
        }
    }

    /// View of the rows with OIDs in `[lo, hi)` across all columns (columns
    /// must share a head base, which holds for table/basket scans). O(1):
    /// every column slice shares its source buffer.
    pub fn slice_oids(&self, lo: Oid, hi: Oid) -> Chunk {
        Chunk {
            columns: self.columns.iter().map(|c| c.slice_oids(lo, hi)).collect(),
            stamp: self.stamp,
        }
    }

    /// Detach every column from shared storage (see [`Bat::compact`]).
    /// Call before retaining a chunk across scheduler passes.
    pub fn compact(&mut self) {
        for c in &mut self.columns {
            c.compact();
        }
    }

    /// Total approximate heap footprint of the column windows.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Bat::byte_size).sum()
    }

    /// Total approximate heap footprint of the backing buffers.
    pub fn buffer_byte_size(&self) -> usize {
        self.columns.iter().map(Bat::buffer_byte_size).sum()
    }

    /// Render rows as an ASCII table (monitor/emitter output).
    pub fn render(&self, headers: &[&str]) -> String {
        let mut out = String::new();
        if !headers.is_empty() {
            out.push_str(&headers.join(" | "));
            out.push('\n');
            out.push_str(&"-".repeat(headers.join(" | ").len()));
            out.push('\n');
        }
        for row in self.rows() {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        out
    }
}

impl From<Vec<Bat>> for Chunk {
    /// Panics if column lengths disagree — use [`Chunk::new`] for fallible
    /// construction.
    fn from(columns: Vec<Bat>) -> Self {
        // lint:allow(panic-freedom): From is the documented panicking conversion; Chunk::new is the fallible API
        Chunk::new(columns).expect("column lengths must agree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn chunk() -> Chunk {
        Chunk::new(vec![
            Bat::from_ints(vec![1, 2, 3]),
            Bat::from_floats(vec![0.5, 1.5, 2.5]),
        ])
        .unwrap()
    }

    #[test]
    fn length_checks() {
        let c = chunk();
        assert_eq!(c.len(), 3);
        assert_eq!(c.arity(), 2);
        let bad = Chunk::new(vec![Bat::from_ints(vec![1]), Bat::from_ints(vec![1, 2])]);
        assert!(bad.is_err());
    }

    #[test]
    fn row_extraction() {
        let c = chunk();
        assert_eq!(c.row(1), vec![Value::Int(2), Value::Float(1.5)]);
    }

    #[test]
    fn append_rows() {
        let mut a = chunk();
        let b = chunk();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 6);
        let empty_start = &mut Chunk::empty();
        empty_start.append(&chunk()).unwrap();
        assert_eq!(empty_start.len(), 3);
    }

    #[test]
    fn append_arity_mismatch() {
        let mut a = chunk();
        let b = Chunk::new(vec![Bat::from_ints(vec![1])]).unwrap();
        assert!(a.append(&b).is_err());
    }

    #[test]
    fn gather_and_slice() {
        let c = chunk();
        let g = c.gather_positions(&[2, 0]);
        assert_eq!(g.row(0), vec![Value::Int(3), Value::Float(2.5)]);
        let s = c.slice_oids(1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), vec![Value::Int(2), Value::Float(1.5)]);
    }

    #[test]
    fn render_contains_values() {
        let c = chunk();
        let txt = c.render(&["a", "b"]);
        assert!(txt.contains("a | b"));
        assert!(txt.contains("2 | 1.5"));
    }

    #[test]
    fn zero_column_chunk_is_empty() {
        let c = Chunk::empty();
        assert!(c.is_empty());
        assert_eq!(c.arity(), 0);
        let _ = Chunk::new(vec![Bat::new(DataType::Int)]).unwrap();
    }
}
