//! Panic-free binary (de)serialization of the kernel's data shapes — the
//! byte layer underneath the durability subsystem (`datacell-wal`).
//!
//! Three shapes are covered, each self-describing and NULL-aware for all
//! five value types (`Bool`, `Int`, `Float`, `Str`, `Timestamp`):
//!
//! * **row batches** — what a receptor/`PUSH` append logs: column-major,
//!   one validity byte-map per column that holds a NULL;
//! * **chunks** — full BAT sets with their OID heads (catalog snapshots:
//!   table contents, incremental ring state);
//! * **schemas** — column name/type/NOT NULL triples.
//!
//! Every decode path is *total*: arbitrary (truncated, bit-flipped) input
//! yields `StorageError::Corrupt`, never a panic and never an oversized
//! allocation — the WAL's fault-injection suite drives random bytes
//! through here. Integers are little-endian throughout.

use crate::bat::Bat;
use crate::error::{Result, StorageError};
use crate::schema::{ColumnDef, Schema};
use crate::types::{DataType, Oid};
use crate::value::{Row, Value};
use crate::vector::{Segment, Vector};

/// Stable on-disk tag of a [`DataType`].
pub fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Timestamp => 4,
    }
}

/// Inverse of [`type_tag`].
pub fn type_from_tag(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Timestamp,
        other => return Err(corrupt(format!("unknown type tag {other}"))),
    })
}

fn corrupt(msg: impl Into<String>) -> StorageError {
    StorageError::Corrupt(msg.into())
}

// ---- writer helpers ---------------------------------------------------

/// Append a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Append a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `f64` (IEEE bits).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

// ---- bounds-checked reader --------------------------------------------

/// Cursor over untrusted bytes; every read is bounds-checked.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wrap a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff everything was consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated input: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Take the next `N` bytes as a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.bytes(N)?
            .try_into()
            .map_err(|_| corrupt("internal length mismatch"))
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.array::<1>()?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let raw = self.bytes(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| corrupt("invalid UTF-8 string"))
    }
}

// ---- wire frames ------------------------------------------------------

/// Version of the binary wire-frame layout negotiated by `HELLO BINARY`.
/// Bump on any layout change; peers refuse versions they don't speak.
pub const WIRE_VERSION: u32 = 1;

/// Hard ceiling on one frame's payload length (16 MiB). A longer length
/// field is corrupt or hostile: the connection cannot be resynced past an
/// untrusted length, so readers treat this as fatal.
pub const MAX_FRAME_LEN: u32 = 16 << 20;

/// Bytes in a frame header: tag `u8` + payload length `u32` (LE).
pub const FRAME_HEADER_LEN: usize = 5;

/// Begin a wire frame: append the tag byte and a zero length placeholder.
/// Returns the payload start offset to hand to [`end_frame`].
pub fn begin_frame(buf: &mut Vec<u8>, tag: u8) -> usize {
    put_u8(buf, tag);
    put_u32(buf, 0);
    buf.len()
}

/// Close the frame opened at `payload_start`, patching the real payload
/// length into the header. Fails (leaving `buf` untouched beyond the
/// already-written bytes) if the payload outgrew [`MAX_FRAME_LEN`] or
/// `payload_start` doesn't point just past a header.
pub fn end_frame(buf: &mut [u8], payload_start: usize) -> Result<()> {
    let len = buf.len().checked_sub(payload_start).ok_or_else(|| {
        corrupt("end_frame: payload start past end of buffer")
    })?;
    if len > MAX_FRAME_LEN as usize {
        return Err(corrupt(format!("frame payload too large: {len} bytes")));
    }
    let slot = payload_start
        .checked_sub(4)
        .and_then(|lo| buf.get_mut(lo..payload_start))
        .ok_or_else(|| corrupt("end_frame: no header before payload"))?;
    slot.copy_from_slice(&(len as u32).to_le_bytes());
    Ok(())
}

/// Append a complete frame (header + payload) in one call.
pub fn put_frame(buf: &mut Vec<u8>, tag: u8, payload: &[u8]) -> Result<()> {
    let start = begin_frame(buf, tag);
    buf.extend_from_slice(payload);
    end_frame(buf, start)
}

/// Parse a frame header from the front of `bytes` without consuming the
/// payload: `Ok(Some((tag, payload_len)))` when a whole header is
/// present, `Ok(None)` when more bytes are needed, `Err` on a length
/// field past [`MAX_FRAME_LEN`].
pub fn peek_frame_header(bytes: &[u8]) -> Result<Option<(u8, usize)>> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let mut r = ByteReader::new(bytes);
    let tag = r.u8()?;
    let len = r.u32()?;
    if len > MAX_FRAME_LEN {
        return Err(corrupt(format!("frame length {len} exceeds cap")));
    }
    Ok(Some((tag, len as usize)))
}

// ---- schemas ----------------------------------------------------------

/// Encode a schema (column names, type tags, NOT NULL flags).
pub fn encode_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_u32(buf, schema.arity() as u32);
    for c in schema.columns() {
        put_str(buf, &c.name);
        put_u8(buf, type_tag(c.ty));
        put_u8(buf, c.not_null as u8);
    }
}

/// Decode a schema written by [`encode_schema`].
pub fn decode_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let n = r.u32()? as usize;
    let mut cols = Vec::new();
    for _ in 0..n {
        let name = r.str()?;
        let ty = type_from_tag(r.u8()?)?;
        let not_null = r.u8()? != 0;
        cols.push(ColumnDef { name, ty, not_null });
    }
    Ok(Schema::new(cols))
}

// ---- row batches ------------------------------------------------------

/// Encode a validated row batch column-major against `schema`'s column
/// types. Values are stored coerced to the column type (the same implicit
/// casts ingestion applies), so decode yields exactly what a basket or
/// table would hold. NULL slots write a placeholder value and a 0 in the
/// column's validity map.
pub fn encode_batch(buf: &mut Vec<u8>, schema: &Schema, rows: &[Row]) {
    put_u32(buf, schema.arity() as u32);
    put_u32(buf, rows.len() as u32);
    for (j, col) in schema.columns().iter().enumerate() {
        put_u8(buf, type_tag(col.ty));
        // `row.get(j)` instead of `row[j]`: a ragged row (shorter than the
        // schema arity) encodes its missing cells as NULL instead of
        // aborting mid-WAL-append.
        let any_null = rows.iter().any(|r| r.get(j).is_none_or(Value::is_null));
        put_u8(buf, any_null as u8);
        if any_null {
            for row in rows {
                let valid = row.get(j).is_some_and(|v| !v.is_null());
                put_u8(buf, valid as u8);
            }
        }
        for row in rows {
            let v = row
                .get(j)
                .and_then(|v| v.coerce(col.ty))
                .unwrap_or(Value::Null);
            encode_cell(buf, col.ty, &v);
        }
    }
}

fn encode_cell(buf: &mut Vec<u8>, ty: DataType, v: &Value) {
    match ty {
        DataType::Bool => put_u8(buf, matches!(v, Value::Bool(true)) as u8),
        DataType::Int => put_i64(buf, v.as_int().unwrap_or(0)),
        DataType::Timestamp => put_i64(buf, v.as_int().unwrap_or(0)),
        DataType::Float => put_f64(buf, v.as_float().unwrap_or(0.0)),
        DataType::Str => put_str(buf, v.as_str().unwrap_or("")),
    }
}

fn decode_cell(r: &mut ByteReader<'_>, ty: DataType) -> Result<Value> {
    Ok(match ty {
        DataType::Bool => Value::Bool(r.u8()? != 0),
        DataType::Int => Value::Int(r.i64()?),
        DataType::Timestamp => Value::Timestamp(r.i64()?),
        DataType::Float => Value::Float(r.f64()?),
        DataType::Str => Value::Str(r.str()?),
    })
}

/// Decode a batch written by [`encode_batch`] back into rows (the replay
/// path feeds these to `Basket::push_rows`, i.e. the bulk
/// `Bat::extend_from_rows` append).
pub fn decode_batch(r: &mut ByteReader<'_>) -> Result<Vec<Row>> {
    let ncols = r.u32()? as usize;
    let nrows = r.u32()? as usize;
    // Plausibility bounds before any allocation: every column costs at
    // least two header bytes, every row at least one byte per column, and
    // therefore every *cell* at least one byte — so the ncols×nrows
    // product must fit the remaining input too (a corrupt header must
    // not trigger a huge `resize_with` or per-row `with_capacity`). The
    // loop below still validates every byte.
    if ncols > r.remaining() / 2
        || (nrows > 0 && (ncols == 0 || nrows > r.remaining()))
        || ncols.saturating_mul(nrows) > r.remaining()
    {
        return Err(corrupt(format!("implausible batch header: {ncols}x{nrows}")));
    }
    let mut rows: Vec<Row> = Vec::new();
    rows.resize_with(nrows, || Vec::with_capacity(ncols));
    for _ in 0..ncols {
        let ty = type_from_tag(r.u8()?)?;
        let any_null = r.u8()? != 0;
        let validity = if any_null { Some(r.bytes(nrows)?) } else { None };
        for (i, row) in rows.iter_mut().enumerate() {
            let v = decode_cell(r, ty)?;
            if validity.is_some_and(|v| v[i] == 0) {
                row.push(Value::Null);
            } else {
                row.push(v);
            }
        }
    }
    Ok(rows)
}

/// Decode a batch written by [`encode_batch`] straight into a columnar
/// [`Chunk`](crate::chunk::Chunk) — no intermediate `Vec<Row>`. Each
/// column's cells land in one typed buffer that becomes the [`Segment`]
/// backing a [`Bat`], so a binary `PUSH` frame can be appended to a
/// basket with `Vector::append` instead of being re-pivoted row by row.
/// OID heads start at 0; the receiving basket renumbers on append.
pub fn decode_batch_chunk(r: &mut ByteReader<'_>) -> Result<crate::chunk::Chunk> {
    let ncols = r.u32()? as usize;
    let nrows = r.u32()? as usize;
    // Same plausibility bounds as [`decode_batch`]: every `with_capacity`
    // below is capped by the remaining input length.
    if ncols > r.remaining() / 2
        || (nrows > 0 && (ncols == 0 || nrows > r.remaining()))
        || ncols.saturating_mul(nrows) > r.remaining()
    {
        return Err(corrupt(format!("implausible batch header: {ncols}x{nrows}")));
    }
    let mut cols: Vec<Bat> = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let ty = type_from_tag(r.u8()?)?;
        let any_null = r.u8()? != 0;
        let validity: Option<Vec<bool>> = if any_null {
            Some(r.bytes(nrows)?.iter().map(|&b| b != 0).collect())
        } else {
            None
        };
        let data = match ty {
            DataType::Bool => {
                let mut v: Vec<bool> = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.u8()? != 0);
                }
                Vector::Bool(Segment::from_vec(v))
            }
            DataType::Int | DataType::Timestamp => {
                let mut v: Vec<i64> = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.i64()?);
                }
                let seg = Segment::from_vec(v);
                if ty == DataType::Int {
                    Vector::Int(seg)
                } else {
                    Vector::Timestamp(seg)
                }
            }
            DataType::Float => {
                let mut v: Vec<f64> = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.f64()?);
                }
                Vector::Float(Segment::from_vec(v))
            }
            DataType::Str => {
                let mut v: Vec<String> = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    v.push(r.str()?);
                }
                Vector::Str(Segment::from_vec(v))
            }
        };
        cols.push(Bat::from_parts(data, 0, validity)?);
    }
    crate::chunk::Chunk::new(cols)
}

// ---- chunks -----------------------------------------------------------

/// Encode a chunk: every column's OID base, type, validity and values.
pub fn encode_chunk(buf: &mut Vec<u8>, chunk: &crate::chunk::Chunk) {
    put_u32(buf, chunk.arity() as u32);
    put_u32(buf, chunk.len() as u32);
    for col in chunk.columns() {
        put_u8(buf, type_tag(col.data_type()));
        put_u64(buf, col.oid_base());
        let any_null = col.has_nulls();
        put_u8(buf, any_null as u8);
        if any_null {
            for i in 0..col.len() {
                put_u8(buf, !col.is_null_at(i) as u8);
            }
        }
        for i in 0..col.len() {
            let v = col.get_at(i);
            let v = v.coerce(col.data_type()).unwrap_or(Value::Null);
            encode_cell(buf, col.data_type(), &v);
        }
    }
}

/// Decode a chunk written by [`encode_chunk`].
pub fn decode_chunk(r: &mut ByteReader<'_>) -> Result<crate::chunk::Chunk> {
    let ncols = r.u32()? as usize;
    let nrows = r.u32()? as usize;
    let mut cols: Vec<Bat> = Vec::new();
    for _ in 0..ncols {
        let ty = type_from_tag(r.u8()?)?;
        let base: Oid = r.u64()?;
        let any_null = r.u8()? != 0;
        let validity: Option<Vec<bool>> = if any_null {
            Some(r.bytes(nrows)?.iter().map(|&b| b != 0).collect())
        } else {
            None
        };
        let mut data = Vector::new(ty);
        for _ in 0..nrows {
            let v = decode_cell(r, ty)?;
            data.push(&v).map_err(|e| corrupt(format!("bad cell: {e}")))?;
        }
        cols.push(Bat::from_parts(data, base, validity)?);
    }
    crate::chunk::Chunk::new(cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;

    fn all_types_schema() -> Schema {
        Schema::of(&[
            ("b", DataType::Bool),
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
            ("t", DataType::Timestamp),
        ])
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            vec![
                Value::Bool(true),
                Value::Int(-5),
                Value::Float(2.5),
                Value::Str("héllo, \"wörld\"\n".into()),
                Value::Timestamp(99),
            ],
            vec![Value::Null, Value::Null, Value::Null, Value::Null, Value::Null],
            vec![
                Value::Bool(false),
                Value::Int(i64::MAX),
                Value::Int(7), // int→float coercion on encode
                Value::Str(String::new()),
                Value::Int(3), // int→timestamp coercion on encode
            ],
        ]
    }

    #[test]
    fn batch_roundtrip_all_types_and_nulls() {
        let schema = all_types_schema();
        let rows = sample_rows();
        let mut buf = Vec::new();
        encode_batch(&mut buf, &schema, &rows);
        let decoded = decode_batch(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0], rows[0]);
        assert!(decoded[1].iter().all(Value::is_null));
        // Coercions land as the column type.
        assert_eq!(decoded[2][2], Value::Float(7.0));
        assert_eq!(decoded[2][4], Value::Timestamp(3));
    }

    #[test]
    fn empty_batch_roundtrip() {
        let schema = all_types_schema();
        let mut buf = Vec::new();
        encode_batch(&mut buf, &schema, &[]);
        assert!(decode_batch(&mut ByteReader::new(&buf)).unwrap().is_empty());
    }

    #[test]
    fn schema_roundtrip() {
        let schema = Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("tag", DataType::Str),
        ]);
        let mut buf = Vec::new();
        encode_schema(&mut buf, &schema);
        let decoded = decode_schema(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(decoded, schema);
    }

    #[test]
    fn chunk_roundtrip_keeps_oid_heads_and_validity() {
        let mut a = Bat::with_base(DataType::Int, 100);
        a.push(&Value::Int(1)).unwrap();
        a.push(&Value::Null).unwrap();
        let mut b = Bat::with_base(DataType::Str, 100);
        b.push(&Value::Str("x".into())).unwrap();
        b.push(&Value::Str("y".into())).unwrap();
        let chunk = Chunk::new(vec![a, b]).unwrap();
        let mut buf = Vec::new();
        encode_chunk(&mut buf, &chunk);
        let decoded = decode_chunk(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(decoded, chunk);
        assert_eq!(decoded.column(0).oid_base(), 100);
        assert_eq!(decoded.column(0).get_at(1), Value::Null);
    }

    #[test]
    fn decode_never_panics_on_garbage() {
        // Truncations of a valid encoding plus pure noise: every prefix
        // must fail cleanly (or, for complete prefixes, succeed).
        let schema = all_types_schema();
        let mut buf = Vec::new();
        encode_batch(&mut buf, &schema, &sample_rows());
        for cut in 0..buf.len() {
            let _ = decode_batch(&mut ByteReader::new(&buf[..cut]));
        }
        for noise in [&[0xffu8; 16][..], &[0x01; 3], &[]] {
            let _ = decode_batch(&mut ByteReader::new(noise));
            let _ = decode_chunk(&mut ByteReader::new(noise));
            let _ = decode_schema(&mut ByteReader::new(noise));
        }
        // A length field pointing far past the buffer must not allocate
        // or panic.
        let mut evil = Vec::new();
        put_u32(&mut evil, 2);
        put_u32(&mut evil, u32::MAX);
        put_u8(&mut evil, type_tag(DataType::Int));
        put_u8(&mut evil, 0);
        assert!(decode_batch(&mut ByteReader::new(&evil)).is_err());
        // Likewise a huge column count (would otherwise drive a
        // multi-GiB per-row `with_capacity`).
        let mut evil = Vec::new();
        put_u32(&mut evil, u32::MAX);
        put_u32(&mut evil, 1);
        evil.extend_from_slice(&[0u8; 8]);
        assert!(decode_batch(&mut ByteReader::new(&evil)).is_err());
        // And a header whose ncols×nrows product explodes even though
        // each factor alone looks plausible for the buffer size.
        let mut evil = Vec::new();
        put_u32(&mut evil, 400);
        put_u32(&mut evil, 1000);
        evil.extend_from_slice(&vec![0u8; 1000]);
        assert!(decode_batch(&mut ByteReader::new(&evil)).is_err());
    }

    #[test]
    fn reader_is_bounds_checked() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.u64().is_err());
        assert_eq!(r.remaining(), 2);
        assert!(ByteReader::new(&[5, 0, 0, 0, b'a']).str().is_err());
    }

    #[test]
    fn frame_header_roundtrip() {
        let mut buf = Vec::new();
        let start = begin_frame(&mut buf, 0x01);
        put_u64(&mut buf, 42);
        end_frame(&mut buf, start).unwrap();
        assert_eq!(peek_frame_header(&buf).unwrap(), Some((0x01, 8)));
        assert_eq!(buf.len(), FRAME_HEADER_LEN + 8);

        let mut buf = Vec::new();
        put_frame(&mut buf, 0x00, b"PING").unwrap();
        assert_eq!(peek_frame_header(&buf).unwrap(), Some((0x00, 4)));
        assert_eq!(&buf[FRAME_HEADER_LEN..], b"PING");
    }

    #[test]
    fn frame_header_is_bounded() {
        // Short reads ask for more bytes; hostile lengths are fatal.
        assert_eq!(peek_frame_header(&[]).unwrap(), None);
        assert_eq!(peek_frame_header(&[1, 2, 3, 4]).unwrap(), None);
        let mut evil = Vec::new();
        put_u8(&mut evil, 0x01);
        put_u32(&mut evil, u32::MAX);
        assert!(peek_frame_header(&evil).is_err());
        // Cap is inclusive: exactly MAX_FRAME_LEN is still legal.
        let mut edge = Vec::new();
        put_u8(&mut edge, 0x01);
        put_u32(&mut edge, MAX_FRAME_LEN);
        assert_eq!(
            peek_frame_header(&edge).unwrap(),
            Some((0x01, MAX_FRAME_LEN as usize))
        );
        // Misused end_frame errors instead of panicking.
        let mut buf = Vec::new();
        assert!(end_frame(&mut buf, 3).is_err());
        assert!(end_frame(&mut Vec::new(), 0).is_err());
    }

    #[test]
    fn type_tags_are_stable() {
        for ty in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Timestamp,
        ] {
            assert_eq!(type_from_tag(type_tag(ty)).unwrap(), ty);
        }
        assert!(type_from_tag(9).is_err());
    }
}
