//! Logical data types of the DataCell kernel.
//!
//! MonetDB's kernel is typed at the column granularity; every BAT tail has
//! exactly one of these types. We keep the set small but sufficient for the
//! paper's workloads: 64-bit integers, doubles, booleans, strings and
//! microsecond timestamps.

use std::fmt;

/// Object identifier: the (implicit) head of every BAT.
///
/// OIDs are dense and monotonically increasing per table/basket, exactly as
/// in MonetDB where the head column is a void (virtual oid) sequence.
pub type Oid = u64;

/// Logical type of a column (BAT tail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer (SQL `INT`/`BIGINT`).
    Int,
    /// 64-bit IEEE float (SQL `DOUBLE`/`FLOAT`).
    Float,
    /// Variable-length UTF-8 string (SQL `VARCHAR`).
    Str,
    /// Microseconds since the epoch (SQL `TIMESTAMP`).
    Timestamp,
}

impl DataType {
    /// Whether values of this type can be summed/averaged.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Timestamp)
    }

    /// Whether values of this type have a total order (all our types do).
    pub fn is_ordered(self) -> bool {
        true
    }

    /// The SQL spelling of the type, used by `EXPLAIN` and error messages.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Float => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Timestamp => "TIMESTAMP",
        }
    }

    /// Result type of an arithmetic expression over `self` and `other`,
    /// or `None` if the combination is not arithmetic.
    pub fn arith_result(self, other: DataType) -> Option<DataType> {
        use DataType::*;
        match (self, other) {
            (Int, Int) => Some(Int),
            (Float, Float) | (Int, Float) | (Float, Int) => Some(Float),
            (Timestamp, Int) | (Int, Timestamp) => Some(Timestamp),
            (Timestamp, Timestamp) => Some(Int),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(DataType::Timestamp.is_numeric());
        assert!(!DataType::Bool.is_numeric());
        assert!(!DataType::Str.is_numeric());
    }

    #[test]
    fn arithmetic_result_types() {
        assert_eq!(DataType::Int.arith_result(DataType::Int), Some(DataType::Int));
        assert_eq!(DataType::Int.arith_result(DataType::Float), Some(DataType::Float));
        assert_eq!(DataType::Float.arith_result(DataType::Int), Some(DataType::Float));
        assert_eq!(
            DataType::Timestamp.arith_result(DataType::Timestamp),
            Some(DataType::Int)
        );
        assert_eq!(DataType::Str.arith_result(DataType::Int), None);
        assert_eq!(DataType::Bool.arith_result(DataType::Bool), None);
    }

    #[test]
    fn sql_names_round_trip_display() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Timestamp,
        ] {
            assert_eq!(format!("{t}"), t.sql_name());
        }
    }
}
