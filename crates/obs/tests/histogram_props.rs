//! Property and concurrency tests for the sharded histogram and the
//! registry.
//!
//! The histogram's correctness contract: snapshots are a *commutative
//! monoid* under [`HistogramSnapshot::merge`] (so per-worker / per-shard
//! snapshots can be combined in any grouping or order), and recording any
//! multiset of values produces exactly the bucket counts of a scalar
//! reference model. On top of that, a 4-thread hammer proves the
//! registry's lock-free recording loses no observations.

use std::sync::Arc;

use datacell_obs::{Histogram, HistogramSnapshot, Registry, BUCKETS};
use proptest::prelude::*;

/// Scalar reference model: the bucket mapping restated independently.
fn scalar_bucket(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let mut i = 0usize;
    let mut bound = 0u64; // inclusive upper bound of bucket i = 2^i - 1
    loop {
        if v <= bound {
            return i;
        }
        i += 1;
        if i == BUCKETS - 1 {
            return i;
        }
        bound = (1u64 << i) - 1;
    }
}

fn model_snapshot(values: &[u64]) -> HistogramSnapshot {
    let mut snap = HistogramSnapshot::default();
    for &v in values {
        snap.buckets[scalar_bucket(v)] += 1;
        snap.count += 1;
        snap.sum += v;
    }
    snap
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Values spanning every magnitude the log2 buckets distinguish.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0u64),
            (0u16..1024).prop_map(|v| v as u64),
            (0u16..1024).prop_map(|v| (v as u64) << 20),
            (0u16..1024).prop_map(|v| (v as u64) << 45),
        ],
        0..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sharded_recording_matches_scalar_model(values in arb_values()) {
        prop_assert_eq!(record_all(&values), model_snapshot(&values));
    }

    #[test]
    fn merge_is_commutative(a in arb_values(), b in arb_values()) {
        let (sa, sb) = (model_snapshot(&a), model_snapshot(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in arb_values(),
        b in arb_values(),
        c in arb_values(),
    ) {
        let (sa, sb, sc) = (model_snapshot(&a), model_snapshot(&b), model_snapshot(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_of_splits_equals_whole(values in arb_values(), split in 0usize..64) {
        let split = split.min(values.len());
        let mut merged = model_snapshot(&values[..split]);
        merged.merge(&model_snapshot(&values[split..]));
        prop_assert_eq!(merged, record_all(&values));
    }

    #[test]
    fn identity_element(values in arb_values()) {
        let s = model_snapshot(&values);
        let mut with_empty = s.clone();
        with_empty.merge(&HistogramSnapshot::default());
        prop_assert_eq!(with_empty, s);
    }
}

/// Four threads hammer one registry's shared handles; nothing may be lost
/// and the merged histogram must match the scalar model of everything
/// recorded.
#[test]
fn registry_concurrent_hammer_loses_nothing() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;

    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                // Each thread re-requests the handles by name, exercising
                // concurrent get-or-create against concurrent recording.
                let c = reg.counter("ops_total", "ops");
                let g = reg.gauge("inflight", "inflight");
                let h = reg.histogram("lat_us", "latency");
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(1);
                    h.record(t * PER_THREAD + i);
                    g.add(-1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("hammer thread");
    }

    let snap = reg.snapshot();
    assert_eq!(snap.counter("ops_total"), Some(THREADS * PER_THREAD));
    assert_eq!(snap.gauge("inflight"), Some(0));
    let hist = snap.histogram("lat_us").expect("histogram registered");
    let expected = model_snapshot(&(0..THREADS * PER_THREAD).collect::<Vec<u64>>());
    assert_eq!(hist, &expected);
}
