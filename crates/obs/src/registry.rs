//! The metrics registry: a named collection of counters, gauges, and
//! histograms, snapshotted as a whole and rendered in Prometheus text
//! exposition format.
//!
//! Registration is the cold path (engine startup, query registration) and
//! takes a `RwLock` write; the returned `Arc` handles are recorded through
//! directly on the hot path with no registry involvement at all.

use std::collections::BTreeMap;
use std::sync::{Arc, PoisonError, RwLock};

use crate::metrics::{bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};

/// Kind + handle of one registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug, Default)]
struct Inner {
    metrics: BTreeMap<String, Metric>,
    help: BTreeMap<String, String>,
}

/// A named collection of metrics.
///
/// `Registry` is `Sync`; clones of the returned `Arc` handles can be
/// recorded from any thread concurrently.
#[derive(Debug, Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create a counter. If the name is already registered as a
    /// different kind the existing registration wins and a fresh detached
    /// handle is returned (recording to it is harmless but unobserved);
    /// metric names are engine-internal constants so this is a
    /// programming error surfaced by tests, not a runtime hazard.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        inner.help.entry(name.to_string()).or_insert_with(|| help.to_string());
        let entry = inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match entry {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Get or create a gauge (same name rules as [`Registry::counter`]).
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        inner.help.entry(name.to_string()).or_insert_with(|| help.to_string());
        let entry = inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match entry {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Get or create a histogram (same name rules as [`Registry::counter`]).
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        inner.help.entry(name.to_string()).or_insert_with(|| help.to_string());
        let entry = inner
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match entry {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        let mut values = BTreeMap::new();
        for (name, metric) in &inner.metrics {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.get()),
                Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
            };
            values.insert(name.clone(), value);
        }
        MetricsSnapshot { values, help: inner.help.clone() }
    }
}

/// The snapshotted value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Point-in-time gauge value.
    Gauge(i64),
    /// Merged histogram shards (boxed: a snapshot is ~64 buckets,
    /// far larger than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// A point-in-time snapshot of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Metric name → value, sorted by name.
    pub values: BTreeMap<String, MetricValue>,
    /// Metric name → help text.
    pub help: BTreeMap<String, String>,
}

impl MetricsSnapshot {
    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Render the snapshot in Prometheus text exposition format.
    ///
    /// Histograms emit the conventional cumulative `_bucket{le="..."}`
    /// series (log2 upper bounds, empty buckets above the max observed
    /// value elided), `_sum`, and `_count`. The output round-trips through
    /// [`parse_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            let help = self.help.get(name).map(String::as_str).unwrap_or("");
            if !help.is_empty() {
                out.push_str(&format!("# HELP {name} {help}\n"));
            }
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    // Highest non-empty bucket; always emit at least one
                    // finite le bound so empty histograms still render a
                    // well-formed series.
                    let top = h
                        .buckets
                        .iter()
                        .rposition(|&n| n > 0)
                        .map(|i| (i + 1).min(BUCKETS - 1))
                        .unwrap_or(0);
                    let mut cum = 0u64;
                    for (i, &n) in h.buckets.iter().enumerate().take(top + 1) {
                        cum += n;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_upper(i)
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse (and thereby validate) Prometheus text exposition format.
///
/// Accepts `# HELP` / `# TYPE` comments and `name{labels} value` sample
/// lines; returns every sample, or a description of the first malformed
/// line. This is the validator the server socket test runs against the
/// `METRICS` command output.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            let mut parts = comment.splitn(3, ' ');
            let kind = parts.next().unwrap_or("");
            if kind == "HELP" || kind == "TYPE" {
                let name = parts.next().unwrap_or("");
                if !valid_name(name) {
                    return Err(format!("line {}: bad metric name in comment: {line}", lineno + 1));
                }
                if kind == "TYPE" {
                    let ty = parts.next().unwrap_or("").trim();
                    if !matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                        return Err(format!("line {}: unknown metric type {ty:?}", lineno + 1));
                    }
                }
            }
            // Other comments are allowed and ignored per the format spec.
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_labels, value_str) = match line.find('}') {
        Some(close) => {
            let (head, tail) = line.split_at(close + 1);
            (head, tail.trim())
        }
        None => {
            let mut it = line.splitn(2, char::is_whitespace);
            let head = it.next().unwrap_or("");
            (head, it.next().unwrap_or("").trim())
        }
    };
    let (name, labels) = match name_labels.find('{') {
        Some(open) => {
            let name = &name_labels[..open];
            let body = name_labels
                .get(open + 1..name_labels.len() - 1)
                .ok_or_else(|| format!("bad label block in {line:?}"))?;
            (name, parse_labels(body)?)
        }
        None => (name_labels, Vec::new()),
    };
    if !valid_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let value: f64 = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other.parse().map_err(|_| format!("bad sample value {other:?}"))?,
    };
    Ok(Sample { name: name.to_string(), labels, value })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let body = body.trim().trim_end_matches(',');
    if body.is_empty() {
        return Ok(labels);
    }
    for pair in body.split(',') {
        let (k, v) = pair
            .split_once('=')
            .ok_or_else(|| format!("label pair missing '=': {pair:?}"))?;
        let k = k.trim();
        if !valid_name(k) {
            return Err(format!("bad label name {k:?}"));
        }
        let v = v.trim();
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("label value not quoted: {v:?}"))?;
        labels.push((k.to_string(), v.to_string()));
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("requests_total", "total requests");
        let g = reg.gauge("queue_depth", "current queue depth");
        let h = reg.histogram("latency_us", "request latency");
        c.add(3);
        g.set(-2);
        h.record(5);
        h.record(500);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("requests_total"), Some(3));
        assert_eq!(snap.gauge("queue_depth"), Some(-2));
        assert_eq!(snap.histogram("latency_us").map(|h| h.count), Some(2));
    }

    #[test]
    fn handles_are_shared() {
        let reg = Registry::new();
        reg.counter("c", "").add(1);
        reg.counter("c", "").add(1);
        assert_eq!(reg.snapshot().counter("c"), Some(2));
    }

    #[test]
    fn render_parses_back() {
        let reg = Registry::new();
        reg.counter("a_total", "a help text").add(7);
        reg.gauge("b_gauge", "").set(-1);
        let h = reg.histogram("lat_us", "latency");
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let text = reg.snapshot().render_prometheus();
        let samples = parse_prometheus(&text).expect("render must parse");
        let get = |n: &str| samples.iter().find(|s| s.name == n).map(|s| s.value);
        assert_eq!(get("a_total"), Some(7.0));
        assert_eq!(get("b_gauge"), Some(-1.0));
        assert_eq!(get("lat_us_count"), Some(5.0));
        assert_eq!(get("lat_us_sum"), Some(1011.0));
        // Cumulative buckets end at count under le="+Inf".
        let inf = samples
            .iter()
            .find(|s| s.name == "lat_us_bucket" && s.labels.iter().any(|(_, v)| v == "+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 5.0);
        // Buckets are cumulative (non-decreasing in le order).
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "lat_us_bucket")
            .map(|s| s.value)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    }

    #[test]
    fn empty_histogram_renders_well_formed() {
        let reg = Registry::new();
        reg.histogram("empty_us", "");
        let text = reg.snapshot().render_prometheus();
        let samples = parse_prometheus(&text).expect("parses");
        assert!(samples.iter().any(|s| s.name == "empty_us_count" && s.value == 0.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("1bad_name 3\n").is_err());
        assert!(parse_prometheus("name not_a_number\n").is_err());
        assert!(parse_prometheus("name{k=unquoted} 1\n").is_err());
        assert!(parse_prometheus("# TYPE x spaghetti\n").is_err());
        assert!(parse_prometheus("ok{le=\"+Inf\"} 1\n# random comment\nplain 2\n").is_ok());
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = Registry::new();
        reg.counter("m", "").add(1);
        let g = reg.gauge("m", "");
        g.set(99);
        // Registry keeps the first registration.
        assert_eq!(reg.snapshot().counter("m"), Some(1));
    }
}
