//! The flight recorder: a bounded ring of recent engine events.
//!
//! Metrics answer "how fast"; the flight recorder answers "what just
//! happened" — the last N lifecycle events (stream created, query
//! registered, checkpoint, recovery, per-pass summaries, drops) with
//! microsecond timestamps relative to recorder start. The ring is
//! bounded, so a long-running engine keeps a fixed-size tail and the
//! `TRACE DUMP` wire command drains it without unbounded growth.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (never reused; gaps mean ring overflow).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Short event kind tag (e.g. `register`, `pass`, `checkpoint`).
    pub kind: &'static str,
    /// Free-form detail line.
    pub detail: String,
}

/// A bounded ring of [`TraceEvent`]s. Recording takes a short mutex —
/// events are lifecycle-frequency (per pass, per DDL), not per tuple, so
/// contention is negligible next to the engine lock.
#[derive(Debug)]
pub struct FlightRecorder {
    start: Instant,
    capacity: usize,
    next_seq: AtomicU64,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl FlightRecorder {
    /// New recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            start: Instant::now(),
            capacity,
            next_seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// Append one event, evicting the oldest when full.
    pub fn record(&self, kind: &'static str, detail: impl Into<String>) {
        let event = TraceEvent {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            at_us: self.start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            kind,
            detail: detail.into(),
        };
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Remove and return up to `n` of the **most recent** events (all
    /// buffered events when `n` is `None`), oldest first.
    pub fn drain_recent(&self, n: Option<usize>) -> Vec<TraceEvent> {
        let mut ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let take = n.unwrap_or(ring.len()).min(ring.len());
        let keep = ring.len() - take;
        ring.split_off(keep).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_sequence() {
        let rec = FlightRecorder::new(8);
        rec.record("a", "first");
        rec.record("b", "second");
        let events = rec.drain_recent(None);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, "a");
        assert_eq!(events[1].kind, "b");
        assert!(events[0].seq < events[1].seq);
        assert!(events[0].at_us <= events[1].at_us);
        assert!(rec.is_empty());
    }

    #[test]
    fn bounded_ring_evicts_oldest() {
        let rec = FlightRecorder::new(3);
        for i in 0..10 {
            rec.record("e", format!("{i}"));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 10);
        let events = rec.drain_recent(None);
        let details: Vec<&str> = events.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["7", "8", "9"]);
    }

    #[test]
    fn drain_recent_takes_newest() {
        let rec = FlightRecorder::new(10);
        for i in 0..5 {
            rec.record("e", format!("{i}"));
        }
        let last2 = rec.drain_recent(Some(2));
        assert_eq!(last2.len(), 2);
        assert_eq!(last2[0].detail, "3");
        assert_eq!(last2[1].detail, "4");
        // Older events stay buffered.
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let rec = FlightRecorder::new(0);
        rec.record("x", "");
        rec.record("y", "");
        assert_eq!(rec.drain_recent(None).len(), 1);
    }
}
