//! Metric primitives: atomic counters, gauges, and per-thread-sharded
//! log2 histograms with mergeable snapshots.
//!
//! Histograms are the interesting part. Recording must be cheap enough
//! for per-chunk hot paths, so each histogram holds [`SHARDS`] independent
//! bucket arrays and a thread picks its shard by a cached hash of its
//! `ThreadId` — two threads usually land on different cache lines and a
//! record is a handful of relaxed `fetch_add`s with no compare-and-swap
//! loop. Readers merge the shards into a [`HistogramSnapshot`], which is
//! itself mergeable (associative and commutative, see the proptest in
//! `tests/histogram_props.rs`), so per-worker or per-interval snapshots
//! can be combined freely.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log2 buckets per histogram. Bucket 0 holds the value 0 and
/// bucket `i` (i >= 1) holds values in `[2^(i-1), 2^i - 1]`; every `u64`
/// maps to exactly one of the 64 buckets.
pub const BUCKETS: usize = 64;

/// Number of independent shards per histogram. Power of two so the shard
/// pick is a mask, sized so a handful of worker threads rarely collide.
const SHARDS: usize = 8;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways (queue depth, bytes
/// pinned, active sessions).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One histogram shard: its own buckets, count, and sum so concurrent
/// writers on different shards never touch the same cache lines.
#[derive(Debug)]
struct Shard {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Map a value to its log2 bucket index. Total over all of `u64`.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`, saturating at the top).
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
pub(crate) fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// A fixed-bucket log2 histogram, sharded per thread for lock-free
/// concurrent recording.
#[derive(Debug)]
pub struct Histogram {
    shards: [Shard; SHARDS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram { shards: std::array::from_fn(|_| Shard::new()) }
    }

    /// Record one observation. Lock-free: three relaxed `fetch_add`s on
    /// the calling thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as whole microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Merge all shards into one snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for shard in &self.shards {
            for (i, b) in shard.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
            snap.count += shard.count.load(Ordering::Relaxed);
            snap.sum += shard.sum.load(Ordering::Relaxed);
        }
        snap
    }
}

/// Cached per-thread shard index: hash the `ThreadId` once per thread.
#[inline]
fn shard_index() -> usize {
    use std::hash::{Hash, Hasher};
    thread_local! {
        static SHARD: usize = {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            std::thread::current().id().hash(&mut h);
            (h.finish() as usize) & (SHARDS - 1)
        };
    }
    SHARD.with(|s| *s)
}

/// A merged, immutable view of a histogram: plain `u64` buckets so it
/// derives `Eq` and can live inside snapshot structs that are compared in
/// tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`BUCKETS` log2 buckets).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Record one observation directly into the snapshot — the scalar,
    /// single-owner counterpart of [`Histogram::record`] for call sites
    /// that already hold `&mut` (e.g. per-factory stats).
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Merge another snapshot into this one. Associative and commutative:
    /// bucket-wise addition.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of the observed values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) by locating the bucket that
    /// holds the target rank and interpolating linearly inside its value
    /// range. Log2 buckets bound the relative error at 2x; good enough
    /// for latency reporting.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * (self.count.saturating_sub(1)) as f64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let before = seen as f64;
            seen += n;
            if target < seen as f64 {
                // Rank `target` falls inside bucket i: interpolate across
                // the bucket's value range by the rank's position in it.
                let lo = bucket_lower(i) as f64;
                let hi = bucket_upper(i) as f64;
                let frac = if n > 1 { (target - before) / (n - 1) as f64 } else { 0.0 };
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
        }
        bucket_upper(BUCKETS - 1) as f64
    }

    /// Shorthand for the 50th/95th/99th percentile triple.
    pub fn p50_p95_p99(&self) -> (f64, f64, f64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_is_total_and_ordered() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            assert!(bucket_lower(i) <= bucket_upper(i));
            assert_eq!(bucket_of(bucket_lower(i)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
    }

    #[test]
    fn quantiles_are_monotonic_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let (p50, p95, p99) = s.p50_p95_p99();
        assert!(p50 <= p95 && p95 <= p99);
        // Log2 buckets bound the answer within 2x of the true quantile.
        assert!((250.0..=1023.0).contains(&p50), "p50 = {p50}");
        assert!(s.quantile(0.0) >= 1.0);
        assert!(s.quantile(1.0) <= 1023.0);
    }

    #[test]
    fn empty_snapshot_quantile_is_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a_h = Histogram::new();
        a_h.record(5);
        let b_h = Histogram::new();
        b_h.record(7);
        b_h.record(100);
        let mut a = a_h.snapshot();
        a.merge(&b_h.snapshot());
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 112);
        assert_eq!(a.buckets[bucket_of(5)], 2); // 5 and 7 share bucket [4,7]
    }
}
