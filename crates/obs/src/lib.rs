//! # datacell-obs
//!
//! Observability primitives for the DataCell engine: a lock-free,
//! per-thread-sharded metrics registry (counters, gauges, and fixed-bucket
//! log2 histograms with mergeable snapshots) plus a bounded flight
//! recorder of recent engine events.
//!
//! The crate is a dependency-free leaf: it performs no I/O and knows
//! nothing about streams, queries, or sockets. The engine registers
//! handles once at startup and records on the hot path with plain relaxed
//! atomics; readers take [`MetricsSnapshot`]s that merge the shards and
//! render [Prometheus text exposition
//! format](https://prometheus.io/docs/instrumenting/exposition_formats/).
//!
//! ```
//! use datacell_obs::Registry;
//!
//! let reg = Registry::new();
//! let fired = reg.counter("datacell_firings_total", "total factory firings");
//! let lat = reg.histogram("datacell_fire_us", "factory fire latency (us)");
//! fired.add(1);
//! lat.record(130);
//! let snap = reg.snapshot();
//! assert!(snap.render_prometheus().contains("datacell_firings_total 1"));
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod recorder;
pub mod registry;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{FlightRecorder, TraceEvent};
pub use registry::{parse_prometheus, MetricValue, MetricsSnapshot, Registry, Sample};
