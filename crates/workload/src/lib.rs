//! # datacell-workload
//!
//! Deterministic, seedable stream generators for the paper's motivating
//! applications (§1: mobile/traffic data, cloud monitoring, scientific
//! streams, web logs) and the Linear Road-inspired benchmark input:
//!
//! * [`sensors`] — scientific sensor readings (the demo's default stream).
//! * [`weblog`] — Zipf-skewed clickstream.
//! * [`netmon`] — network flow records with heavy hitters and scans.
//! * [`linear_road`] — multi-expressway traffic simulation (LRB substitute).
//!
//! All generators implement `Iterator<Item = Row>`, so they plug directly
//! into `datacell_core::Receptor::spawn`.

#![warn(missing_docs)]

pub mod linear_road;
pub mod netmon;
pub mod sensors;
pub mod weblog;

pub use linear_road::{LinearRoadConfig, LinearRoadStream};
pub use netmon::{NetmonConfig, NetmonStream};
pub use sensors::{SensorConfig, SensorStream};
pub use weblog::{WeblogConfig, WeblogStream};

use datacell_storage::{Bat, Chunk, Row, Schema};

/// Convert rows into a columnar chunk matching `schema` (bulk-ingest
/// helper used by benchmarks to take row conversion off the hot path).
pub fn rows_to_chunk(schema: &Schema, rows: &[Row]) -> datacell_storage::Result<Chunk> {
    let mut columns: Vec<Bat> =
        schema.columns().iter().map(|c| Bat::new(c.ty)).collect();
    for row in rows {
        schema.validate_row(row)?;
        for (col, v) in columns.iter_mut().zip(row) {
            col.push(v)?;
        }
    }
    Chunk::new(columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::{DataType, Value};

    #[test]
    fn rows_to_chunk_round_trip() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Float)]);
        let rows = vec![
            vec![Value::Int(1), Value::Float(0.5)],
            vec![Value::Int(2), Value::Float(1.5)],
        ];
        let chunk = rows_to_chunk(&schema, &rows).unwrap();
        assert_eq!(chunk.len(), 2);
        assert_eq!(chunk.row(1), rows[1]);
    }

    #[test]
    fn rows_to_chunk_validates() {
        let schema = Schema::of(&[("a", DataType::Int)]);
        let rows = vec![vec![Value::Str("x".into())]];
        assert!(rows_to_chunk(&schema, &rows).is_err());
    }
}
