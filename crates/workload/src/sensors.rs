//! Synthetic sensor-reading stream — the demo's default input ("scientific
//! data management" motivation, paper §1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datacell_storage::{DataType, Row, Schema, Value};

/// Configuration for the sensor stream.
#[derive(Debug, Clone)]
pub struct SensorConfig {
    /// Number of distinct sensors (group-by cardinality).
    pub sensors: u32,
    /// Mean temperature.
    pub mean: f64,
    /// Temperature noise amplitude.
    pub amplitude: f64,
    /// Timestamp step between consecutive readings (microseconds).
    pub tick_us: i64,
    /// RNG seed (deterministic workloads for reproducible benches).
    pub seed: u64,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig { sensors: 100, mean: 20.0, amplitude: 5.0, tick_us: 1000, seed: 42 }
    }
}

/// Generator of `(ts, sensor, temp)` rows.
#[derive(Debug)]
pub struct SensorStream {
    config: SensorConfig,
    rng: StdRng,
    next_ts: i64,
}

impl SensorStream {
    /// Create a generator.
    pub fn new(config: SensorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        SensorStream { config, rng, next_ts: 0 }
    }

    /// The stream schema.
    pub fn schema() -> Schema {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("sensor", DataType::Int),
            ("temp", DataType::Float),
        ])
    }

    /// DDL creating the stream.
    pub fn create_stream_sql(name: &str) -> String {
        format!("CREATE STREAM {name} (ts TIMESTAMP, sensor BIGINT, temp DOUBLE)")
    }

    /// Materialize the next `n` rows.
    pub fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_row()).collect()
    }

    fn next_row(&mut self) -> Row {
        let ts = self.next_ts;
        self.next_ts += self.config.tick_us;
        let sensor = self.rng.gen_range(0..self.config.sensors) as i64;
        let temp = self.config.mean
            + self.config.amplitude * (self.rng.gen::<f64>() * 2.0 - 1.0);
        vec![Value::Timestamp(ts), Value::Int(sensor), Value::Float(temp)]
    }
}

impl Iterator for SensorStream {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        Some(self.next_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SensorStream::new(SensorConfig::default());
        let mut b = SensorStream::new(SensorConfig::default());
        assert_eq!(a.take_rows(50), b.take_rows(50));
    }

    #[test]
    fn timestamps_monotone() {
        let mut s = SensorStream::new(SensorConfig::default());
        let rows = s.take_rows(100);
        let ts: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn rows_match_schema() {
        let mut s = SensorStream::new(SensorConfig::default());
        let schema = SensorStream::schema();
        for row in s.take_rows(20) {
            schema.validate_row(&row).unwrap();
        }
    }

    #[test]
    fn sensor_ids_bounded() {
        let mut s = SensorStream::new(SensorConfig { sensors: 4, ..Default::default() });
        for row in s.take_rows(200) {
            let id = row[1].as_int().unwrap();
            assert!((0..4).contains(&id));
        }
    }
}
