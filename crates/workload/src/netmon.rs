//! Network-monitoring packet stream — "the recent and continuously
//! expanding massive cloud infrastructures require continuous monitoring to
//! remain in good state and prevent fraud attacks" (paper §1).
//!
//! Generates flow records with a configurable population of "heavy hitter"
//! hosts and occasional scan bursts, the patterns the demo's monitoring
//! queries look for.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datacell_storage::{DataType, Row, Schema, Value};

/// Configuration for the packet stream.
#[derive(Debug, Clone)]
pub struct NetmonConfig {
    /// Host population (src/dst drawn from it).
    pub hosts: u32,
    /// Share of traffic produced by the 1% heaviest sources.
    pub heavy_share: f64,
    /// Probability a packet belongs to a port-scan burst.
    pub scan_rate: f64,
    /// Microseconds between packets.
    pub tick_us: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NetmonConfig {
    fn default() -> Self {
        NetmonConfig { hosts: 5000, heavy_share: 0.3, scan_rate: 0.01, tick_us: 50, seed: 11 }
    }
}

/// Generator of `(ts, src, dst, port, proto, len)` rows.
#[derive(Debug)]
pub struct NetmonStream {
    config: NetmonConfig,
    rng: StdRng,
    next_ts: i64,
    heavy_hosts: u32,
}

impl NetmonStream {
    /// Create a generator.
    pub fn new(config: NetmonConfig) -> Self {
        let heavy_hosts = (config.hosts / 100).max(1);
        NetmonStream {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            next_ts: 0,
            heavy_hosts,
        }
    }

    /// The stream schema.
    pub fn schema() -> Schema {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("src", DataType::Int),
            ("dst", DataType::Int),
            ("port", DataType::Int),
            ("proto", DataType::Int),
            ("len", DataType::Int),
        ])
    }

    /// DDL creating the stream.
    pub fn create_stream_sql(name: &str) -> String {
        format!(
            "CREATE STREAM {name} (ts TIMESTAMP, src BIGINT, dst BIGINT, port BIGINT, proto BIGINT, len BIGINT)"
        )
    }

    /// Materialize the next `n` rows.
    pub fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_row()).collect()
    }

    fn next_row(&mut self) -> Row {
        let ts = self.next_ts;
        self.next_ts += self.config.tick_us;
        let src = if self.rng.gen::<f64>() < self.config.heavy_share {
            self.rng.gen_range(0..self.heavy_hosts) as i64
        } else {
            self.rng.gen_range(0..self.config.hosts) as i64
        };
        let dst = self.rng.gen_range(0..self.config.hosts) as i64;
        let scanning = self.rng.gen::<f64>() < self.config.scan_rate;
        let port = if scanning {
            // scans walk the port space
            self.rng.gen_range(1..65_536)
        } else {
            [80i64, 443, 22, 53, 8080]
                .get(self.rng.gen_range(0..5usize))
                .copied()
                .unwrap_or(80)
        };
        let proto = if port == 53 { 17 } else { 6 };
        let len = if scanning { 60 } else { self.rng.gen_range(60..1500) };
        vec![
            Value::Timestamp(ts),
            Value::Int(src),
            Value::Int(dst),
            Value::Int(port),
            Value::Int(proto),
            Value::Int(len),
        ]
    }
}

impl Iterator for NetmonStream {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        Some(self.next_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn heavy_hitters_emerge() {
        let mut s = NetmonStream::new(NetmonConfig::default());
        let mut by_src: HashMap<i64, usize> = HashMap::new();
        for row in s.take_rows(20_000) {
            *by_src.entry(row[1].as_int().unwrap()).or_default() += 1;
        }
        let heavy: usize = (0..50).map(|h| by_src.get(&h).copied().unwrap_or(0)).sum();
        assert!(
            heavy as f64 > 0.2 * 20_000.0,
            "heavy hosts carried only {heavy} packets"
        );
    }

    #[test]
    fn rows_match_schema() {
        let mut s = NetmonStream::new(NetmonConfig::default());
        let schema = NetmonStream::schema();
        for row in s.take_rows(50) {
            schema.validate_row(&row).unwrap();
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NetmonStream::new(NetmonConfig::default());
        let mut b = NetmonStream::new(NetmonConfig::default());
        assert_eq!(a.take_rows(64), b.take_rows(64));
    }
}
