//! Web-log (clickstream) workload — "web log analysis requires fast
//! analysis of big streaming data for decision support" (paper §1).
//!
//! Zipf-skewed URL popularity and a small user population make this the
//! grouping-heavy workload: top-k pages, per-user session volumes, error
//! rate monitoring.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datacell_storage::{DataType, Row, Schema, Value};

/// Configuration for the clickstream.
#[derive(Debug, Clone)]
pub struct WeblogConfig {
    /// Distinct users.
    pub users: u32,
    /// Distinct URLs.
    pub urls: u32,
    /// Zipf-like skew exponent for URL popularity (0 = uniform).
    pub skew: f64,
    /// Fraction of requests that fail (status 500).
    pub error_rate: f64,
    /// Microseconds between clicks.
    pub tick_us: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WeblogConfig {
    fn default() -> Self {
        WeblogConfig {
            users: 1000,
            urls: 500,
            skew: 1.0,
            error_rate: 0.02,
            tick_us: 200,
            seed: 7,
        }
    }
}

/// Generator of `(ts, user, url, status, bytes)` rows.
#[derive(Debug)]
pub struct WeblogStream {
    config: WeblogConfig,
    rng: StdRng,
    next_ts: i64,
    /// Precomputed cumulative Zipf weights over URLs.
    cumulative: Vec<f64>,
}

impl WeblogStream {
    /// Create a generator.
    pub fn new(config: WeblogConfig) -> Self {
        let mut cumulative = Vec::with_capacity(config.urls as usize);
        let mut total = 0.0;
        for i in 1..=config.urls {
            total += 1.0 / (i as f64).powf(config.skew.max(0.0));
            cumulative.push(total);
        }
        WeblogStream {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            next_ts: 0,
            cumulative,
        }
    }

    /// The stream schema.
    pub fn schema() -> Schema {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("user_id", DataType::Int),
            ("url", DataType::Int),
            ("status", DataType::Int),
            ("bytes", DataType::Int),
        ])
    }

    /// DDL creating the stream.
    pub fn create_stream_sql(name: &str) -> String {
        format!(
            "CREATE STREAM {name} (ts TIMESTAMP, user_id BIGINT, url BIGINT, status BIGINT, bytes BIGINT)"
        )
    }

    fn pick_url(&mut self) -> i64 {
        let total = *self.cumulative.last().unwrap_or(&1.0);
        let x = self.rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x) as i64
    }

    /// Materialize the next `n` rows.
    pub fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_row()).collect()
    }

    fn next_row(&mut self) -> Row {
        let ts = self.next_ts;
        self.next_ts += self.config.tick_us;
        let user = self.rng.gen_range(0..self.config.users) as i64;
        let url = self.pick_url();
        let status = if self.rng.gen::<f64>() < self.config.error_rate { 500 } else { 200 };
        let bytes = self.rng.gen_range(200..50_000);
        vec![
            Value::Timestamp(ts),
            Value::Int(user),
            Value::Int(url),
            Value::Int(status),
            Value::Int(bytes),
        ]
    }
}

impl Iterator for WeblogStream {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        Some(self.next_row())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn skew_concentrates_popular_urls() {
        let mut s = WeblogStream::new(WeblogConfig { skew: 1.2, ..Default::default() });
        let mut counts: HashMap<i64, usize> = HashMap::new();
        for row in s.take_rows(20_000) {
            *counts.entry(row[2].as_int().unwrap()).or_default() += 1;
        }
        let top = counts.values().copied().max().unwrap();
        let avg = 20_000 / counts.len().max(1);
        assert!(top > avg * 5, "expected skew: top={top} avg={avg}");
    }

    #[test]
    fn error_rate_approximate() {
        let mut s = WeblogStream::new(WeblogConfig { error_rate: 0.1, ..Default::default() });
        let errors = s
            .take_rows(10_000)
            .iter()
            .filter(|r| r[3] == Value::Int(500))
            .count();
        assert!((500..2000).contains(&errors), "errors={errors}");
    }

    #[test]
    fn rows_match_schema() {
        let mut s = WeblogStream::new(WeblogConfig::default());
        let schema = WeblogStream::schema();
        for row in s.take_rows(20) {
            schema.validate_row(&row).unwrap();
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = WeblogStream::new(WeblogConfig::default());
        let mut b = WeblogStream::new(WeblogConfig::default());
        assert_eq!(a.take_rows(100), b.take_rows(100));
    }
}
