//! Linear Road-inspired traffic workload.
//!
//! The paper claims DataCell "easily meet[s] the requirements of the Linear
//! Road Benchmark in [16]". The original LRB input is produced by the
//! closed MITSIM traffic simulator; this module is the documented
//! substitution (DESIGN.md §3): a synthetic multi-expressway vehicle
//! simulation preserving the schema, the skew (vehicles persist and move
//! between segments), accident dynamics (stopped vehicles congest their
//! segment), and the standard query mix (segment statistics, accident
//! detection, toll/volume monitoring) that stresses multi-query sliding
//! window processing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use datacell_storage::{DataType, Row, Schema, Value};

/// Configuration of the traffic simulation.
#[derive(Debug, Clone)]
pub struct LinearRoadConfig {
    /// Number of expressways.
    pub expressways: u32,
    /// Vehicles per expressway.
    pub vehicles_per_xway: u32,
    /// Segments per expressway (LRB uses 100).
    pub segments: u32,
    /// Seconds between two reports of the same vehicle (LRB uses 30).
    pub report_interval_s: i64,
    /// Probability per report that a moving vehicle breaks down.
    pub accident_rate: f64,
    /// Reports a broken-down vehicle stays stopped.
    pub accident_duration_reports: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LinearRoadConfig {
    fn default() -> Self {
        LinearRoadConfig {
            expressways: 2,
            vehicles_per_xway: 500,
            segments: 100,
            report_interval_s: 30,
            accident_rate: 0.0005,
            accident_duration_reports: 8,
            seed: 1234,
        }
    }
}

#[derive(Debug, Clone)]
struct Vehicle {
    vid: i64,
    xway: i64,
    dir: i64,
    /// Position in feet-like units; segment = pos / 5280.
    pos: f64,
    speed: f64,
    stopped_for: u32,
}

/// Generator of LRB-style position reports
/// `(ts, vid, speed, xway, lane, dir, seg)`.
#[derive(Debug)]
pub struct LinearRoadStream {
    config: LinearRoadConfig,
    rng: StdRng,
    vehicles: Vec<Vehicle>,
    /// Index of the next vehicle to report.
    cursor: usize,
    /// Simulation clock in seconds.
    now_s: i64,
}

impl LinearRoadStream {
    /// Create a simulation.
    pub fn new(config: LinearRoadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut vehicles = Vec::new();
        let mut vid = 0i64;
        for xway in 0..config.expressways {
            for _ in 0..config.vehicles_per_xway {
                vehicles.push(Vehicle {
                    vid,
                    xway: xway as i64,
                    dir: if rng.gen::<bool>() { 0 } else { 1 },
                    pos: rng.gen::<f64>() * config.segments as f64 * 5280.0,
                    speed: rng.gen_range(40.0..70.0),
                    stopped_for: 0,
                });
                vid += 1;
            }
        }
        LinearRoadStream { config, rng, vehicles, cursor: 0, now_s: 0 }
    }

    /// The position-report schema.
    pub fn schema() -> Schema {
        Schema::of(&[
            ("ts", DataType::Timestamp),
            ("vid", DataType::Int),
            ("speed", DataType::Float),
            ("xway", DataType::Int),
            ("lane", DataType::Int),
            ("dir", DataType::Int),
            ("seg", DataType::Int),
        ])
    }

    /// DDL creating the position-report stream.
    pub fn create_stream_sql(name: &str) -> String {
        format!(
            "CREATE STREAM {name} (ts TIMESTAMP, vid BIGINT, speed DOUBLE, \
             xway BIGINT, lane BIGINT, dir BIGINT, seg BIGINT)"
        )
    }

    /// The continuous query mix (LRB-inspired), over stream `name`.
    ///
    /// * segment statistics: average speed per (xway, dir, seg) over a
    ///   5-minute window sliding every minute;
    /// * accident detection: segments with several stopped-vehicle reports
    ///   in the last 2 minutes;
    /// * toll/volume: vehicles per segment over the last minute.
    pub fn standard_queries(name: &str) -> Vec<String> {
        vec![
            format!(
                "SELECT xway, dir, seg, AVG(speed) FROM {name} [RANGE 300 ON ts SLIDE 60] \
                 GROUP BY xway, dir, seg"
            ),
            format!(
                "SELECT xway, seg, COUNT(*) FROM {name} [RANGE 120 ON ts SLIDE 30] \
                 WHERE speed < 1.0 GROUP BY xway, seg HAVING COUNT(*) >= 4"
            ),
            format!(
                "SELECT xway, dir, seg, COUNT(*) FROM {name} [RANGE 60 ON ts SLIDE 60] \
                 GROUP BY xway, dir, seg"
            ),
        ]
    }

    /// Total vehicles simulated.
    pub fn vehicle_count(&self) -> usize {
        self.vehicles.len()
    }

    /// Materialize the next `n` reports.
    pub fn take_rows(&mut self, n: usize) -> Vec<Row> {
        (0..n).map(|_| self.next_report()).collect()
    }

    fn next_report(&mut self) -> Row {
        if self.cursor >= self.vehicles.len() {
            self.cursor = 0;
            self.now_s += self.config.report_interval_s;
        }
        let segments = self.config.segments as f64;
        let accident_rate = self.config.accident_rate;
        let accident_duration = self.config.accident_duration_reports;
        // Decide accident state & movement.
        let (slowed, seg_of_stopped) = {
            let v = &self.vehicles[self.cursor];
            if v.stopped_for > 0 {
                (true, Some((v.xway, v.dir, (v.pos / 5280.0) as i64)))
            } else {
                (false, None)
            }
        };
        let _ = slowed;
        // Congestion: vehicles in a segment with a stopped vehicle slow down.
        let congested: Option<(i64, i64, i64)> = seg_of_stopped;

        let v = &mut self.vehicles[self.cursor];
        self.cursor += 1;

        if v.stopped_for > 0 {
            v.stopped_for -= 1;
            v.speed = 0.0;
        } else if self.rng.gen::<f64>() < accident_rate {
            v.stopped_for = accident_duration;
            v.speed = 0.0;
        } else {
            // cruise with noise; slow near congestion
            let target = if congested.is_some() { 15.0 } else { 55.0 };
            v.speed += (target - v.speed) * 0.3 + self.rng.gen_range(-5.0..5.0);
            v.speed = v.speed.clamp(0.0, 80.0);
        }
        // advance position: speed mph ≈ 1.47 ft/s.
        let dt = self.config.report_interval_s as f64;
        let dirsign = if v.dir == 0 { 1.0 } else { -1.0 };
        v.pos += dirsign * v.speed * 1.47 * dt;
        let track_len = segments * 5280.0;
        if v.pos < 0.0 {
            v.pos += track_len;
        } else if v.pos >= track_len {
            v.pos -= track_len;
        }
        let seg = (v.pos / 5280.0) as i64;
        let lane = self.rng.gen_range(0..4);

        vec![
            Value::Timestamp(self.now_s),
            Value::Int(v.vid),
            Value::Float((v.speed * 100.0).round() / 100.0),
            Value::Int(v.xway),
            Value::Int(lane),
            Value::Int(v.dir),
            Value::Int(seg),
        ]
    }
}

impl Iterator for LinearRoadStream {
    type Item = Row;

    fn next(&mut self) -> Option<Row> {
        Some(self.next_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LinearRoadConfig {
        LinearRoadConfig {
            expressways: 1,
            vehicles_per_xway: 50,
            accident_rate: 0.01,
            ..Default::default()
        }
    }

    #[test]
    fn rows_match_schema() {
        let mut s = LinearRoadStream::new(small());
        let schema = LinearRoadStream::schema();
        for row in s.take_rows(200) {
            schema.validate_row(&row).unwrap();
        }
    }

    #[test]
    fn timestamps_advance_every_round() {
        let mut s = LinearRoadStream::new(small());
        let n = s.vehicle_count();
        let rows = s.take_rows(n * 3);
        let first_round_ts = rows[0][0].as_int().unwrap();
        let second_round_ts = rows[n][0].as_int().unwrap();
        assert_eq!(second_round_ts - first_round_ts, 30);
    }

    #[test]
    fn vehicles_eventually_stop_and_recover() {
        let mut s = LinearRoadStream::new(small());
        let rows = s.take_rows(50 * 40);
        let stopped = rows
            .iter()
            .filter(|r| r[2].as_float().unwrap() == 0.0)
            .count();
        assert!(stopped > 0, "no accidents simulated");
        let moving = rows
            .iter()
            .filter(|r| r[2].as_float().unwrap() > 0.0)
            .count();
        assert!(moving > stopped, "traffic should mostly flow");
    }

    #[test]
    fn segments_in_range() {
        let mut s = LinearRoadStream::new(small());
        for row in s.take_rows(1000) {
            let seg = row[6].as_int().unwrap();
            assert!((0..100).contains(&seg), "segment {seg} out of range");
        }
    }

    #[test]
    fn standard_queries_are_parseable() {
        for q in LinearRoadStream::standard_queries("lr") {
            datacell_sql::parse_statement(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = LinearRoadStream::new(small());
        let mut b = LinearRoadStream::new(small());
        assert_eq!(a.take_rows(100), b.take_rows(100));
    }
}
