//! Fault-plan vocabulary: typed injection points, fault kinds, triggers
//! and the parsed [`FaultPlan`].
//!
//! A plan is a seeded, schedule-driven description of *which* operations
//! fail, *when*, and *how*. The textual form (accepted by
//! [`FaultPlan::parse`], produced by `Display`) is what operators put in
//! the `DATACELL_FAULT_PLAN` environment variable:
//!
//! ```text
//! plan    := clause (';' clause)*
//! clause  := 'seed=' u64 | rule
//! rule    := point ':' trigger ':' kind
//! point   := wal_append | wal_fsync | snapshot_rename | socket_read
//!          | socket_write | alloc_budget | scheduler_stall
//! trigger := 'nth=' n | 'p=' probability | 'win=' lo '..' hi
//! kind    := eio | enospc | short | stall
//! ```
//!
//! Example: `seed=42;wal_fsync:nth=2:eio;socket_write:p=0.01:stall` — the
//! second fsync anywhere fails with `EIO`, and every socket write fails
//! into a stall with probability 1% (drawn from the seeded generator, so
//! the whole schedule is reproducible).

use std::fmt;
use std::str::FromStr;

/// A typed operation the runtime offers for injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// A stream-segment batch append (frame write).
    WalAppend,
    /// An fsync of a stream segment or the meta log.
    WalFsync,
    /// The atomic tmp-file rename publishing a catalog snapshot.
    SnapshotRename,
    /// A server-side socket read.
    SocketRead,
    /// A server-side socket write.
    SocketWrite,
    /// A memory-budget admission check (forces the over-budget path).
    AllocBudget,
    /// A scheduler pass (injects an artificial stall).
    SchedulerStall,
}

impl FaultPoint {
    /// Every injection point, in index order.
    pub const ALL: [FaultPoint; 7] = [
        FaultPoint::WalAppend,
        FaultPoint::WalFsync,
        FaultPoint::SnapshotRename,
        FaultPoint::SocketRead,
        FaultPoint::SocketWrite,
        FaultPoint::AllocBudget,
        FaultPoint::SchedulerStall,
    ];

    /// Dense index for per-point counter arrays.
    pub fn index(self) -> usize {
        match self {
            FaultPoint::WalAppend => 0,
            FaultPoint::WalFsync => 1,
            FaultPoint::SnapshotRename => 2,
            FaultPoint::SocketRead => 3,
            FaultPoint::SocketWrite => 4,
            FaultPoint::AllocBudget => 5,
            FaultPoint::SchedulerStall => 6,
        }
    }

    /// The token used in plan strings and metrics labels.
    pub fn token(self) -> &'static str {
        match self {
            FaultPoint::WalAppend => "wal_append",
            FaultPoint::WalFsync => "wal_fsync",
            FaultPoint::SnapshotRename => "snapshot_rename",
            FaultPoint::SocketRead => "socket_read",
            FaultPoint::SocketWrite => "socket_write",
            FaultPoint::AllocBudget => "alloc_budget",
            FaultPoint::SchedulerStall => "scheduler_stall",
        }
    }
}

impl fmt::Display for FaultPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for FaultPoint {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        FaultPoint::ALL
            .into_iter()
            .find(|p| p.token() == s)
            .ok_or_else(|| format!("unknown fault point {s:?}"))
    }
}

/// How an injected fault manifests. The faults crate stays I/O-free: a
/// kind is a *value*; the consumer (the WAL's I/O shim, the server's
/// socket wrappers) converts it into the concrete `io::Error` / stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Transient I/O error (`EIO`) — retryable.
    Eio,
    /// Persistent out-of-space error (`ENOSPC`) — not retryable.
    Enospc,
    /// A short write: only part of the buffer reaches the file before the
    /// operation errors, leaving a torn frame for recovery to truncate.
    ShortWrite,
    /// An artificial delay (the operation succeeds late).
    Stall,
}

impl FaultKind {
    /// The token used in plan strings.
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::ShortWrite => "short",
            FaultKind::Stall => "stall",
        }
    }

    /// Whether a consumer should treat the fault as transient (worth
    /// retrying) rather than persistent.
    pub fn is_retryable(self) -> bool {
        match self {
            FaultKind::Eio | FaultKind::ShortWrite | FaultKind::Stall => true,
            FaultKind::Enospc => false,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "eio" => Ok(FaultKind::Eio),
            "enospc" => Ok(FaultKind::Enospc),
            "short" => Ok(FaultKind::ShortWrite),
            "stall" => Ok(FaultKind::Stall),
            other => Err(format!("unknown fault kind {other:?}")),
        }
    }
}

/// When a rule fires, in terms of the per-point call counter (1-based).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on exactly the `n`th call.
    Nth(u64),
    /// Fire on every call in `[from, to)`.
    Window {
        /// First firing call number (1-based, inclusive).
        from: u64,
        /// One past the last firing call number.
        to: u64,
    },
    /// Fire on each call with this probability, drawn from the plan's
    /// seeded generator (deterministic for a given seed and call order).
    Prob(f64),
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Nth(n) => write!(f, "nth={n}"),
            Trigger::Window { from, to } => write!(f, "win={from}..{to}"),
            Trigger::Prob(p) => write!(f, "p={p}"),
        }
    }
}

impl FromStr for Trigger {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if let Some(n) = s.strip_prefix("nth=") {
            let n: u64 =
                n.parse().map_err(|_| format!("bad nth trigger {s:?} (want nth=<n>)"))?;
            if n == 0 {
                return Err("nth trigger is 1-based; nth=0 never fires".into());
            }
            return Ok(Trigger::Nth(n));
        }
        if let Some(p) = s.strip_prefix("p=") {
            let p: f64 =
                p.parse().map_err(|_| format!("bad probability trigger {s:?} (want p=<0..1>)"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} out of [0, 1]"));
            }
            return Ok(Trigger::Prob(p));
        }
        if let Some(range) = s.strip_prefix("win=") {
            let (lo, hi) = range
                .split_once("..")
                .ok_or_else(|| format!("bad window trigger {s:?} (want win=<lo>..<hi>)"))?;
            let from: u64 =
                lo.parse().map_err(|_| format!("bad window start in {s:?}"))?;
            let to: u64 = hi.parse().map_err(|_| format!("bad window end in {s:?}"))?;
            if from == 0 || to <= from {
                return Err(format!("window {from}..{to} is empty or 0-based (calls are 1-based)"));
            }
            return Ok(Trigger::Window { from, to });
        }
        Err(format!("unknown trigger {s:?} (want nth=<n> | p=<prob> | win=<lo>..<hi>)"))
    }
}

/// One injection rule: at `point`, when `trigger` matches, inject `kind`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Where the fault is injected.
    pub point: FaultPoint,
    /// When it fires.
    pub trigger: Trigger,
    /// What happens.
    pub kind: FaultKind,
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.point, self.trigger, self.kind)
    }
}

/// A parsed, immutable fault schedule (seed + ordered rules; the first
/// matching rule per call wins).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the probabilistic triggers' generator.
    pub seed: u64,
    /// Rules, in declaration order.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parse the textual plan form (see the module docs for the grammar).
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed =
                    seed.parse().map_err(|_| format!("bad seed clause {clause:?}"))?;
                continue;
            }
            let mut parts = clause.splitn(3, ':');
            let (point, trigger, kind) = match (parts.next(), parts.next(), parts.next()) {
                (Some(p), Some(t), Some(k)) => (p, t, k),
                _ => {
                    return Err(format!(
                        "bad rule {clause:?} (want <point>:<trigger>:<kind>)"
                    ))
                }
            };
            plan.rules.push(FaultRule {
                point: point.trim().parse()?,
                trigger: trigger.trim().parse()?,
                kind: kind.trim().parse()?,
            });
        }
        Ok(plan)
    }

    /// Whether the plan holds any rule for `point`.
    pub fn covers(&self, point: FaultPoint) -> bool {
        self.rules.iter().any(|r| r.point == point)
    }

    /// Whether every rule injects a retryable fault kind (a plan under
    /// which a resilient runtime must remain byte-identical to fault-free).
    pub fn all_retryable(&self) -> bool {
        self.rules.iter().all(|r| r.kind.is_retryable())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for rule in &self.rules {
            write!(f, ";{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_plan() {
        let plan =
            FaultPlan::parse("seed=42; wal_fsync:nth=2:eio ;socket_write:p=0.25:stall").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(
            plan.rules[0],
            FaultRule {
                point: FaultPoint::WalFsync,
                trigger: Trigger::Nth(2),
                kind: FaultKind::Eio,
            }
        );
        assert!(plan.covers(FaultPoint::SocketWrite));
        assert!(!plan.covers(FaultPoint::WalAppend));
        assert!(plan.all_retryable());
    }

    #[test]
    fn parse_window_and_enospc() {
        let plan = FaultPlan::parse("wal_append:win=3..6:enospc").unwrap();
        assert_eq!(
            plan.rules[0].trigger,
            Trigger::Window { from: 3, to: 6 }
        );
        assert!(!plan.all_retryable());
    }

    #[test]
    fn display_roundtrips() {
        let text = "seed=7;wal_append:nth=1:short;scheduler_stall:win=2..9:stall;wal_fsync:p=0.5:eio";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.to_string(), text);
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("wal_append").is_err());
        assert!(FaultPlan::parse("nowhere:nth=1:eio").is_err());
        assert!(FaultPlan::parse("wal_append:always:eio").is_err());
        assert!(FaultPlan::parse("wal_append:nth=0:eio").is_err());
        assert!(FaultPlan::parse("wal_append:win=0..3:eio").is_err());
        assert!(FaultPlan::parse("wal_append:win=5..5:eio").is_err());
        assert!(FaultPlan::parse("wal_append:p=1.5:eio").is_err());
        assert!(FaultPlan::parse("wal_append:nth=1:boom").is_err());
    }

    #[test]
    fn empty_plan_is_valid_and_inert() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.rules.is_empty());
        assert!(plan.all_retryable());
    }

    #[test]
    fn point_tokens_roundtrip() {
        for p in FaultPoint::ALL {
            assert_eq!(p.token().parse::<FaultPoint>().unwrap(), p);
        }
        assert_eq!(FaultPoint::ALL.map(FaultPoint::index), [0, 1, 2, 3, 4, 5, 6]);
    }
}
