//! # datacell-faults
//!
//! Deterministic fault injection for the DataCell runtime. Resilience
//! claims are only testable if failure is reproducible: this crate turns
//! "what if the second fsync fails" into a value — a seeded, schedule-
//! driven [`FaultPlan`] with typed injection points ([`FaultPoint`]) and
//! typed outcomes ([`FaultKind`]) — consulted through a zero-cost-when-
//! disabled facade ([`Faults`]).
//!
//! The crate is a dependency-free leaf, like `datacell-obs`: it performs
//! **no I/O** and never constructs an `io::Error` itself. A fired rule is
//! just a [`FaultKind`] value; the consumer owning the real operation
//! (the WAL's I/O shim, the server's socket wrappers, the engine's
//! admission check) decides what `eio`/`enospc`/`short`/`stall` mean
//! there. That keeps every schedule rule unit-testable and lets the same
//! plan drive file, socket and scheduler faults coherently.
//!
//! ```
//! use datacell_faults::{FaultKind, FaultPlan, FaultPoint, Faults};
//!
//! let plan = FaultPlan::parse("seed=1;wal_fsync:nth=2:eio").unwrap();
//! let faults = Faults::enabled(plan);
//! assert_eq!(faults.check(FaultPoint::WalFsync), None);
//! assert_eq!(faults.check(FaultPoint::WalFsync), Some(FaultKind::Eio));
//! assert_eq!(faults.injected_total(), 1);
//!
//! // The production default costs one branch per check.
//! let off = Faults::disabled();
//! assert_eq!(off.check(FaultPoint::WalFsync), None);
//! ```

#![warn(missing_docs)]

mod facade;
mod plan;

pub use facade::Faults;
pub use plan::{FaultKind, FaultPlan, FaultPoint, FaultRule, Trigger};
