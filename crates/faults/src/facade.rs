//! The runtime facade: a cheap-to-clone handle the engine threads consult
//! at each injection point. Disabled (the default) it is a single `None`
//! branch — no atomics, no allocation, no rule scan — so production code
//! pays nothing for carrying it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::plan::{FaultKind, FaultPlan, FaultPoint, Trigger};

const POINTS: usize = FaultPoint::ALL.len();

/// Live plan state: the immutable schedule plus per-point call/injection
/// counters and the seeded generator for probabilistic triggers.
#[derive(Debug)]
pub(crate) struct PlanState {
    plan: FaultPlan,
    calls: [AtomicU64; POINTS],
    injected: [AtomicU64; POINTS],
    rng: AtomicU64,
}

impl PlanState {
    fn new(plan: FaultPlan) -> PlanState {
        // SplitMix-style seed scramble; force odd so xorshift never
        // degenerates to the all-zero fixed point.
        let rng = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        PlanState {
            plan,
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            rng: AtomicU64::new(rng),
        }
    }

    /// One uniform draw in `[0, 1)` (xorshift64*, lock-free).
    fn roll(&self) -> f64 {
        let mut cur = self.rng.load(Ordering::Relaxed);
        loop {
            let mut x = cur;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match self
                .rng
                .compare_exchange_weak(cur, x, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    let scaled = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
                    return (scaled >> 11) as f64 / (1u64 << 53) as f64;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    fn check(&self, point: FaultPoint) -> Option<FaultKind> {
        let i = point.index();
        let n = self.calls[i].fetch_add(1, Ordering::Relaxed) + 1;
        let mut hit = None;
        for rule in &self.plan.rules {
            if rule.point != point {
                continue;
            }
            let fire = match rule.trigger {
                Trigger::Nth(k) => n == k,
                Trigger::Window { from, to } => n >= from && n < to,
                Trigger::Prob(p) => self.roll() < p,
            };
            if fire {
                hit = Some(rule.kind);
                break;
            }
        }
        if hit.is_some() {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

/// The handle threaded through WAL, engine and server code. Clones share
/// one counter set, so a plan's schedule is global across threads.
#[derive(Debug, Clone, Default)]
pub struct Faults(Option<Arc<PlanState>>);

impl Faults {
    /// The no-op facade (the production default).
    pub fn disabled() -> Faults {
        Faults(None)
    }

    /// Activate a plan.
    pub fn enabled(plan: FaultPlan) -> Faults {
        Faults(Some(Arc::new(PlanState::new(plan))))
    }

    /// Whether a plan is active.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The active plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.0.as_deref().map(|s| &s.plan)
    }

    /// Consult the schedule at one injection point. Counts the call and,
    /// when a rule fires, returns the fault the consumer must act out.
    /// Disabled facades return `None` without touching any counter.
    #[inline]
    pub fn check(&self, point: FaultPoint) -> Option<FaultKind> {
        let state = self.0.as_deref()?;
        state.check(point)
    }

    /// Calls observed at `point` so far (0 when disabled).
    pub fn calls(&self, point: FaultPoint) -> u64 {
        self.0
            .as_deref()
            .map_or(0, |s| s.calls[point.index()].load(Ordering::Relaxed))
    }

    /// Faults injected at `point` so far (0 when disabled).
    pub fn injected(&self, point: FaultPoint) -> u64 {
        self.0
            .as_deref()
            .map_or(0, |s| s.injected[point.index()].load(Ordering::Relaxed))
    }

    /// Total faults injected across every point.
    pub fn injected_total(&self) -> u64 {
        FaultPoint::ALL.iter().map(|&p| self.injected(p)).sum()
    }
}

impl PartialEq for Faults {
    /// Facades compare by schedule (two handles over equal plans are
    /// interchangeable configuration-wise, even if their counters differ).
    fn eq(&self, other: &Faults) -> bool {
        self.plan() == other.plan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let f = Faults::disabled();
        assert!(!f.is_enabled());
        for p in FaultPoint::ALL {
            assert_eq!(f.check(p), None);
            assert_eq!(f.calls(p), 0);
            assert_eq!(f.injected(p), 0);
        }
        assert_eq!(f.injected_total(), 0);
        assert_eq!(f, Faults::default());
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let f = Faults::enabled(FaultPlan::parse("wal_fsync:nth=3:eio").unwrap());
        let hits: Vec<_> = (0..6).map(|_| f.check(FaultPoint::WalFsync)).collect();
        assert_eq!(hits, vec![None, None, Some(FaultKind::Eio), None, None, None]);
        assert_eq!(f.calls(FaultPoint::WalFsync), 6);
        assert_eq!(f.injected(FaultPoint::WalFsync), 1);
        assert_eq!(f.injected_total(), 1);
        // Other points are untouched.
        assert_eq!(f.check(FaultPoint::WalAppend), None);
        assert_eq!(f.injected(FaultPoint::WalAppend), 0);
    }

    #[test]
    fn window_trigger_fires_in_range() {
        let f = Faults::enabled(FaultPlan::parse("socket_read:win=2..4:stall").unwrap());
        let hits: Vec<_> = (0..5).map(|_| f.check(FaultPoint::SocketRead)).collect();
        assert_eq!(
            hits,
            vec![None, Some(FaultKind::Stall), Some(FaultKind::Stall), None, None]
        );
        assert_eq!(f.injected(FaultPoint::SocketRead), 2);
    }

    #[test]
    fn first_matching_rule_wins() {
        let f = Faults::enabled(
            FaultPlan::parse("wal_append:nth=1:enospc;wal_append:win=1..9:eio").unwrap(),
        );
        assert_eq!(f.check(FaultPoint::WalAppend), Some(FaultKind::Enospc));
        assert_eq!(f.check(FaultPoint::WalAppend), Some(FaultKind::Eio));
    }

    #[test]
    fn probabilistic_trigger_is_seeded_and_deterministic() {
        let run = |seed: u64| {
            let f = Faults::enabled(
                FaultPlan::parse(&format!("seed={seed};wal_append:p=0.5:eio")).unwrap(),
            );
            (0..64).map(|_| f.check(FaultPoint::WalAppend).is_some()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7), "same seed must reproduce the schedule");
        assert_ne!(run(7), run(8), "distinct seeds should diverge");
        let hits = run(7).iter().filter(|h| **h).count();
        assert!((8..=56).contains(&hits), "p=0.5 over 64 draws hit {hits} times");
    }

    #[test]
    fn probability_extremes() {
        let never = Faults::enabled(FaultPlan::parse("wal_fsync:p=0:eio").unwrap());
        assert!((0..32).all(|_| never.check(FaultPoint::WalFsync).is_none()));
        let always = Faults::enabled(FaultPlan::parse("wal_fsync:p=1:eio").unwrap());
        assert!((0..32).all(|_| always.check(FaultPoint::WalFsync).is_some()));
    }

    #[test]
    fn clones_share_one_schedule() {
        let f = Faults::enabled(FaultPlan::parse("wal_fsync:nth=2:eio").unwrap());
        let g = f.clone();
        assert_eq!(f.check(FaultPoint::WalFsync), None);
        assert_eq!(g.check(FaultPoint::WalFsync), Some(FaultKind::Eio));
        assert_eq!(f.injected(FaultPoint::WalFsync), 1);
    }
}
