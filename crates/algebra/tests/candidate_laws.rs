//! Property-based laws of the candidate-list algebra, checked against a
//! `BTreeSet` reference model. Candidate lists are the universal
//! intermediate of the kernel; if these laws break, every plan breaks.

use std::collections::BTreeSet;

use datacell_algebra::{
    aggregate_all, fetch, select, AggKind, Candidates, CmpOp,
};
use datacell_storage::{Bat, Value};
use proptest::prelude::*;

fn model(c: &Candidates) -> BTreeSet<u64> {
    c.iter().collect()
}

fn arb_candidates() -> impl Strategy<Value = Candidates> {
    prop_oneof![
        // dense ranges
        (0u64..64, 0u64..64).prop_map(|(a, b)| Candidates::range(a.min(b), a.max(b))),
        // sorted deduplicated lists
        prop::collection::btree_set(0u64..96, 0..32)
            .prop_map(|s| Candidates::from_sorted(s.into_iter().collect())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn intersection_matches_set_model(a in arb_candidates(), b in arb_candidates()) {
        let got = model(&a.intersect(&b));
        let want: BTreeSet<u64> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn union_matches_set_model(a in arb_candidates(), b in arb_candidates()) {
        let got = model(&a.union(&b));
        let want: BTreeSet<u64> = model(&a).union(&model(&b)).copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn complement_matches_set_model(a in arb_candidates(), hi in 0u64..96) {
        let got = model(&a.complement(0, hi));
        let want: BTreeSet<u64> = (0..hi).filter(|o| !model(&a).contains(o)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn operations_are_commutative(a in arb_candidates(), b in arb_candidates()) {
        prop_assert_eq!(model(&a.intersect(&b)), model(&b.intersect(&a)));
        prop_assert_eq!(model(&a.union(&b)), model(&b.union(&a)));
    }

    #[test]
    fn dense_normalization_is_canonical(a in arb_candidates()) {
        // from_sorted(to_vec()) must round-trip to an equal set and the
        // same representation (dense stays dense).
        let rebuilt = Candidates::from_sorted(a.to_vec());
        prop_assert_eq!(model(&a), model(&rebuilt));
        if !a.is_empty() {
            let span = a.last().unwrap() - a.first().unwrap() + 1;
            prop_assert_eq!(rebuilt.is_dense(), span == a.len() as u64);
        }
    }

    #[test]
    fn contains_agrees_with_iteration(a in arb_candidates(), probe in 0u64..100) {
        prop_assert_eq!(a.contains(probe), model(&a).contains(&probe));
    }

    /// Chained selects (the plan compiler's AND) equal candidate
    /// intersection of independent selects.
    #[test]
    fn conjunction_equals_intersection(
        values in prop::collection::vec(-50i64..50, 1..200),
        lo in -50i64..0,
        hi in 0i64..50,
    ) {
        let bat = Bat::from_ints(values);
        let ge = select(&bat, None, CmpOp::Ge, &Value::Int(lo)).unwrap();
        let le = select(&bat, None, CmpOp::Le, &Value::Int(hi)).unwrap();
        let chained = select(&bat, Some(&ge), CmpOp::Le, &Value::Int(hi)).unwrap();
        prop_assert_eq!(model(&chained), model(&ge.intersect(&le)));
    }

    /// select + fetch + aggregate equals a scalar reference computation.
    #[test]
    fn select_fetch_aggregate_pipeline(
        values in prop::collection::vec(-1000i64..1000, 0..300),
        threshold in -1000i64..1000,
    ) {
        let bat = Bat::from_ints(values.clone());
        let cand = select(&bat, None, CmpOp::Gt, &Value::Int(threshold)).unwrap();
        let fetched = fetch(&bat, &cand);
        let sum = aggregate_all(AggKind::Sum, &fetched, None).finalize();
        let expected: i64 = values.iter().filter(|&&v| v > threshold).sum();
        let any = values.iter().any(|&v| v > threshold);
        if any {
            prop_assert_eq!(sum, Value::Int(expected));
        } else {
            prop_assert_eq!(sum, Value::Null);
        }
        // count via candidates must agree with fetched length
        prop_assert_eq!(cand.len(), fetched.len());
    }
}
