//! Equi-joins over single columns, MonetDB-style: the join operates on two
//! BATs and yields aligned *position/OID* vectors; value materialization
//! happens afterwards by fetching (late reconstruction).
//!
//! The hash table is a first-class, reusable object ([`JoinHashTable`])
//! because DataCell's incremental mode keeps per-basic-window hash tables
//! alive across window slides and only builds tables for the newly arrived
//! delta (paper §3, "Sliding Window Processing"). For that reason the table
//! keys map to *OIDs*, which stay stable as more deltas are inserted, rather
//! than to positions inside any one BAT.

use std::collections::HashMap;

use datacell_storage::{Bat, Oid, Value};

use crate::candidates::Candidates;
use crate::error::{AlgebraError, Result};

/// Hashable join key. Floats are keyed by bit pattern (exact equality),
/// NULL keys are excluded entirely (SQL: NULL never equi-joins).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JoinKey {
    /// Integer / timestamp key.
    Int(i64),
    /// Float key by bit pattern.
    FloatBits(u64),
    /// Boolean key.
    Bool(bool),
    /// String key.
    Str(String),
}

impl JoinKey {
    /// Build a key from a non-NULL value; `None` for NULL.
    pub fn from_value(v: &Value) -> Option<JoinKey> {
        match v {
            Value::Null => None,
            Value::Int(i) | Value::Timestamp(i) => Some(JoinKey::Int(*i)),
            Value::Float(x) => Some(JoinKey::FloatBits(x.to_bits())),
            Value::Bool(b) => Some(JoinKey::Bool(*b)),
            Value::Str(s) => Some(JoinKey::Str(s.clone())),
        }
    }
}

/// A built hash table over one column: key → build-side OIDs.
#[derive(Debug, Clone, Default)]
pub struct JoinHashTable {
    map: HashMap<JoinKey, Vec<Oid>>,
    rows: usize,
}

impl JoinHashTable {
    /// Build from `bat`, restricted to `cand` when given.
    pub fn build(bat: &Bat, cand: Option<&Candidates>) -> Self {
        let mut table = JoinHashTable::default();
        table.insert(bat, cand);
        table
    }

    /// Add (more of) a column to the table — used by incremental builds.
    /// Inserted entries are keyed by the BAT's OIDs, so deltas with later
    /// OID bases accumulate consistently.
    pub fn insert(&mut self, bat: &Bat, cand: Option<&Candidates>) {
        let full = Candidates::all(bat);
        let cand = cand.unwrap_or(&full);
        let base = bat.oid_base();
        for pos in cand.positions_in(bat) {
            if let Some(key) = JoinKey::from_value(&bat.get_at(pos)) {
                self.map.entry(key).or_default().push(base + pos as u64);
                self.rows += 1;
            }
        }
    }

    /// Number of keyed rows in the table.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff no rows were inserted.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Build-side OIDs matching `value`, if any.
    pub fn probe_value(&self, value: &Value) -> Option<&[Oid]> {
        JoinKey::from_value(value)
            .and_then(|k| self.map.get(&k))
            .map(Vec::as_slice)
    }

    /// Probe every candidate row of `probe` against the table; returns
    /// aligned `(probe_positions, build_oids)` pairs.
    pub fn probe(&self, probe: &Bat, cand: Option<&Candidates>) -> (Vec<usize>, Vec<Oid>) {
        let full = Candidates::all(probe);
        let cand = cand.unwrap_or(&full);
        let mut lp = Vec::new();
        let mut ro = Vec::new();
        // Typed fast path for int probes: avoid Value construction per row.
        if let (Some(ints), false) = (probe.data().as_ints(), probe.has_nulls()) {
            for pos in cand.positions_in(probe) {
                if let Some(matches) = self.map.get(&JoinKey::Int(ints[pos])) {
                    for &m in matches {
                        lp.push(pos);
                        ro.push(m);
                    }
                }
            }
            return (lp, ro);
        }
        for pos in cand.positions_in(probe) {
            if let Some(matches) = self.probe_value(&probe.get_at(pos)) {
                for &m in matches {
                    lp.push(pos);
                    ro.push(m);
                }
            }
        }
        (lp, ro)
    }
}

/// Inner equi-join: `(left_positions, right_positions)` of matching pairs.
/// Builds on the right input, probes with the left, so output is ordered by
/// left position (useful for stream⋈table where the stream drives).
pub fn hash_join(
    left: &Bat,
    right: &Bat,
    lcand: Option<&Candidates>,
    rcand: Option<&Candidates>,
) -> (Vec<usize>, Vec<usize>) {
    let table = JoinHashTable::build(right, rcand);
    let (lp, roids) = table.probe(left, lcand);
    let rbase = right.oid_base();
    let rp = roids.into_iter().map(|o| (o - rbase) as usize).collect();
    (lp, rp)
}

/// Merge join over two *sorted* int columns (ablation comparator for the
/// hash join; also exercises the sorted-candidate machinery).
pub fn merge_join_sorted_ints(left: &Bat, right: &Bat) -> Result<(Vec<usize>, Vec<usize>)> {
    let a = left
        .data()
        .as_ints()
        .ok_or(AlgebraError::UnsupportedType { op: "mergejoin", ty: left.data_type() })?;
    let b = right
        .data()
        .as_ints()
        .ok_or(AlgebraError::UnsupportedType { op: "mergejoin", ty: right.data_type() })?;
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "left input must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "right input must be sorted");
    let mut lp = Vec::new();
    let mut rp = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // emit the full cross product of the equal runs
                let v = a[i];
                let i0 = i;
                while i < a.len() && a[i] == v {
                    i += 1;
                }
                let j0 = j;
                while j < b.len() && b[j] == v {
                    j += 1;
                }
                for x in i0..i {
                    for y in j0..j {
                        lp.push(x);
                        rp.push(y);
                    }
                }
            }
        }
    }
    Ok((lp, rp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::{DataType, Vector};

    #[test]
    fn inner_join_matches_pairs() {
        let l = Bat::from_ints(vec![1, 2, 3, 2]);
        let r = Bat::from_ints(vec![2, 4, 2]);
        let (lp, rp) = hash_join(&l, &r, None, None);
        // left positions 1 and 3 (value 2) each match right positions 0 and 2
        let pairs: Vec<(usize, usize)> = lp.into_iter().zip(rp).collect();
        assert_eq!(pairs, vec![(1, 0), (1, 2), (3, 0), (3, 2)]);
    }

    #[test]
    fn join_with_candidates() {
        let l = Bat::from_ints(vec![1, 2, 3]);
        let r = Bat::from_ints(vec![3, 2, 1]);
        let lc = Candidates::List(vec![0, 2]);
        let (lp, rp) = hash_join(&l, &r, Some(&lc), None);
        let pairs: Vec<(usize, usize)> = lp.into_iter().zip(rp).collect();
        assert_eq!(pairs, vec![(0, 2), (2, 0)]);
    }

    #[test]
    fn join_respects_nonzero_bases() {
        let l = Bat::from_vector(vec![7i64, 8].into(), 100);
        let r = Bat::from_vector(vec![8i64, 7].into(), 500);
        let (lp, rp) = hash_join(&l, &r, None, None);
        let pairs: Vec<(usize, usize)> = lp.into_iter().zip(rp).collect();
        assert_eq!(pairs, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn null_keys_never_match() {
        let mut l = Bat::new(DataType::Int);
        l.push(&Value::Null).unwrap();
        l.push(&Value::Int(1)).unwrap();
        let mut r = Bat::new(DataType::Int);
        r.push(&Value::Null).unwrap();
        r.push(&Value::Int(1)).unwrap();
        let (lp, rp) = hash_join(&l, &r, None, None);
        assert_eq!((lp, rp), (vec![1], vec![1]));
    }

    #[test]
    fn string_join() {
        let l = Bat::from_vector(Vector::from(vec!["a".to_string(), "b".into()]), 0);
        let r = Bat::from_vector(Vector::from(vec!["b".to_string(), "c".into()]), 0);
        let (lp, rp) = hash_join(&l, &r, None, None);
        assert_eq!((lp, rp), (vec![1], vec![0]));
    }

    #[test]
    fn incremental_table_reuse() {
        let mut table = JoinHashTable::default();
        table.insert(&Bat::from_ints(vec![1, 2]), None);
        assert_eq!(table.len(), 2);
        // delta arrives later with a later OID base
        let delta = Bat::from_vector(vec![3i64].into(), 2);
        table.insert(&delta, None);
        assert_eq!(table.len(), 3);
        assert_eq!(table.distinct_keys(), 3);
        let probe = Bat::from_ints(vec![3]);
        let (lp, roids) = table.probe(&probe, None);
        assert_eq!((lp, roids), (vec![0], vec![2]));
    }

    #[test]
    fn merge_join_equal_runs() {
        let l = Bat::from_ints(vec![1, 2, 2, 5]);
        let r = Bat::from_ints(vec![2, 2, 3, 5]);
        let (lp, rp) = merge_join_sorted_ints(&l, &r).unwrap();
        let pairs: Vec<(usize, usize)> = lp.into_iter().zip(rp).collect();
        assert_eq!(pairs, vec![(1, 0), (1, 1), (2, 0), (2, 1), (3, 3)]);
    }

    #[test]
    fn merge_join_agrees_with_hash_join() {
        let l = Bat::from_ints(vec![1, 3, 3, 7, 9]);
        let r = Bat::from_ints(vec![3, 7, 7, 10]);
        let (mlp, mrp) = merge_join_sorted_ints(&l, &r).unwrap();
        let (hlp, hrp) = hash_join(&l, &r, None, None);
        let mut m: Vec<_> = mlp.into_iter().zip(mrp).collect();
        let mut h: Vec<_> = hlp.into_iter().zip(hrp).collect();
        m.sort_unstable();
        h.sort_unstable();
        assert_eq!(m, h);
    }

    #[test]
    fn float_keys_by_bits() {
        let l = Bat::from_floats(vec![1.5]);
        let r = Bat::from_floats(vec![1.5, 2.5]);
        let (lp, rp) = hash_join(&l, &r, None, None);
        assert_eq!((lp, rp), (vec![0], vec![0]));
    }

    #[test]
    fn probe_value_lookup() {
        let table = JoinHashTable::build(&Bat::from_ints(vec![4, 5, 4]), None);
        assert_eq!(table.probe_value(&Value::Int(4)).unwrap(), &[0, 2]);
        assert!(table.probe_value(&Value::Int(9)).is_none());
        assert!(table.probe_value(&Value::Null).is_none());
        assert!(!table.is_empty());
    }
}
