//! Aggregates with explicit, *mergeable* partial states.
//!
//! [`AggState`] is the cornerstone of DataCell's incremental sliding-window
//! processing: a window is split into basic windows, each basic window keeps
//! its partial `AggState`, and the window result is the merge of the cached
//! partials ("the resulting partial results are then merged to yield the
//! complete window result", paper §3). Merging never needs retraction —
//! expiry drops whole basic-window partials instead.

use datacell_storage::{Bat, DataType, Value};

use crate::candidates::Candidates;
use crate::error::{AlgebraError, Result};
use crate::group::GroupMap;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// `COUNT(*)` — counts rows including NULLs.
    CountStar,
    /// `COUNT(x)` — counts non-NULL values.
    Count,
    /// `SUM(x)`.
    Sum,
    /// `AVG(x)`.
    Avg,
    /// `MIN(x)`.
    Min,
    /// `MAX(x)`.
    Max,
}

impl AggKind {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            AggKind::CountStar => "COUNT(*)",
            AggKind::Count => "COUNT",
            AggKind::Sum => "SUM",
            AggKind::Avg => "AVG",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
        }
    }

    /// Output type given the input column type.
    pub fn output_type(self, input: DataType) -> Result<DataType> {
        match self {
            AggKind::CountStar | AggKind::Count => Ok(DataType::Int),
            AggKind::Avg => {
                if input.is_numeric() {
                    Ok(DataType::Float)
                } else {
                    Err(AlgebraError::UnsupportedType { op: "AVG", ty: input })
                }
            }
            AggKind::Sum => {
                if input.is_numeric() {
                    Ok(if input == DataType::Float { DataType::Float } else { DataType::Int })
                } else {
                    Err(AlgebraError::UnsupportedType { op: "SUM", ty: input })
                }
            }
            AggKind::Min | AggKind::Max => Ok(input),
        }
    }

    /// Whether the aggregate needs an argument column.
    pub fn needs_input(self) -> bool {
        self != AggKind::CountStar
    }
}

/// A mergeable partial aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct AggState {
    kind: AggKind,
    /// Rows seen (including NULLs) — for COUNT(*).
    rows: u64,
    /// Non-NULL contributions — for COUNT/AVG denominators.
    count: u64,
    sum_int: i64,
    sum_float: f64,
    /// Whether any float value contributed (switches SUM/AVG output).
    float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

/// Raw accumulator filled by the fused filter+aggregate kernels in
/// [`crate::batcalc`]; converted into an [`AggState`] without per-row
/// `Value` boxing. Field semantics mirror [`AggState`] exactly, with
/// min/max kept as raw ordinals.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FusedAcc {
    pub rows: u64,
    pub count: u64,
    pub sum_int: i64,
    pub sum_float: f64,
    pub float: bool,
    pub min: Option<i64>,
    pub max: Option<i64>,
}

impl FusedAcc {
    /// Accumulator for pure row counting (COUNT(*) / COUNT over no-NULL).
    pub fn counted(n: u64) -> Self {
        FusedAcc { rows: n, count: n, ..FusedAcc::default() }
    }
}

impl AggState {
    /// Fresh empty state.
    pub fn new(kind: AggKind) -> Self {
        AggState {
            kind,
            rows: 0,
            count: 0,
            sum_int: 0,
            sum_float: 0.0,
            float: false,
            min: None,
            max: None,
        }
    }

    /// Build a state from a fused-kernel accumulator. `ord_ty` selects how
    /// min/max ordinals are wrapped (Int vs Timestamp), matching what the
    /// per-row path would have produced for the same column.
    pub(crate) fn from_fused(kind: AggKind, acc: FusedAcc, ord_ty: DataType) -> Self {
        let wrap = |v: i64| {
            if ord_ty == DataType::Timestamp {
                Value::Timestamp(v)
            } else {
                Value::Int(v)
            }
        };
        AggState {
            kind,
            rows: acc.rows,
            count: acc.count,
            sum_int: acc.sum_int,
            sum_float: acc.sum_float,
            float: acc.float,
            min: acc.min.map(wrap),
            max: acc.max.map(wrap),
        }
    }

    /// The aggregate this state computes.
    pub fn kind(&self) -> AggKind {
        self.kind
    }

    /// Rows folded in so far (incl. NULLs).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Fold one value in.
    pub fn update(&mut self, value: &Value) {
        self.rows += 1;
        if value.is_null() {
            return;
        }
        self.count += 1;
        match self.kind {
            AggKind::CountStar | AggKind::Count => {}
            AggKind::Sum | AggKind::Avg => match value {
                Value::Int(i) | Value::Timestamp(i) => self.sum_int = self.sum_int.wrapping_add(*i),
                Value::Float(x) => {
                    self.float = true;
                    self.sum_float += x;
                }
                _ => {}
            },
            AggKind::Min => {
                let better = match &self.min {
                    None => true,
                    Some(m) => matches!(value.sql_cmp(m), Some(std::cmp::Ordering::Less)),
                };
                if better {
                    self.min = Some(value.clone());
                }
            }
            AggKind::Max => {
                let better = match &self.max {
                    None => true,
                    Some(m) => matches!(value.sql_cmp(m), Some(std::cmp::Ordering::Greater)),
                };
                if better {
                    self.max = Some(value.clone());
                }
            }
        }
    }

    /// Fold a whole column (restricted to `cand`) in bulk, with typed fast
    /// paths — this is the per-basic-window computation.
    pub fn update_bulk(&mut self, bat: &Bat, cand: Option<&Candidates>) {
        let full = Candidates::all(bat);
        let cand = cand.unwrap_or(&full);
        let positions = cand.positions_in(bat);

        // Fast paths: no NULLs, primitive layouts.
        if !bat.has_nulls() {
            match self.kind {
                AggKind::CountStar | AggKind::Count => {
                    self.rows += positions.len() as u64;
                    self.count += positions.len() as u64;
                    return;
                }
                AggKind::Sum | AggKind::Avg => {
                    if let Some(ints) = bat.data().as_ints() {
                        let mut s = 0i64;
                        for &p in &positions {
                            s = s.wrapping_add(ints[p]);
                        }
                        self.sum_int = self.sum_int.wrapping_add(s);
                        self.rows += positions.len() as u64;
                        self.count += positions.len() as u64;
                        return;
                    }
                    if let Some(floats) = bat.data().as_floats() {
                        let mut s = 0.0f64;
                        for &p in &positions {
                            s += floats[p];
                        }
                        self.sum_float += s;
                        self.float = true;
                        self.rows += positions.len() as u64;
                        self.count += positions.len() as u64;
                        return;
                    }
                }
                AggKind::Min | AggKind::Max => {
                    if let Some(ints) = bat.data().as_ints() {
                        let it = positions.iter().map(|&p| ints[p]);
                        let best = if self.kind == AggKind::Min { it.min() } else { it.max() };
                        if let Some(b) = best {
                            let wrap = if bat.data_type() == DataType::Timestamp {
                                Value::Timestamp(b)
                            } else {
                                Value::Int(b)
                            };
                            self.rows += positions.len() as u64 - 1;
                            self.update(&wrap);
                            self.count += positions.len() as u64 - 1;
                        }
                        return;
                    }
                }
            }
        }

        for &p in &positions {
            self.update(&bat.get_at(p));
        }
    }

    /// Merge another partial in (associative, commutative).
    pub fn merge(&mut self, other: &AggState) {
        debug_assert_eq!(self.kind, other.kind, "cannot merge different aggregates");
        self.rows += other.rows;
        self.count += other.count;
        self.sum_int = self.sum_int.wrapping_add(other.sum_int);
        self.sum_float += other.sum_float;
        self.float |= other.float;
        if let Some(m) = &other.min {
            let better = match &self.min {
                None => true,
                Some(cur) => matches!(m.sql_cmp(cur), Some(std::cmp::Ordering::Less)),
            };
            if better {
                self.min = Some(m.clone());
            }
        }
        if let Some(m) = &other.max {
            let better = match &self.max {
                None => true,
                Some(cur) => matches!(m.sql_cmp(cur), Some(std::cmp::Ordering::Greater)),
            };
            if better {
                self.max = Some(m.clone());
            }
        }
    }

    /// Final SQL value. Empty SUM/AVG/MIN/MAX are NULL; COUNT of nothing is 0.
    pub fn finalize(&self) -> Value {
        match self.kind {
            AggKind::CountStar => Value::Int(self.rows as i64),
            AggKind::Count => Value::Int(self.count as i64),
            AggKind::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.float {
                    Value::Float(self.sum_float + self.sum_int as f64)
                } else {
                    Value::Int(self.sum_int)
                }
            }
            AggKind::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float((self.sum_float + self.sum_int as f64) / self.count as f64)
                }
            }
            AggKind::Min => self.min.clone().unwrap_or(Value::Null),
            AggKind::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Aggregate a whole column into one state.
pub fn aggregate_all(kind: AggKind, bat: &Bat, cand: Option<&Candidates>) -> AggState {
    let mut s = AggState::new(kind);
    s.update_bulk(bat, cand);
    s
}

/// Grouped aggregation: one state per group. `values` must be the column the
/// grouping was computed over (same length/alignment), and `cand` the same
/// candidate list passed to `group_by`.
pub fn aggregate_groups(
    kind: AggKind,
    values: &Bat,
    map: &GroupMap,
    cand: Option<&Candidates>,
) -> Result<Vec<AggState>> {
    let full = Candidates::all(values);
    let cand = cand.unwrap_or(&full);
    let positions = cand.positions_in(values);
    if positions.len() != map.len() {
        return Err(AlgebraError::GroupMismatch {
            groups: map.len(),
            values: positions.len(),
        });
    }
    let mut states = vec![AggState::new(kind); map.ngroups()];
    for (row, &pos) in positions.iter().enumerate() {
        states[map.ids[row] as usize].update(&values.get_at(pos));
    }
    Ok(states)
}

/// Merge two aligned per-group state vectors (groups must correspond).
pub fn merge_group_states(into: &mut [AggState], other: &[AggState]) {
    debug_assert_eq!(into.len(), other.len());
    for (a, b) in into.iter_mut().zip(other) {
        a.merge(b);
    }
}

/// Materialize finalized states as a BAT of `ty`.
pub fn states_to_bat(states: &[AggState], ty: DataType) -> Result<Bat> {
    let mut out = Bat::new(ty);
    for s in states {
        out.push(&s.finalize().coerce(ty).unwrap_or(Value::Null))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::group_by;

    #[test]
    fn scalar_aggregates() {
        let b = Bat::from_ints(vec![3, 1, 4, 1, 5]);
        assert_eq!(aggregate_all(AggKind::Sum, &b, None).finalize(), Value::Int(14));
        assert_eq!(aggregate_all(AggKind::Min, &b, None).finalize(), Value::Int(1));
        assert_eq!(aggregate_all(AggKind::Max, &b, None).finalize(), Value::Int(5));
        assert_eq!(aggregate_all(AggKind::Count, &b, None).finalize(), Value::Int(5));
        assert_eq!(aggregate_all(AggKind::Avg, &b, None).finalize(), Value::Float(2.8));
    }

    #[test]
    fn empty_aggregates() {
        let b = Bat::from_ints(vec![]);
        assert_eq!(aggregate_all(AggKind::Sum, &b, None).finalize(), Value::Null);
        assert_eq!(aggregate_all(AggKind::Avg, &b, None).finalize(), Value::Null);
        assert_eq!(aggregate_all(AggKind::Min, &b, None).finalize(), Value::Null);
        assert_eq!(aggregate_all(AggKind::CountStar, &b, None).finalize(), Value::Int(0));
    }

    #[test]
    fn nulls_skipped_but_counted_by_count_star() {
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Int(2)).unwrap();
        b.push(&Value::Null).unwrap();
        b.push(&Value::Int(4)).unwrap();
        assert_eq!(aggregate_all(AggKind::CountStar, &b, None).finalize(), Value::Int(3));
        assert_eq!(aggregate_all(AggKind::Count, &b, None).finalize(), Value::Int(2));
        assert_eq!(aggregate_all(AggKind::Sum, &b, None).finalize(), Value::Int(6));
        assert_eq!(aggregate_all(AggKind::Avg, &b, None).finalize(), Value::Float(3.0));
    }

    #[test]
    fn merge_equals_whole_computation() {
        let all = Bat::from_ints(vec![5, 2, 9, 2, 7, 1]);
        let left = Bat::from_ints(vec![5, 2, 9]);
        let right = Bat::from_ints(vec![2, 7, 1]);
        for kind in [AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max, AggKind::Count] {
            let whole = aggregate_all(kind, &all, None);
            let mut merged = aggregate_all(kind, &left, None);
            merged.merge(&aggregate_all(kind, &right, None));
            assert_eq!(whole.finalize(), merged.finalize(), "kind {kind:?}");
        }
    }

    #[test]
    fn candidate_restricted_aggregate() {
        let b = Bat::from_vector(vec![10i64, 20, 30].into(), 100);
        let cand = Candidates::List(vec![100, 102]);
        assert_eq!(
            aggregate_all(AggKind::Sum, &b, Some(&cand)).finalize(),
            Value::Int(40)
        );
    }

    #[test]
    fn grouped_aggregation() {
        let keys = Bat::from_ints(vec![1, 2, 1, 2, 1]);
        let vals = Bat::from_ints(vec![10, 20, 30, 40, 50]);
        let map = group_by(&[&keys], None).unwrap();
        let sums = aggregate_groups(AggKind::Sum, &vals, &map, None).unwrap();
        assert_eq!(sums[0].finalize(), Value::Int(90));
        assert_eq!(sums[1].finalize(), Value::Int(60));
        let bat = states_to_bat(&sums, DataType::Int).unwrap();
        assert_eq!(bat.data().as_ints().unwrap(), &[90, 60]);
    }

    #[test]
    fn grouped_merge_across_partials() {
        // Two "basic windows" over the same two groups.
        let k1 = Bat::from_ints(vec![1, 2]);
        let v1 = Bat::from_ints(vec![1, 10]);
        let k2 = Bat::from_ints(vec![1, 2]);
        let v2 = Bat::from_ints(vec![2, 20]);
        let m1 = group_by(&[&k1], None).unwrap();
        let m2 = group_by(&[&k2], None).unwrap();
        let mut s1 = aggregate_groups(AggKind::Sum, &v1, &m1, None).unwrap();
        let s2 = aggregate_groups(AggKind::Sum, &v2, &m2, None).unwrap();
        merge_group_states(&mut s1, &s2);
        assert_eq!(s1[0].finalize(), Value::Int(3));
        assert_eq!(s1[1].finalize(), Value::Int(30));
    }

    #[test]
    fn float_sum_switches_output() {
        let b = Bat::from_floats(vec![0.5, 0.25]);
        assert_eq!(aggregate_all(AggKind::Sum, &b, None).finalize(), Value::Float(0.75));
    }

    #[test]
    fn output_types() {
        assert_eq!(AggKind::Sum.output_type(DataType::Int).unwrap(), DataType::Int);
        assert_eq!(AggKind::Sum.output_type(DataType::Float).unwrap(), DataType::Float);
        assert_eq!(AggKind::Avg.output_type(DataType::Int).unwrap(), DataType::Float);
        assert_eq!(AggKind::Min.output_type(DataType::Str).unwrap(), DataType::Str);
        assert!(AggKind::Sum.output_type(DataType::Str).is_err());
        assert_eq!(AggKind::Count.output_type(DataType::Str).unwrap(), DataType::Int);
    }

    #[test]
    fn min_max_on_strings() {
        let b = Bat::from_vector(
            Vector::from(vec!["pear".to_string(), "apple".into(), "zed".into()]),
            0,
        );
        assert_eq!(
            aggregate_all(AggKind::Min, &b, None).finalize(),
            Value::Str("apple".into())
        );
        assert_eq!(
            aggregate_all(AggKind::Max, &b, None).finalize(),
            Value::Str("zed".into())
        );
    }
    use datacell_storage::{DataType, Vector};

    #[test]
    fn group_mismatch_detected() {
        let keys = Bat::from_ints(vec![1, 2]);
        let vals = Bat::from_ints(vec![1, 2, 3]);
        let map = group_by(&[&keys], None).unwrap();
        assert!(aggregate_groups(AggKind::Sum, &vals, &map, None).is_err());
    }

    #[test]
    fn timestamp_min_max_wrap() {
        let b = Bat::from_vector(Vector::Timestamp(vec![30, 10, 20].into()), 0);
        assert_eq!(
            aggregate_all(AggKind::Min, &b, None).finalize(),
            Value::Timestamp(10)
        );
    }
}
