//! Bulk selection: predicate over one BAT → candidate list.
//!
//! This is MonetDB's `algebra.thetaselect` / `algebra.select`: it scans one
//! column (optionally restricted by an input candidate list) and returns the
//! qualifying OIDs. NULLs never qualify (SQL three-valued logic: unknown is
//! not true).

use datacell_storage::{Bat, Value};

use crate::candidates::Candidates;
use crate::error::Result;

/// Comparison operators understood by selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate against a three-valued comparison result.
    #[inline]
    pub fn eval(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering::*;
        match ord {
            None => false,
            Some(o) => match self {
                CmpOp::Eq => o == Equal,
                CmpOp::Ne => o != Equal,
                CmpOp::Lt => o == Less,
                CmpOp::Le => o != Greater,
                CmpOp::Gt => o == Greater,
                CmpOp::Ge => o != Less,
            },
        }
    }

    /// The operator with its arguments swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// Logical negation (`NOT (a op b)` ⇔ `a op.negate() b`) — only valid
    /// under two-valued logic, i.e. when neither side is NULL.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Theta-select: OIDs of `bat` (within `cand`, if given) whose value
/// satisfies `value_at(oid) op constant`.
pub fn select(
    bat: &Bat,
    cand: Option<&Candidates>,
    op: CmpOp,
    constant: &Value,
) -> Result<Candidates> {
    // Typed fast paths over the full column when the candidate set is the
    // dense range covering the BAT; this is the common basket-scan case.
    let full = Candidates::all(bat);
    let cand = cand.unwrap_or(&full);

    if constant.is_null() {
        // `x op NULL` is unknown for every row.
        return Ok(Candidates::empty());
    }

    let base = bat.oid_base();
    let mut out: Vec<u64> = Vec::new();

    // Fast path: dense candidates + int column + int constant, no NULLs.
    if let (Candidates::Range(lo, hi), Some(ints), Some(k), false) = (
        cand,
        bat.data().as_ints(),
        constant.as_int(),
        bat.has_nulls(),
    ) {
        let lo = (*lo).clamp(base, bat.oid_end());
        let hi = (*hi).clamp(lo, bat.oid_end());
        let s = (lo - base) as usize;
        let e = (hi - base) as usize;
        out.reserve(e - s);
        match op {
            CmpOp::Eq => scan_ints(&ints[s..e], lo, &mut out, |v| v == k),
            CmpOp::Ne => scan_ints(&ints[s..e], lo, &mut out, |v| v != k),
            CmpOp::Lt => scan_ints(&ints[s..e], lo, &mut out, |v| v < k),
            CmpOp::Le => scan_ints(&ints[s..e], lo, &mut out, |v| v <= k),
            CmpOp::Gt => scan_ints(&ints[s..e], lo, &mut out, |v| v > k),
            CmpOp::Ge => scan_ints(&ints[s..e], lo, &mut out, |v| v >= k),
        }
        return Ok(Candidates::from_sorted(out));
    }

    // Fast path: dense candidates + float column + numeric constant.
    if let (Candidates::Range(lo, hi), Some(floats), Some(k), false) = (
        cand,
        bat.data().as_floats(),
        constant.as_float(),
        bat.has_nulls(),
    ) {
        let lo = (*lo).clamp(base, bat.oid_end());
        let hi = (*hi).clamp(lo, bat.oid_end());
        let s = (lo - base) as usize;
        let e = (hi - base) as usize;
        out.reserve(e - s);
        match op {
            CmpOp::Eq => scan_floats(&floats[s..e], lo, &mut out, |v| v == k),
            CmpOp::Ne => scan_floats(&floats[s..e], lo, &mut out, |v| v != k),
            CmpOp::Lt => scan_floats(&floats[s..e], lo, &mut out, |v| v < k),
            CmpOp::Le => scan_floats(&floats[s..e], lo, &mut out, |v| v <= k),
            CmpOp::Gt => scan_floats(&floats[s..e], lo, &mut out, |v| v > k),
            CmpOp::Ge => scan_floats(&floats[s..e], lo, &mut out, |v| v >= k),
        }
        return Ok(Candidates::from_sorted(out));
    }

    // General path: Value comparison per candidate.
    for oid in cand.iter() {
        if oid < base || oid >= bat.oid_end() {
            continue;
        }
        let i = (oid - base) as usize;
        if bat.is_null_at(i) {
            continue;
        }
        let v = bat.get_at(i);
        if op.eval(v.sql_cmp(constant)) {
            out.push(oid);
        }
    }
    Ok(Candidates::from_sorted(out))
}

#[inline]
fn scan_ints(vals: &[i64], lo: u64, out: &mut Vec<u64>, pred: impl Fn(i64) -> bool) {
    for (i, &v) in vals.iter().enumerate() {
        if pred(v) {
            out.push(lo + i as u64);
        }
    }
}

#[inline]
fn scan_floats(vals: &[f64], lo: u64, out: &mut Vec<u64>, pred: impl Fn(f64) -> bool) {
    for (i, &v) in vals.iter().enumerate() {
        if pred(v) {
            out.push(lo + i as u64);
        }
    }
}

/// Range select `lo <= x <= hi` (both bounds inclusive), the shape produced
/// by `BETWEEN` and by window slicing on timestamps.
pub fn select_between(
    bat: &Bat,
    cand: Option<&Candidates>,
    lo: &Value,
    hi: &Value,
) -> Result<Candidates> {
    let ge = select(bat, cand, CmpOp::Ge, lo)?;
    select(bat, Some(&ge), CmpOp::Le, hi)
}

/// OIDs whose value is (or is not) NULL.
pub fn select_null(bat: &Bat, cand: Option<&Candidates>, want_null: bool) -> Candidates {
    let full = Candidates::all(bat);
    let cand = cand.unwrap_or(&full);
    let base = bat.oid_base();
    let mut out = Vec::new();
    for oid in cand.iter() {
        if oid < base || oid >= bat.oid_end() {
            continue;
        }
        let i = (oid - base) as usize;
        if bat.is_null_at(i) == want_null {
            out.push(oid);
        }
    }
    Candidates::from_sorted(out)
}

/// Select over a boolean column: OIDs where the value is exactly `true`.
pub fn select_true(bat: &Bat, cand: Option<&Candidates>) -> Result<Candidates> {
    select(bat, cand, CmpOp::Eq, &Value::Bool(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::DataType;

    fn int_bat() -> Bat {
        Bat::from_vector(vec![5i64, 1, 9, 3, 7].into(), 10)
    }

    #[test]
    fn theta_select_ints() {
        let b = int_bat();
        let c = select(&b, None, CmpOp::Gt, &Value::Int(4)).unwrap();
        assert_eq!(c.to_vec(), vec![10, 12, 14]);
        let c = select(&b, None, CmpOp::Eq, &Value::Int(3)).unwrap();
        assert_eq!(c.to_vec(), vec![13]);
        let c = select(&b, None, CmpOp::Le, &Value::Int(0)).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn select_respects_candidates() {
        let b = int_bat();
        let cand = Candidates::List(vec![11, 13, 14]);
        let c = select(&b, Some(&cand), CmpOp::Gt, &Value::Int(2)).unwrap();
        assert_eq!(c.to_vec(), vec![13, 14]);
    }

    #[test]
    fn select_with_out_of_range_candidates() {
        let b = int_bat();
        let cand = Candidates::List(vec![0, 12, 99]);
        let c = select(&b, Some(&cand), CmpOp::Ge, &Value::Int(0)).unwrap();
        assert_eq!(c.to_vec(), vec![12]);
    }

    #[test]
    fn nulls_never_qualify() {
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Int(1)).unwrap();
        b.push(&Value::Null).unwrap();
        b.push(&Value::Int(3)).unwrap();
        let c = select(&b, None, CmpOp::Ge, &Value::Int(0)).unwrap();
        assert_eq!(c.to_vec(), vec![0, 2]);
        // x <> 2 still excludes NULL
        let c = select(&b, None, CmpOp::Ne, &Value::Int(2)).unwrap();
        assert_eq!(c.to_vec(), vec![0, 2]);
    }

    #[test]
    fn compare_to_null_selects_nothing() {
        let b = int_bat();
        let c = select(&b, None, CmpOp::Eq, &Value::Null).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn float_fast_path() {
        let b = Bat::from_floats(vec![0.5, 2.5, 1.5]);
        let c = select(&b, None, CmpOp::Ge, &Value::Float(1.5)).unwrap();
        assert_eq!(c.to_vec(), vec![1, 2]);
        // int constant against float column
        let c = select(&b, None, CmpOp::Lt, &Value::Int(2)).unwrap();
        assert_eq!(c.to_vec(), vec![0, 2]);
    }

    #[test]
    fn string_select_general_path() {
        let b = Bat::from_vector(
            Vector::from(vec!["b".to_string(), "a".into(), "c".into()]),
            0,
        );
        let c = select(&b, None, CmpOp::Ge, &Value::Str("b".into())).unwrap();
        assert_eq!(c.to_vec(), vec![0, 2]);
    }
    use datacell_storage::Vector;

    #[test]
    fn between_is_inclusive() {
        let b = int_bat();
        let c = select_between(&b, None, &Value::Int(3), &Value::Int(7)).unwrap();
        assert_eq!(c.to_vec(), vec![10, 13, 14]);
    }

    #[test]
    fn null_select() {
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Null).unwrap();
        b.push(&Value::Int(2)).unwrap();
        assert_eq!(select_null(&b, None, true).to_vec(), vec![0]);
        assert_eq!(select_null(&b, None, false).to_vec(), vec![1]);
    }

    #[test]
    fn op_helpers() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert_eq!(CmpOp::Le.sql(), "<=");
        assert!(CmpOp::Ne.eval(Some(std::cmp::Ordering::Less)));
        assert!(!CmpOp::Eq.eval(None));
    }

    #[test]
    fn select_true_on_bools() {
        let b = Bat::from_vector(vec![true, false, true].into(), 0);
        assert_eq!(select_true(&b, None).unwrap().to_vec(), vec![0, 2]);
    }
}
