//! Positional fetch (projection): candidate list × BAT → materialized BAT.
//!
//! This is MonetDB's `algebra.projection`, the heart of *late tuple
//! reconstruction*: selections navigate one column and only afterwards are
//! the needed values of other columns gathered (paper §3: "This intermediate
//! can then be used to retrieve the necessary values from a different
//! column").

use datacell_storage::{Bat, Chunk};

use crate::candidates::Candidates;

/// Gather the values of `bat` at the candidate OIDs into a new dense BAT
/// (based at 0). Candidates outside the BAT are skipped.
pub fn fetch(bat: &Bat, cand: &Candidates) -> Bat {
    // Dense fast path: an O(1) view rebased to 0 for operator-local
    // alignment — no element is copied. Normalizing validity here (a bool
    // scan, matching the old deep-copy path) keeps a null-free window of a
    // historically nullable column on the typed fast paths downstream.
    if let Candidates::Range(lo, hi) = cand {
        let mut view = bat.slice_oids(*lo, *hi).rebased(0);
        view.normalize_validity();
        return view;
    }
    let positions = cand.positions_in(bat);
    bat.gather_positions(&positions)
}

/// Fetch the same candidates across every column of a chunk.
pub fn fetch_chunk(chunk: &Chunk, cand: &Candidates) -> Chunk {
    Chunk::new(chunk.columns().iter().map(|c| fetch(c, cand)).collect())
        // lint:allow(panic-freedom): every column is gathered with the same candidate list, so lengths agree
        .expect("fetch preserves alignment")
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::{DataType, Value};

    #[test]
    fn fetch_list_candidates() {
        let b = Bat::from_vector(vec![10i64, 20, 30, 40].into(), 100);
        let c = Candidates::List(vec![101, 103]);
        let f = fetch(&b, &c);
        assert_eq!(f.oid_base(), 0);
        assert_eq!(f.len(), 2);
        assert_eq!(f.get_at(0), Value::Int(20));
        assert_eq!(f.get_at(1), Value::Int(40));
    }

    #[test]
    fn fetch_dense_candidates_rebases() {
        let b = Bat::from_vector(vec![10i64, 20, 30].into(), 5);
        let c = Candidates::range(6, 8);
        let f = fetch(&b, &c);
        assert_eq!(f.oid_base(), 0);
        assert_eq!(f.get_at(0), Value::Int(20));
        assert_eq!(f.get_at(1), Value::Int(30));
    }

    #[test]
    fn fetch_preserves_nulls() {
        let mut b = Bat::new(DataType::Float);
        b.push(&Value::Float(1.0)).unwrap();
        b.push(&Value::Null).unwrap();
        b.push(&Value::Float(3.0)).unwrap();
        let f = fetch(&b, &Candidates::List(vec![1, 2]));
        assert_eq!(f.get_at(0), Value::Null);
        assert_eq!(f.get_at(1), Value::Float(3.0));
        // dense path keeps nulls too
        let f2 = fetch(&b, &Candidates::range(0, 2));
        assert_eq!(f2.get_at(1), Value::Null);
    }

    #[test]
    fn fetch_chunk_aligns_columns() {
        let chunk = Chunk::new(vec![
            Bat::from_ints(vec![1, 2, 3]),
            Bat::from_floats(vec![0.1, 0.2, 0.3]),
        ])
        .unwrap();
        let f = fetch_chunk(&chunk, &Candidates::List(vec![0, 2]));
        assert_eq!(f.len(), 2);
        assert_eq!(f.row(1), vec![Value::Int(3), Value::Float(0.3)]);
    }

    #[test]
    fn dense_fetch_of_null_free_window_drops_spurious_validity() {
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Null).unwrap();
        b.push(&Value::Int(2)).unwrap();
        b.push(&Value::Int(3)).unwrap();
        assert!(b.has_nulls());
        // The [1, 3) window is null-free: the fetched view must report no
        // NULLs so downstream typed fast paths stay enabled.
        let f = fetch(&b, &Candidates::range(1, 3));
        assert!(!f.has_nulls());
        assert_eq!(f.get_at(0), Value::Int(2));
        // It is still a zero-copy view of the source tail.
        assert!(f.shares_buffer_with(&b));
    }

    #[test]
    fn out_of_range_candidates_skipped() {
        let b = Bat::from_ints(vec![1, 2]);
        let f = fetch(&b, &Candidates::List(vec![0, 5, 9]));
        assert_eq!(f.len(), 1);
    }
}
