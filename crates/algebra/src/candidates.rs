//! Candidate lists: sorted OID selection vectors.
//!
//! MonetDB operators take an optional *candidate list* restricting which
//! tuples they may touch; selections produce candidate lists instead of
//! materialized columns. This is what makes chained predicates cheap and is
//! the intermediate DataCell caches between window slides ("these
//! intermediates can be exploited for flexible incremental processing
//! strategies", paper §3).
//!
//! Two representations are kept, as in MonetDB: a dense OID range (the
//! common case for freshly scanned baskets) and an explicit sorted list.

use datacell_storage::{Bat, Oid};

/// A sorted set of candidate OIDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Candidates {
    /// The dense range `[lo, hi)`.
    Range(Oid, Oid),
    /// An explicit, strictly ascending list of OIDs.
    List(Vec<Oid>),
}

impl Candidates {
    /// All OIDs of `bat`.
    pub fn all(bat: &Bat) -> Self {
        Candidates::Range(bat.oid_base(), bat.oid_end())
    }

    /// The empty candidate set.
    pub fn empty() -> Self {
        Candidates::Range(0, 0)
    }

    /// A range `[lo, hi)`; normalized so `hi >= lo`.
    pub fn range(lo: Oid, hi: Oid) -> Self {
        Candidates::Range(lo, hi.max(lo))
    }

    /// From a sorted, deduplicated OID list. Collapses to a range when dense.
    pub fn from_sorted(oids: Vec<Oid>) -> Self {
        debug_assert!(oids.windows(2).all(|w| w[0] < w[1]), "candidates must be ascending");
        if let (Some(&first), Some(&last)) = (oids.first(), oids.last()) {
            if last - first + 1 == oids.len() as u64 {
                return Candidates::Range(first, last + 1);
            }
        } else {
            return Candidates::empty();
        }
        Candidates::List(oids)
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        match self {
            Candidates::Range(lo, hi) => (hi - lo) as usize,
            Candidates::List(v) => v.len(),
        }
    }

    /// True iff no candidates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True iff stored as a dense range.
    pub fn is_dense(&self) -> bool {
        matches!(self, Candidates::Range(..))
    }

    /// Iterate the OIDs in ascending order.
    pub fn iter(&self) -> CandIter<'_> {
        match self {
            Candidates::Range(lo, hi) => CandIter::Range(*lo, *hi),
            Candidates::List(v) => CandIter::List(v.iter()),
        }
    }

    /// Membership test (O(1) for ranges, O(log n) for lists).
    pub fn contains(&self, oid: Oid) -> bool {
        match self {
            Candidates::Range(lo, hi) => oid >= *lo && oid < *hi,
            Candidates::List(v) => v.binary_search(&oid).is_ok(),
        }
    }

    /// First OID, if any.
    pub fn first(&self) -> Option<Oid> {
        match self {
            Candidates::Range(lo, hi) if lo < hi => Some(*lo),
            Candidates::Range(..) => None,
            Candidates::List(v) => v.first().copied(),
        }
    }

    /// Last OID, if any.
    pub fn last(&self) -> Option<Oid> {
        match self {
            Candidates::Range(lo, hi) if lo < hi => Some(hi - 1),
            Candidates::Range(..) => None,
            Candidates::List(v) => v.last().copied(),
        }
    }

    /// Intersect with another candidate set (both sorted ⇒ linear merge;
    /// range×range stays a range).
    pub fn intersect(&self, other: &Candidates) -> Candidates {
        match (self, other) {
            (Candidates::Range(a, b), Candidates::Range(c, d)) => {
                let lo = *a.max(c);
                let hi = *b.min(d);
                Candidates::range(lo, hi)
            }
            (Candidates::Range(lo, hi), Candidates::List(v))
            | (Candidates::List(v), Candidates::Range(lo, hi)) => {
                let out: Vec<Oid> =
                    v.iter().copied().filter(|o| o >= lo && o < hi).collect();
                Candidates::from_sorted(out)
            }
            (Candidates::List(a), Candidates::List(b)) => {
                let mut out = Vec::with_capacity(a.len().min(b.len()));
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                Candidates::from_sorted(out)
            }
        }
    }

    /// Union with another candidate set (sorted merge, deduplicating).
    pub fn union(&self, other: &Candidates) -> Candidates {
        // Fast path: adjacent/overlapping ranges stay ranges.
        if let (Candidates::Range(a, b), Candidates::Range(c, d)) = (self, other) {
            if self.is_empty() {
                return other.clone();
            }
            if other.is_empty() {
                return self.clone();
            }
            if *a <= *d && *c <= *b {
                return Candidates::Range(*a.min(c), *b.max(d));
            }
        }
        let mut out = Vec::with_capacity(self.len() + other.len());
        let mut ai = self.iter().peekable();
        let mut bi = other.iter().peekable();
        loop {
            match (ai.peek(), bi.peek()) {
                (Some(&x), Some(&y)) => {
                    if x < y {
                        out.push(x);
                        ai.next();
                    } else if y < x {
                        out.push(y);
                        bi.next();
                    } else {
                        out.push(x);
                        ai.next();
                        bi.next();
                    }
                }
                (Some(&x), None) => {
                    out.push(x);
                    ai.next();
                }
                (None, Some(&y)) => {
                    out.push(y);
                    bi.next();
                }
                (None, None) => break,
            }
        }
        Candidates::from_sorted(out)
    }

    /// Complement within the universe `[lo, hi)` (for NOT predicates).
    pub fn complement(&self, lo: Oid, hi: Oid) -> Candidates {
        let mut out = Vec::new();
        let mut cur = lo;
        for oid in self.iter() {
            if oid >= hi {
                break;
            }
            if oid < lo {
                continue;
            }
            while cur < oid {
                out.push(cur);
                cur += 1;
            }
            cur = oid + 1;
        }
        while cur < hi {
            out.push(cur);
            cur += 1;
        }
        Candidates::from_sorted(out)
    }

    /// Physical positions of the candidates within `bat`
    /// (candidates outside the BAT's OID range are skipped).
    pub fn positions_in(&self, bat: &Bat) -> Vec<usize> {
        let base = bat.oid_base();
        let end = bat.oid_end();
        match self {
            Candidates::Range(lo, hi) => {
                let lo = (*lo).clamp(base, end);
                let hi = (*hi).clamp(lo, end);
                ((lo - base) as usize..(hi - base) as usize).collect()
            }
            Candidates::List(v) => v
                .iter()
                .filter(|&&o| o >= base && o < end)
                .map(|&o| (o - base) as usize)
                .collect(),
        }
    }

    /// Collect into an explicit OID vector.
    pub fn to_vec(&self) -> Vec<Oid> {
        self.iter().collect()
    }
}

/// Iterator over candidate OIDs.
pub enum CandIter<'a> {
    /// Remaining dense range.
    Range(Oid, Oid),
    /// Remaining explicit list.
    List(std::slice::Iter<'a, Oid>),
}

impl Iterator for CandIter<'_> {
    type Item = Oid;

    fn next(&mut self) -> Option<Oid> {
        match self {
            CandIter::Range(lo, hi) => {
                if lo < hi {
                    let v = *lo;
                    *lo += 1;
                    Some(v)
                } else {
                    None
                }
            }
            CandIter::List(it) => it.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            CandIter::Range(lo, hi) => (*hi - *lo) as usize,
            CandIter::List(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for CandIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_detection() {
        assert_eq!(Candidates::from_sorted(vec![3, 4, 5]), Candidates::Range(3, 6));
        assert_eq!(
            Candidates::from_sorted(vec![3, 5]),
            Candidates::List(vec![3, 5])
        );
        assert_eq!(Candidates::from_sorted(vec![]), Candidates::empty());
    }

    #[test]
    fn len_and_iter() {
        let c = Candidates::range(10, 13);
        assert_eq!(c.len(), 3);
        assert_eq!(c.to_vec(), vec![10, 11, 12]);
        let l = Candidates::List(vec![1, 4, 9]);
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![1, 4, 9]);
    }

    #[test]
    fn intersect_range_range() {
        let a = Candidates::range(0, 10);
        let b = Candidates::range(5, 20);
        assert_eq!(a.intersect(&b), Candidates::Range(5, 10));
        let disjoint = Candidates::range(0, 3).intersect(&Candidates::range(7, 9));
        assert!(disjoint.is_empty());
    }

    #[test]
    fn intersect_mixed() {
        let r = Candidates::range(2, 8);
        let l = Candidates::List(vec![1, 3, 5, 9]);
        assert_eq!(r.intersect(&l), Candidates::List(vec![3, 5]));
        assert_eq!(l.intersect(&r), Candidates::List(vec![3, 5]));
    }

    #[test]
    fn intersect_list_list() {
        let a = Candidates::List(vec![1, 3, 5, 7]);
        let b = Candidates::List(vec![3, 4, 7, 10]);
        assert_eq!(a.intersect(&b), Candidates::List(vec![3, 7]));
    }

    #[test]
    fn union_merges() {
        let a = Candidates::List(vec![1, 5]);
        let b = Candidates::List(vec![2, 5, 8]);
        assert_eq!(a.union(&b), Candidates::List(vec![1, 2, 5, 8]));
        // touching ranges collapse
        let r = Candidates::range(0, 5).union(&Candidates::range(5, 9));
        assert_eq!(r, Candidates::Range(0, 9));
        // union turning dense
        let d = Candidates::List(vec![1, 3]).union(&Candidates::List(vec![2]));
        assert_eq!(d, Candidates::Range(1, 4));
    }

    #[test]
    fn complement_within_universe() {
        let c = Candidates::List(vec![2, 4]);
        assert_eq!(c.complement(0, 6), Candidates::List(vec![0, 1, 3, 5]));
        let all = Candidates::range(0, 4);
        assert!(all.complement(0, 4).is_empty());
        let none = Candidates::empty();
        assert_eq!(none.complement(1, 4), Candidates::Range(1, 4));
    }

    #[test]
    fn positions_respect_bat_base() {
        let bat = Bat::from_vector(vec![1i64, 2, 3, 4].into(), 100);
        let c = Candidates::List(vec![99, 101, 103, 200]);
        assert_eq!(c.positions_in(&bat), vec![1, 3]);
        let r = Candidates::range(102, 1000);
        assert_eq!(r.positions_in(&bat), vec![2, 3]);
    }

    #[test]
    fn contains_and_bounds() {
        let c = Candidates::List(vec![1, 5, 9]);
        assert!(c.contains(5));
        assert!(!c.contains(4));
        assert_eq!(c.first(), Some(1));
        assert_eq!(c.last(), Some(9));
        assert_eq!(Candidates::empty().first(), None);
    }
}
