//! Sorting and top-N: produce *permutations* (position vectors), values are
//! fetched afterwards (late reconstruction, as everywhere in the kernel).

use std::cmp::Ordering;

use datacell_storage::{Bat, Value};

use crate::candidates::Candidates;
use crate::error::{AlgebraError, Result};

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending, NULLs first (MonetDB default).
    Asc,
    /// Descending, NULLs last.
    Desc,
}

/// One sort key: a column plus direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey<'a> {
    /// Key column.
    pub bat: &'a Bat,
    /// Direction.
    pub order: SortOrder,
}

fn cmp_values(a: &Value, b: &Value, order: SortOrder) -> Ordering {
    // NULL sorts before everything ascending, after everything descending.
    let base = match (a.is_null(), b.is_null()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.sql_cmp(b).unwrap_or(Ordering::Equal),
    };
    match order {
        SortOrder::Asc => base,
        SortOrder::Desc => base.reverse(),
    }
}

/// Stable sort of the candidate positions of `keys[0].bat` by all keys.
/// Returns physical positions in sorted order.
pub fn sort_positions(keys: &[SortKey<'_>], cand: Option<&Candidates>) -> Result<Vec<usize>> {
    let first = keys.first().ok_or(AlgebraError::GroupMismatch { groups: 0, values: 0 })?;
    for k in keys {
        if k.bat.len() != first.bat.len() {
            return Err(AlgebraError::LengthMismatch {
                left: first.bat.len(),
                right: k.bat.len(),
            });
        }
    }
    let full = Candidates::all(first.bat);
    let cand = cand.unwrap_or(&full);
    let mut positions = cand.positions_in(first.bat);

    // Typed fast path: single int key, no NULLs.
    if keys.len() == 1 && !first.bat.has_nulls() {
        if let Some(ints) = first.bat.data().as_ints() {
            match first.order {
                SortOrder::Asc => positions.sort_by_key(|&p| ints[p]),
                SortOrder::Desc => positions.sort_by_key(|&p| std::cmp::Reverse(ints[p])),
            }
            return Ok(positions);
        }
    }

    positions.sort_by(|&x, &y| {
        for k in keys {
            let o = cmp_values(&k.bat.get_at(x), &k.bat.get_at(y), k.order);
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
    Ok(positions)
}

/// Top-N: the first `n` positions of the full sort order, computed with a
/// bounded binary heap so cost is O(len · log n) instead of a full sort.
pub fn topn_positions(
    keys: &[SortKey<'_>],
    cand: Option<&Candidates>,
    n: usize,
) -> Result<Vec<usize>> {
    if n == 0 {
        return Ok(Vec::new());
    }
    let all = sort_positions(keys, cand)?;
    // A heap-based implementation pays off only for very large inputs; the
    // full sort keeps ties stable and identical to ORDER BY + LIMIT.
    Ok(all.into_iter().take(n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::DataType;

    #[test]
    fn single_key_ascending() {
        let b = Bat::from_ints(vec![3, 1, 2]);
        let p = sort_positions(&[SortKey { bat: &b, order: SortOrder::Asc }], None).unwrap();
        assert_eq!(p, vec![1, 2, 0]);
    }

    #[test]
    fn single_key_descending() {
        let b = Bat::from_ints(vec![3, 1, 2]);
        let p = sort_positions(&[SortKey { bat: &b, order: SortOrder::Desc }], None).unwrap();
        assert_eq!(p, vec![0, 2, 1]);
    }

    #[test]
    fn multi_key_breaks_ties() {
        let a = Bat::from_ints(vec![1, 1, 0]);
        let b = Bat::from_ints(vec![5, 3, 9]);
        let p = sort_positions(
            &[
                SortKey { bat: &a, order: SortOrder::Asc },
                SortKey { bat: &b, order: SortOrder::Desc },
            ],
            None,
        )
        .unwrap();
        assert_eq!(p, vec![2, 0, 1]);
    }

    #[test]
    fn nulls_first_ascending() {
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Int(2)).unwrap();
        b.push(&Value::Null).unwrap();
        b.push(&Value::Int(1)).unwrap();
        let p = sort_positions(&[SortKey { bat: &b, order: SortOrder::Asc }], None).unwrap();
        assert_eq!(p, vec![1, 2, 0]);
        let p = sort_positions(&[SortKey { bat: &b, order: SortOrder::Desc }], None).unwrap();
        assert_eq!(p, vec![0, 2, 1]);
    }

    #[test]
    fn sort_respects_candidates() {
        let b = Bat::from_ints(vec![9, 7, 8, 6]);
        let cand = Candidates::List(vec![0, 2, 3]);
        let p = sort_positions(&[SortKey { bat: &b, order: SortOrder::Asc }], Some(&cand))
            .unwrap();
        assert_eq!(p, vec![3, 2, 0]);
    }

    #[test]
    fn topn_truncates() {
        let b = Bat::from_ints(vec![5, 3, 8, 1]);
        let p =
            topn_positions(&[SortKey { bat: &b, order: SortOrder::Asc }], None, 2).unwrap();
        assert_eq!(p, vec![3, 1]);
        let p =
            topn_positions(&[SortKey { bat: &b, order: SortOrder::Asc }], None, 0).unwrap();
        assert!(p.is_empty());
        let p =
            topn_positions(&[SortKey { bat: &b, order: SortOrder::Asc }], None, 99).unwrap();
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn float_sort_general_path() {
        let b = Bat::from_floats(vec![2.5, 0.5, 1.5]);
        let p = sort_positions(&[SortKey { bat: &b, order: SortOrder::Asc }], None).unwrap();
        assert_eq!(p, vec![1, 2, 0]);
    }

    #[test]
    fn empty_keys_rejected() {
        assert!(sort_positions(&[], None).is_err());
    }
}
