//! Error type for the columnar algebra.

use std::fmt;

use datacell_storage::{DataType, StorageError};

/// Errors produced by algebra operators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Operator applied to a column of an unsupported type.
    UnsupportedType {
        /// Operator name (e.g. `"sum"`).
        op: &'static str,
        /// The offending type.
        ty: DataType,
    },
    /// Binary operator over incompatible column types.
    TypeCombination {
        /// Operator name.
        op: &'static str,
        /// Left input type.
        left: DataType,
        /// Right input type.
        right: DataType,
    },
    /// Inputs that must be equal length were not.
    LengthMismatch {
        /// Length of the left input.
        left: usize,
        /// Length of the right input.
        right: usize,
    },
    /// Division by zero in integer arithmetic.
    DivideByZero,
    /// Group input given to an aggregate disagrees with the value column.
    GroupMismatch {
        /// Number of group ids.
        groups: usize,
        /// Number of values.
        values: usize,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Storage(e) => write!(f, "storage: {e}"),
            AlgebraError::UnsupportedType { op, ty } => {
                write!(f, "operator {op} does not support type {ty}")
            }
            AlgebraError::TypeCombination { op, left, right } => {
                write!(f, "operator {op} cannot combine {left} and {right}")
            }
            AlgebraError::LengthMismatch { left, right } => {
                write!(f, "input length mismatch: {left} vs {right}")
            }
            AlgebraError::DivideByZero => f.write_str("division by zero"),
            AlgebraError::GroupMismatch { groups, values } => {
                write!(f, "group/value length mismatch: {groups} vs {values}")
            }
        }
    }
}

impl std::error::Error for AlgebraError {}

impl From<StorageError> for AlgebraError {
    fn from(e: StorageError) -> Self {
        AlgebraError::Storage(e)
    }
}

/// Convenience alias used throughout the algebra crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
