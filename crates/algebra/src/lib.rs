//! # datacell-algebra
//!
//! The columnar bulk algebra of the DataCell kernel — the operator set a
//! MonetDB MAL plan compiles to (paper §3): whole-column operators that
//! consume and produce BATs and candidate lists, never touching tuples one
//! at a time.
//!
//! * [`candidates`] — sorted OID selection vectors, the universal
//!   intermediate that selections produce and every operator accepts.
//! * [`select`] — theta/range selections → candidates.
//! * [`fetch`] — late tuple reconstruction (positional projection).
//! * [`batcalc`] — element-wise bulk arithmetic.
//! * [`join`] — reusable hash tables, hash join, merge join.
//! * [`group`] / [`aggregate`] — grouping and *mergeable* aggregate states,
//!   the primitive behind incremental basic-window processing.
//! * [`sort`] — order-by permutations and top-N.

#![warn(missing_docs)]

pub mod aggregate;
pub mod batcalc;
pub mod candidates;
pub mod error;
pub mod fetch;
pub mod group;
pub mod join;
pub mod select;
pub mod sort;

pub use aggregate::{
    aggregate_all, aggregate_groups, merge_group_states, states_to_bat, AggKind, AggState,
};
pub use batcalc::{
    arith_cols, arith_const, arith_const_left, cast, fused_global_state, fused_grouped_states,
    negate, ArithOp,
};
pub use candidates::Candidates;
pub use error::{AlgebraError, Result};
pub use fetch::{fetch, fetch_chunk};
pub use group::{distinct, group_by, group_counts, group_heads, GroupMap};
pub use join::{hash_join, merge_join_sorted_ints, JoinHashTable, JoinKey};
pub use select::{select, select_between, select_null, select_true, CmpOp};
pub use sort::{sort_positions, topn_positions, SortKey, SortOrder};
