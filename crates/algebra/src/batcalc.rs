//! Element-wise bulk arithmetic over BATs (MonetDB's `batcalc` module),
//! plus the selection-vector-aware **fused filter+aggregate kernels** used
//! by shared multi-query execution.
//!
//! Arithmetic is used by projection expressions (`SELECT a * b + 1 …`).
//! NULLs propagate: if either operand is NULL the result is NULL. Integer
//! division by zero yields NULL (matching MonetDB's permissive bulk
//! semantics) rather than aborting a whole vectorised batch.
//!
//! The fused kernels ([`fused_grouped_states`], [`fused_global_state`])
//! consume a raw stream column together with the `Candidates` produced by a
//! selection and accumulate aggregate partials directly — no filtered-chunk
//! materialization and no per-row `Value` boxing. When the candidate set is
//! a dense range the inner loops run over one contiguous slice, which LLVM
//! autovectorizes.

use datacell_storage::{Bat, DataType, Value, Vector};

use crate::aggregate::{AggKind, AggState, FusedAcc};
use crate::candidates::Candidates;
use crate::error::{AlgebraError, Result};
use crate::group::GroupMap;

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Mod,
}

impl ArithOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }

    fn apply_int(self, a: i64, b: i64) -> Option<i64> {
        match self {
            ArithOp::Add => Some(a.wrapping_add(b)),
            ArithOp::Sub => Some(a.wrapping_sub(b)),
            ArithOp::Mul => Some(a.wrapping_mul(b)),
            ArithOp::Div => {
                if b == 0 {
                    None
                } else {
                    Some(a.wrapping_div(b))
                }
            }
            ArithOp::Mod => {
                if b == 0 {
                    None
                } else {
                    Some(a.wrapping_rem(b))
                }
            }
        }
    }

    fn apply_float(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Mod => a % b,
        }
    }
}

/// Result type of `left op right`, mirroring [`DataType::arith_result`].
pub fn result_type(op: ArithOp, left: DataType, right: DataType) -> Result<DataType> {
    left.arith_result(right).ok_or(AlgebraError::TypeCombination {
        op: op.sql(),
        left,
        right,
    })
}

enum Operand<'a> {
    Col(&'a Bat),
    Const(&'a Value),
}

impl Operand<'_> {
    fn ty(&self, op: ArithOp) -> Result<DataType> {
        match self {
            Operand::Col(b) => Ok(b.data_type()),
            Operand::Const(v) => v.data_type().ok_or(AlgebraError::UnsupportedType {
                op: op.sql(),
                ty: DataType::Bool, // NULL constant: folded by the caller
            }),
        }
    }

    fn len_or(&self, other_len: usize) -> usize {
        match self {
            Operand::Col(b) => b.len(),
            Operand::Const(_) => other_len,
        }
    }

    fn is_null_at(&self, i: usize) -> bool {
        match self {
            Operand::Col(b) => b.is_null_at(i),
            Operand::Const(v) => v.is_null(),
        }
    }

    fn int_at(&self, i: usize) -> i64 {
        match self {
            Operand::Col(b) => b.data().as_ints().map(|s| s[i]).unwrap_or_else(|| {
                b.data().as_floats().map(|s| s[i] as i64).unwrap_or(0)
            }),
            Operand::Const(v) => v.as_int().unwrap_or(0),
        }
    }

    fn float_at(&self, i: usize) -> f64 {
        match self {
            Operand::Col(b) => b
                .data()
                .as_floats()
                .map(|s| s[i])
                .or_else(|| b.data().as_ints().map(|s| s[i] as f64))
                .unwrap_or(0.0),
            Operand::Const(v) => v.as_float().unwrap_or(0.0),
        }
    }
}

fn arith(op: ArithOp, left: Operand<'_>, right: Operand<'_>) -> Result<Bat> {
    let lt = left.ty(op)?;
    let rt = right.ty(op)?;
    let out_ty = result_type(op, lt, rt)?;
    let len = match (&left, &right) {
        (Operand::Col(a), Operand::Col(b)) => {
            if a.len() != b.len() {
                return Err(AlgebraError::LengthMismatch { left: a.len(), right: b.len() });
            }
            a.len()
        }
        _ => left.len_or(right.len_or(0)),
    };

    let mut validity: Option<Vec<bool>> = None;
    let mark_null = |validity: &mut Option<Vec<bool>>, i: usize| {
        validity.get_or_insert_with(|| vec![true; len])[i] = false;
    };

    let data = match out_ty {
        DataType::Int | DataType::Timestamp => {
            let mut out = vec![0i64; len];
            for (i, slot) in out.iter_mut().enumerate() {
                if left.is_null_at(i) || right.is_null_at(i) {
                    mark_null(&mut validity, i);
                    continue;
                }
                match op.apply_int(left.int_at(i), right.int_at(i)) {
                    Some(v) => *slot = v,
                    None => mark_null(&mut validity, i),
                }
            }
            if out_ty == DataType::Timestamp {
                Vector::Timestamp(out.into())
            } else {
                Vector::Int(out.into())
            }
        }
        DataType::Float => {
            let mut out = vec![0.0f64; len];
            for (i, slot) in out.iter_mut().enumerate() {
                if left.is_null_at(i) || right.is_null_at(i) {
                    mark_null(&mut validity, i);
                    continue;
                }
                *slot = op.apply_float(left.float_at(i), right.float_at(i));
            }
            Vector::Float(out.into())
        }
        other => {
            return Err(AlgebraError::UnsupportedType { op: op.sql(), ty: other });
        }
    };
    // lint:allow(panic-freedom): validity was built against data.len() in every arm above
    Ok(Bat::from_parts(data, 0, validity).expect("validity sized to len"))
}

/// `left op right` over two aligned columns.
pub fn arith_cols(op: ArithOp, left: &Bat, right: &Bat) -> Result<Bat> {
    arith(op, Operand::Col(left), Operand::Col(right))
}

/// `left op constant`.
pub fn arith_const(op: ArithOp, left: &Bat, constant: &Value) -> Result<Bat> {
    if constant.is_null() {
        // NULL constant: whole result is NULL of the left type.
        let validity = vec![false; left.len()];
        let data = Vector::with_capacity(left.data_type(), 0);
        let mut filled = data;
        for _ in 0..left.len() {
            filled.push(&Value::Null)?;
        }
        return Ok(Bat::from_parts(filled, 0, Some(validity))?);
    }
    arith(op, Operand::Col(left), Operand::Const(constant))
}

/// `constant op right`.
pub fn arith_const_left(op: ArithOp, constant: &Value, right: &Bat) -> Result<Bat> {
    if constant.is_null() {
        return arith_const(op, right, constant);
    }
    arith(op, Operand::Const(constant), Operand::Col(right))
}

/// Unary negation.
pub fn negate(bat: &Bat) -> Result<Bat> {
    arith_const_left(ArithOp::Sub, &Value::Int(0), bat)
}

/// Cast a whole column to `target` using [`Value::coerce`] semantics.
pub fn cast(bat: &Bat, target: DataType) -> Result<Bat> {
    if bat.data_type() == target {
        return Ok(bat.clone());
    }
    let mut out = Bat::new(target);
    for i in 0..bat.len() {
        let v = bat.get_at(i);
        let coerced = v.coerce(target).ok_or(AlgebraError::UnsupportedType {
            op: "cast",
            ty: bat.data_type(),
        })?;
        out.push(&coerced)?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Fused filter+aggregate kernels
// ---------------------------------------------------------------------

/// When `positions` is one contiguous ascending run, its first position.
/// Candidate lists are strictly ascending by invariant, so checking the
/// span length against the element count suffices.
fn contiguous_start(positions: &[usize]) -> Option<usize> {
    let first = *positions.first()?;
    let last = *positions.last()?;
    if last.checked_sub(first)? + 1 == positions.len() {
        Some(first)
    } else {
        None
    }
}

/// How min/max ordinals of `bat` should be wrapped back into `Value`s.
fn ord_type(bat: &Bat) -> DataType {
    if bat.data_type() == DataType::Timestamp {
        DataType::Timestamp
    } else {
        DataType::Int
    }
}

fn count_states(kind: AggKind, rows: Vec<u64>) -> Vec<AggState> {
    rows.into_iter()
        .map(|r| AggState::from_fused(kind, FusedAcc::counted(r), DataType::Int))
        .collect()
}

/// Per-group sum of an `i64` slice steered by group ids, in scan order.
fn grouped_int_sums(ints: &[i64], positions: &[usize], ids: &[u32], ng: usize) -> Option<Vec<i64>> {
    let mut sums = vec![0i64; ng];
    match contiguous_start(positions) {
        Some(start) => {
            let vals = ints.get(start..start + positions.len())?;
            for (i, &x) in vals.iter().enumerate() {
                let g = *ids.get(i)? as usize;
                let s = sums.get_mut(g)?;
                *s = s.wrapping_add(x);
            }
        }
        None => {
            for (i, &p) in positions.iter().enumerate() {
                let g = *ids.get(i)? as usize;
                let s = sums.get_mut(g)?;
                *s = s.wrapping_add(*ints.get(p)?);
            }
        }
    }
    Some(sums)
}

/// Per-group sum of an `f64` slice steered by group ids, in scan order —
/// the same order the scalar per-row path folds in, so results are
/// bit-identical.
fn grouped_float_sums(
    floats: &[f64],
    positions: &[usize],
    ids: &[u32],
    ng: usize,
) -> Option<Vec<f64>> {
    let mut sums = vec![0.0f64; ng];
    match contiguous_start(positions) {
        Some(start) => {
            let vals = floats.get(start..start + positions.len())?;
            for (i, &x) in vals.iter().enumerate() {
                *sums.get_mut(*ids.get(i)? as usize)? += x;
            }
        }
        None => {
            for (i, &p) in positions.iter().enumerate() {
                *sums.get_mut(*ids.get(i)? as usize)? += *floats.get(p)?;
            }
        }
    }
    Some(sums)
}

fn grouped_int_extrema(
    kind: AggKind,
    ints: &[i64],
    positions: &[usize],
    ids: &[u32],
    ng: usize,
) -> Option<Vec<Option<i64>>> {
    let mut best: Vec<Option<i64>> = vec![None; ng];
    for (i, &p) in positions.iter().enumerate() {
        let x = *ints.get(p)?;
        let slot = best.get_mut(*ids.get(i)? as usize)?;
        *slot = Some(match *slot {
            None => x,
            Some(cur) if kind == AggKind::Min => cur.min(x),
            Some(cur) => cur.max(x),
        });
    }
    Some(best)
}

/// Grouped fused aggregation: accumulate one [`AggState`] per group of
/// `map`, reading `values` through `cand` (the selection vector) without
/// materializing the filtered column. `values` is the *raw* column the
/// grouping candidates refer to; `map` must have been built with the same
/// candidate list (`map.len() == cand.len()`).
///
/// Returns `None` whenever the shape falls outside the typed fast paths —
/// NULLs present, non-numeric input, float MIN/MAX (NaN ordering lives in
/// the scalar path), or misaligned inputs — so callers fall back to the
/// general materialize-then-aggregate path. When `Some`, every state is
/// field-identical to what the scalar path produces (same accumulation
/// order, so float sums match bit-for-bit).
pub fn fused_grouped_states(
    kind: AggKind,
    values: Option<&Bat>,
    map: &GroupMap,
    cand: Option<&Candidates>,
) -> Option<Vec<AggState>> {
    let ng = map.ngroups();
    let mut rows = vec![0u64; ng];
    for &g in &map.ids {
        *rows.get_mut(g as usize)? += 1;
    }

    if kind == AggKind::CountStar {
        return Some(count_states(kind, rows));
    }
    let v = values?;
    if v.has_nulls() {
        return None;
    }
    let full;
    let cand = match cand {
        Some(c) => c,
        None => {
            full = Candidates::all(v);
            &full
        }
    };
    let positions = cand.positions_in(v);
    if positions.len() != map.len() {
        return None;
    }

    match kind {
        AggKind::CountStar | AggKind::Count => Some(count_states(kind, rows)),
        AggKind::Sum | AggKind::Avg => {
            if let Some(ints) = v.data().as_ints() {
                let sums = grouped_int_sums(ints, &positions, &map.ids, ng)?;
                return Some(
                    rows.iter()
                        .zip(&sums)
                        .map(|(&r, &s)| {
                            let acc = FusedAcc { sum_int: s, ..FusedAcc::counted(r) };
                            AggState::from_fused(kind, acc, DataType::Int)
                        })
                        .collect(),
                );
            }
            if let Some(floats) = v.data().as_floats() {
                let sums = grouped_float_sums(floats, &positions, &map.ids, ng)?;
                return Some(
                    rows.iter()
                        .zip(&sums)
                        .map(|(&r, &s)| {
                            let acc =
                                FusedAcc { sum_float: s, float: true, ..FusedAcc::counted(r) };
                            AggState::from_fused(kind, acc, DataType::Float)
                        })
                        .collect(),
                );
            }
            None
        }
        AggKind::Min | AggKind::Max => {
            let ints = v.data().as_ints()?;
            let best = grouped_int_extrema(kind, ints, &positions, &map.ids, ng)?;
            let ty = ord_type(v);
            Some(
                rows.iter()
                    .zip(&best)
                    .map(|(&r, &b)| {
                        let mut acc = FusedAcc::counted(r);
                        if kind == AggKind::Min {
                            acc.min = b;
                        } else {
                            acc.max = b;
                        }
                        AggState::from_fused(kind, acc, ty)
                    })
                    .collect(),
            )
        }
    }
}

/// Global (ungrouped) fused aggregation: one [`AggState`] over the rows of
/// `values` selected by `cand`, with contiguous-slice fast paths for dense
/// candidate ranges. Same fallback contract as [`fused_grouped_states`].
pub fn fused_global_state(
    kind: AggKind,
    values: Option<&Bat>,
    cand: &Candidates,
) -> Option<AggState> {
    if kind == AggKind::CountStar {
        let acc = FusedAcc::counted(cand.len() as u64);
        return Some(AggState::from_fused(kind, acc, DataType::Int));
    }
    let v = values?;
    if v.has_nulls() {
        return None;
    }
    let positions = cand.positions_in(v);
    let n = positions.len() as u64;

    match kind {
        AggKind::CountStar | AggKind::Count => {
            Some(AggState::from_fused(kind, FusedAcc::counted(n), DataType::Int))
        }
        AggKind::Sum | AggKind::Avg => {
            if let Some(ints) = v.data().as_ints() {
                let mut s = 0i64;
                match contiguous_start(&positions) {
                    Some(start) => {
                        for &x in ints.get(start..start + positions.len())? {
                            s = s.wrapping_add(x);
                        }
                    }
                    None => {
                        for &p in &positions {
                            s = s.wrapping_add(*ints.get(p)?);
                        }
                    }
                }
                let acc = FusedAcc { sum_int: s, ..FusedAcc::counted(n) };
                return Some(AggState::from_fused(kind, acc, DataType::Int));
            }
            if let Some(floats) = v.data().as_floats() {
                let mut s = 0.0f64;
                match contiguous_start(&positions) {
                    Some(start) => {
                        for &x in floats.get(start..start + positions.len())? {
                            s += x;
                        }
                    }
                    None => {
                        for &p in &positions {
                            s += *floats.get(p)?;
                        }
                    }
                }
                let acc = FusedAcc { sum_float: s, float: true, ..FusedAcc::counted(n) };
                return Some(AggState::from_fused(kind, acc, DataType::Float));
            }
            None
        }
        AggKind::Min | AggKind::Max => {
            let ints = v.data().as_ints()?;
            let mut best: Option<i64> = None;
            for &p in &positions {
                let x = *ints.get(p)?;
                best = Some(match best {
                    None => x,
                    Some(cur) if kind == AggKind::Min => cur.min(x),
                    Some(cur) => cur.max(x),
                });
            }
            let mut acc = FusedAcc::counted(n);
            if kind == AggKind::Min {
                acc.min = best;
            } else {
                acc.max = best;
            }
            Some(AggState::from_fused(kind, acc, ord_type(v)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_col_col() {
        let a = Bat::from_ints(vec![1, 2, 3]);
        let b = Bat::from_ints(vec![10, 20, 30]);
        let r = arith_cols(ArithOp::Add, &a, &b).unwrap();
        assert_eq!(r.data().as_ints().unwrap(), &[11, 22, 33]);
        assert_eq!(r.data_type(), DataType::Int);
    }

    #[test]
    fn mixed_int_float_widens() {
        let a = Bat::from_ints(vec![1, 2]);
        let b = Bat::from_floats(vec![0.5, 0.5]);
        let r = arith_cols(ArithOp::Mul, &a, &b).unwrap();
        assert_eq!(r.data_type(), DataType::Float);
        assert_eq!(r.data().as_floats().unwrap(), &[0.5, 1.0]);
    }

    #[test]
    fn const_operand() {
        let a = Bat::from_ints(vec![3, 6]);
        let r = arith_const(ArithOp::Div, &a, &Value::Int(3)).unwrap();
        assert_eq!(r.data().as_ints().unwrap(), &[1, 2]);
        let r = arith_const_left(ArithOp::Sub, &Value::Int(10), &a).unwrap();
        assert_eq!(r.data().as_ints().unwrap(), &[7, 4]);
    }

    #[test]
    fn div_by_zero_yields_null() {
        let a = Bat::from_ints(vec![4, 8]);
        let b = Bat::from_ints(vec![2, 0]);
        let r = arith_cols(ArithOp::Div, &a, &b).unwrap();
        assert_eq!(r.get_at(0), Value::Int(2));
        assert_eq!(r.get_at(1), Value::Null);
    }

    #[test]
    fn null_propagates() {
        let mut a = Bat::new(DataType::Int);
        a.push(&Value::Int(1)).unwrap();
        a.push(&Value::Null).unwrap();
        let r = arith_const(ArithOp::Add, &a, &Value::Int(1)).unwrap();
        assert_eq!(r.get_at(0), Value::Int(2));
        assert_eq!(r.get_at(1), Value::Null);
    }

    #[test]
    fn null_constant_nullifies_all() {
        let a = Bat::from_ints(vec![1, 2]);
        let r = arith_const(ArithOp::Add, &a, &Value::Null).unwrap();
        assert_eq!(r.get_at(0), Value::Null);
        assert_eq!(r.get_at(1), Value::Null);
    }

    #[test]
    fn length_mismatch_rejected() {
        let a = Bat::from_ints(vec![1]);
        let b = Bat::from_ints(vec![1, 2]);
        assert!(matches!(
            arith_cols(ArithOp::Add, &a, &b),
            Err(AlgebraError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn string_arith_rejected() {
        let a = Bat::from_vector(
            Vector::from(vec!["x".to_string()]),
            0,
        );
        let b = Bat::from_ints(vec![1]);
        assert!(arith_cols(ArithOp::Add, &a, &b).is_err());
    }

    #[test]
    fn timestamp_arithmetic() {
        let ts = Bat::from_vector(Vector::Timestamp(vec![100, 200].into()), 0);
        let r = arith_const(ArithOp::Add, &ts, &Value::Int(5)).unwrap();
        assert_eq!(r.data_type(), DataType::Timestamp);
        assert_eq!(r.data().as_ints().unwrap(), &[105, 205]);
        // timestamp - timestamp = int (duration)
        let d = arith_cols(ArithOp::Sub, &ts, &ts).unwrap();
        assert_eq!(d.data_type(), DataType::Int);
    }

    #[test]
    fn negate_and_cast() {
        let a = Bat::from_ints(vec![5, -3]);
        let n = negate(&a).unwrap();
        assert_eq!(n.data().as_ints().unwrap(), &[-5, 3]);
        let f = cast(&a, DataType::Float).unwrap();
        assert_eq!(f.data().as_floats().unwrap(), &[5.0, -3.0]);
        let same = cast(&a, DataType::Int).unwrap();
        assert_eq!(same, a);
    }

    #[test]
    fn mod_semantics() {
        let a = Bat::from_ints(vec![7, -7]);
        let r = arith_const(ArithOp::Mod, &a, &Value::Int(3)).unwrap();
        assert_eq!(r.data().as_ints().unwrap(), &[1, -1]);
    }

    use crate::aggregate::{aggregate_all, aggregate_groups};
    use crate::group::group_by;

    fn all_kinds() -> [AggKind; 6] {
        [
            AggKind::CountStar,
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
        ]
    }

    #[test]
    fn fused_grouped_matches_scalar_int() {
        let keys = Bat::from_ints(vec![1, 2, 1, 3, 2, 1]);
        let vals = Bat::from_ints(vec![10, 20, 30, 40, 50, 60]);
        for cand in [None, Some(Candidates::range(1, 5)), Some(Candidates::List(vec![0, 2, 5]))] {
            let map = group_by(&[&keys], cand.as_ref()).unwrap();
            for kind in all_kinds() {
                let fused =
                    fused_grouped_states(kind, Some(&vals), &map, cand.as_ref()).unwrap();
                let scalar = aggregate_groups(kind, &vals, &map, cand.as_ref()).unwrap();
                assert_eq!(fused, scalar, "kind {kind:?} cand {cand:?}");
            }
        }
    }

    #[test]
    fn fused_grouped_matches_scalar_float() {
        let keys = Bat::from_ints(vec![7, 8, 7, 8]);
        let vals = Bat::from_floats(vec![0.1, 0.2, 0.3, 0.4]);
        let map = group_by(&[&keys], None).unwrap();
        for kind in [AggKind::Sum, AggKind::Avg] {
            let fused = fused_grouped_states(kind, Some(&vals), &map, None).unwrap();
            let scalar = aggregate_groups(kind, &vals, &map, None).unwrap();
            assert_eq!(fused, scalar, "kind {kind:?}");
        }
        // Float MIN/MAX stays on the scalar path (NaN ordering).
        assert!(fused_grouped_states(AggKind::Min, Some(&vals), &map, None).is_none());
    }

    #[test]
    fn fused_grouped_count_star_without_values() {
        let keys = Bat::from_ints(vec![1, 1, 2]);
        let map = group_by(&[&keys], None).unwrap();
        let fused = fused_grouped_states(AggKind::CountStar, None, &map, None).unwrap();
        assert_eq!(fused[0].finalize(), Value::Int(2));
        assert_eq!(fused[1].finalize(), Value::Int(1));
    }

    #[test]
    fn fused_falls_back_on_nulls() {
        let mut vals = Bat::new(DataType::Int);
        vals.push(&Value::Int(1)).unwrap();
        vals.push(&Value::Null).unwrap();
        let keys = Bat::from_ints(vec![1, 1]);
        let map = group_by(&[&keys], None).unwrap();
        assert!(fused_grouped_states(AggKind::Sum, Some(&vals), &map, None).is_none());
        assert!(fused_global_state(AggKind::Sum, Some(&vals), &Candidates::all(&vals)).is_none());
        // CountStar never needs the values column, so it stays fused.
        assert!(fused_grouped_states(AggKind::CountStar, Some(&vals), &map, None).is_some());
    }

    #[test]
    fn fused_global_matches_scalar() {
        let vals = Bat::from_vector(vec![5i64, -2, 9, 4].into(), 100);
        for cand in [
            Candidates::all(&vals),
            Candidates::range(101, 103),
            Candidates::List(vec![100, 103]),
            Candidates::empty(),
        ] {
            for kind in all_kinds() {
                let fused = fused_global_state(kind, Some(&vals), &cand).unwrap();
                let scalar = aggregate_all(kind, &vals, Some(&cand));
                assert_eq!(fused.finalize(), scalar.finalize(), "kind {kind:?} cand {cand:?}");
            }
        }
    }

    #[test]
    fn fused_global_float_bit_identical() {
        // Same accumulation order as the scalar path ⇒ bit-identical sums.
        let vals = Bat::from_floats(vec![0.1, 0.7, 1e-9, 3.3, -0.5]);
        let cand = Candidates::range(1, 4);
        for kind in [AggKind::Sum, AggKind::Avg] {
            let fused = fused_global_state(kind, Some(&vals), &cand).unwrap();
            let scalar = aggregate_all(kind, &vals, Some(&cand));
            assert_eq!(fused, scalar);
        }
    }

    #[test]
    fn fused_timestamp_extrema_wrap() {
        let vals = Bat::from_vector(Vector::Timestamp(vec![30, 10, 20].into()), 0);
        let fused = fused_global_state(AggKind::Min, Some(&vals), &Candidates::all(&vals));
        assert_eq!(fused.unwrap().finalize(), Value::Timestamp(10));
    }

    #[test]
    fn contiguity_detection() {
        assert_eq!(contiguous_start(&[3, 4, 5]), Some(3));
        assert_eq!(contiguous_start(&[2]), Some(2));
        assert_eq!(contiguous_start(&[]), None);
        assert_eq!(contiguous_start(&[1, 3, 4]), None);
    }
}
