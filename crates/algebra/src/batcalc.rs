//! Element-wise bulk arithmetic over BATs (MonetDB's `batcalc` module).
//!
//! Used by projection expressions (`SELECT a * b + 1 …`). NULLs propagate:
//! if either operand is NULL the result is NULL. Integer division by zero
//! yields NULL (matching MonetDB's permissive bulk semantics) rather than
//! aborting a whole vectorised batch.

use datacell_storage::{Bat, DataType, Value, Vector};

use crate::error::{AlgebraError, Result};

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Mod,
}

impl ArithOp {
    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }

    fn apply_int(self, a: i64, b: i64) -> Option<i64> {
        match self {
            ArithOp::Add => Some(a.wrapping_add(b)),
            ArithOp::Sub => Some(a.wrapping_sub(b)),
            ArithOp::Mul => Some(a.wrapping_mul(b)),
            ArithOp::Div => {
                if b == 0 {
                    None
                } else {
                    Some(a.wrapping_div(b))
                }
            }
            ArithOp::Mod => {
                if b == 0 {
                    None
                } else {
                    Some(a.wrapping_rem(b))
                }
            }
        }
    }

    fn apply_float(self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Mod => a % b,
        }
    }
}

/// Result type of `left op right`, mirroring [`DataType::arith_result`].
pub fn result_type(op: ArithOp, left: DataType, right: DataType) -> Result<DataType> {
    left.arith_result(right).ok_or(AlgebraError::TypeCombination {
        op: op.sql(),
        left,
        right,
    })
}

enum Operand<'a> {
    Col(&'a Bat),
    Const(&'a Value),
}

impl Operand<'_> {
    fn ty(&self, op: ArithOp) -> Result<DataType> {
        match self {
            Operand::Col(b) => Ok(b.data_type()),
            Operand::Const(v) => v.data_type().ok_or(AlgebraError::UnsupportedType {
                op: op.sql(),
                ty: DataType::Bool, // NULL constant: folded by the caller
            }),
        }
    }

    fn len_or(&self, other_len: usize) -> usize {
        match self {
            Operand::Col(b) => b.len(),
            Operand::Const(_) => other_len,
        }
    }

    fn is_null_at(&self, i: usize) -> bool {
        match self {
            Operand::Col(b) => b.is_null_at(i),
            Operand::Const(v) => v.is_null(),
        }
    }

    fn int_at(&self, i: usize) -> i64 {
        match self {
            Operand::Col(b) => b.data().as_ints().map(|s| s[i]).unwrap_or_else(|| {
                b.data().as_floats().map(|s| s[i] as i64).unwrap_or(0)
            }),
            Operand::Const(v) => v.as_int().unwrap_or(0),
        }
    }

    fn float_at(&self, i: usize) -> f64 {
        match self {
            Operand::Col(b) => b
                .data()
                .as_floats()
                .map(|s| s[i])
                .or_else(|| b.data().as_ints().map(|s| s[i] as f64))
                .unwrap_or(0.0),
            Operand::Const(v) => v.as_float().unwrap_or(0.0),
        }
    }
}

fn arith(op: ArithOp, left: Operand<'_>, right: Operand<'_>) -> Result<Bat> {
    let lt = left.ty(op)?;
    let rt = right.ty(op)?;
    let out_ty = result_type(op, lt, rt)?;
    let len = match (&left, &right) {
        (Operand::Col(a), Operand::Col(b)) => {
            if a.len() != b.len() {
                return Err(AlgebraError::LengthMismatch { left: a.len(), right: b.len() });
            }
            a.len()
        }
        _ => left.len_or(right.len_or(0)),
    };

    let mut validity: Option<Vec<bool>> = None;
    let mark_null = |validity: &mut Option<Vec<bool>>, i: usize| {
        validity.get_or_insert_with(|| vec![true; len])[i] = false;
    };

    let data = match out_ty {
        DataType::Int | DataType::Timestamp => {
            let mut out = vec![0i64; len];
            for (i, slot) in out.iter_mut().enumerate() {
                if left.is_null_at(i) || right.is_null_at(i) {
                    mark_null(&mut validity, i);
                    continue;
                }
                match op.apply_int(left.int_at(i), right.int_at(i)) {
                    Some(v) => *slot = v,
                    None => mark_null(&mut validity, i),
                }
            }
            if out_ty == DataType::Timestamp {
                Vector::Timestamp(out.into())
            } else {
                Vector::Int(out.into())
            }
        }
        DataType::Float => {
            let mut out = vec![0.0f64; len];
            for (i, slot) in out.iter_mut().enumerate() {
                if left.is_null_at(i) || right.is_null_at(i) {
                    mark_null(&mut validity, i);
                    continue;
                }
                *slot = op.apply_float(left.float_at(i), right.float_at(i));
            }
            Vector::Float(out.into())
        }
        other => {
            return Err(AlgebraError::UnsupportedType { op: op.sql(), ty: other });
        }
    };
    // lint:allow(panic-freedom): validity was built against data.len() in every arm above
    Ok(Bat::from_parts(data, 0, validity).expect("validity sized to len"))
}

/// `left op right` over two aligned columns.
pub fn arith_cols(op: ArithOp, left: &Bat, right: &Bat) -> Result<Bat> {
    arith(op, Operand::Col(left), Operand::Col(right))
}

/// `left op constant`.
pub fn arith_const(op: ArithOp, left: &Bat, constant: &Value) -> Result<Bat> {
    if constant.is_null() {
        // NULL constant: whole result is NULL of the left type.
        let validity = vec![false; left.len()];
        let data = Vector::with_capacity(left.data_type(), 0);
        let mut filled = data;
        for _ in 0..left.len() {
            filled.push(&Value::Null)?;
        }
        return Ok(Bat::from_parts(filled, 0, Some(validity))?);
    }
    arith(op, Operand::Col(left), Operand::Const(constant))
}

/// `constant op right`.
pub fn arith_const_left(op: ArithOp, constant: &Value, right: &Bat) -> Result<Bat> {
    if constant.is_null() {
        return arith_const(op, right, constant);
    }
    arith(op, Operand::Const(constant), Operand::Col(right))
}

/// Unary negation.
pub fn negate(bat: &Bat) -> Result<Bat> {
    arith_const_left(ArithOp::Sub, &Value::Int(0), bat)
}

/// Cast a whole column to `target` using [`Value::coerce`] semantics.
pub fn cast(bat: &Bat, target: DataType) -> Result<Bat> {
    if bat.data_type() == target {
        return Ok(bat.clone());
    }
    let mut out = Bat::new(target);
    for i in 0..bat.len() {
        let v = bat.get_at(i);
        let coerced = v.coerce(target).ok_or(AlgebraError::UnsupportedType {
            op: "cast",
            ty: bat.data_type(),
        })?;
        out.push(&coerced)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_col_col() {
        let a = Bat::from_ints(vec![1, 2, 3]);
        let b = Bat::from_ints(vec![10, 20, 30]);
        let r = arith_cols(ArithOp::Add, &a, &b).unwrap();
        assert_eq!(r.data().as_ints().unwrap(), &[11, 22, 33]);
        assert_eq!(r.data_type(), DataType::Int);
    }

    #[test]
    fn mixed_int_float_widens() {
        let a = Bat::from_ints(vec![1, 2]);
        let b = Bat::from_floats(vec![0.5, 0.5]);
        let r = arith_cols(ArithOp::Mul, &a, &b).unwrap();
        assert_eq!(r.data_type(), DataType::Float);
        assert_eq!(r.data().as_floats().unwrap(), &[0.5, 1.0]);
    }

    #[test]
    fn const_operand() {
        let a = Bat::from_ints(vec![3, 6]);
        let r = arith_const(ArithOp::Div, &a, &Value::Int(3)).unwrap();
        assert_eq!(r.data().as_ints().unwrap(), &[1, 2]);
        let r = arith_const_left(ArithOp::Sub, &Value::Int(10), &a).unwrap();
        assert_eq!(r.data().as_ints().unwrap(), &[7, 4]);
    }

    #[test]
    fn div_by_zero_yields_null() {
        let a = Bat::from_ints(vec![4, 8]);
        let b = Bat::from_ints(vec![2, 0]);
        let r = arith_cols(ArithOp::Div, &a, &b).unwrap();
        assert_eq!(r.get_at(0), Value::Int(2));
        assert_eq!(r.get_at(1), Value::Null);
    }

    #[test]
    fn null_propagates() {
        let mut a = Bat::new(DataType::Int);
        a.push(&Value::Int(1)).unwrap();
        a.push(&Value::Null).unwrap();
        let r = arith_const(ArithOp::Add, &a, &Value::Int(1)).unwrap();
        assert_eq!(r.get_at(0), Value::Int(2));
        assert_eq!(r.get_at(1), Value::Null);
    }

    #[test]
    fn null_constant_nullifies_all() {
        let a = Bat::from_ints(vec![1, 2]);
        let r = arith_const(ArithOp::Add, &a, &Value::Null).unwrap();
        assert_eq!(r.get_at(0), Value::Null);
        assert_eq!(r.get_at(1), Value::Null);
    }

    #[test]
    fn length_mismatch_rejected() {
        let a = Bat::from_ints(vec![1]);
        let b = Bat::from_ints(vec![1, 2]);
        assert!(matches!(
            arith_cols(ArithOp::Add, &a, &b),
            Err(AlgebraError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn string_arith_rejected() {
        let a = Bat::from_vector(
            Vector::from(vec!["x".to_string()]),
            0,
        );
        let b = Bat::from_ints(vec![1]);
        assert!(arith_cols(ArithOp::Add, &a, &b).is_err());
    }

    #[test]
    fn timestamp_arithmetic() {
        let ts = Bat::from_vector(Vector::Timestamp(vec![100, 200].into()), 0);
        let r = arith_const(ArithOp::Add, &ts, &Value::Int(5)).unwrap();
        assert_eq!(r.data_type(), DataType::Timestamp);
        assert_eq!(r.data().as_ints().unwrap(), &[105, 205]);
        // timestamp - timestamp = int (duration)
        let d = arith_cols(ArithOp::Sub, &ts, &ts).unwrap();
        assert_eq!(d.data_type(), DataType::Int);
    }

    #[test]
    fn negate_and_cast() {
        let a = Bat::from_ints(vec![5, -3]);
        let n = negate(&a).unwrap();
        assert_eq!(n.data().as_ints().unwrap(), &[-5, 3]);
        let f = cast(&a, DataType::Float).unwrap();
        assert_eq!(f.data().as_floats().unwrap(), &[5.0, -3.0]);
        let same = cast(&a, DataType::Int).unwrap();
        assert_eq!(same, a);
    }

    #[test]
    fn mod_semantics() {
        let a = Bat::from_ints(vec![7, -7]);
        let r = arith_const(ArithOp::Mod, &a, &Value::Int(3)).unwrap();
        assert_eq!(r.data().as_ints().unwrap(), &[1, -1]);
    }
}
