//! Grouping (MonetDB's `group.group` / `group.subgroup`): map each row of
//! one or more key columns to a dense group id.
//!
//! The output `GroupMap` is the glue between grouping and aggregation: each
//! aggregate then runs over the value column steered by the group ids. NULL
//! keys form their own single group (SQL GROUP BY semantics).

use std::collections::HashMap;

use datacell_storage::{Bat, Chunk};

use crate::candidates::Candidates;
use crate::error::{AlgebraError, Result};
use crate::join::JoinKey;

/// Result of grouping `n` rows into `ngroups` groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupMap {
    /// For each input row (in candidate order), its group id `0..ngroups`.
    pub ids: Vec<u32>,
    /// For each group, the physical position of its first member row.
    pub representatives: Vec<usize>,
}

impl GroupMap {
    /// Number of groups.
    pub fn ngroups(&self) -> usize {
        self.representatives.len()
    }

    /// Number of grouped input rows.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True iff no rows were grouped.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Key of one row across multiple group-by columns. `None` encodes NULL.
type RowKey = Vec<Option<JoinKey>>;

/// Group rows of `keys` columns (all equal length, aligned) restricted to
/// `cand`. Group ids are assigned in first-appearance order, so the
/// representative positions are ascending.
pub fn group_by(keys: &[&Bat], cand: Option<&Candidates>) -> Result<GroupMap> {
    let first = keys.first().ok_or(AlgebraError::GroupMismatch { groups: 0, values: 0 })?;
    for k in keys {
        if k.len() != first.len() {
            return Err(AlgebraError::LengthMismatch { left: first.len(), right: k.len() });
        }
    }
    let full = Candidates::all(first);
    let cand = cand.unwrap_or(&full);
    let positions = cand.positions_in(first);

    // Typed single-key fast paths: no Value materialization, no per-row
    // RowKey allocation. These carry the windowed-aggregation hot path
    // (every sliding-window GROUP BY fire lands here).
    if let [key] = keys {
        if !key.has_nulls() {
            if let Some(ints) = key.data().as_ints() {
                return Ok(group_typed(&positions, |p| ints[p]));
            }
            if let Some(strs) = key.data().as_strs() {
                return Ok(group_typed(&positions, |p| strs[p].as_str()));
            }
        }
    }

    let mut ids = Vec::with_capacity(positions.len());
    let mut representatives = Vec::new();
    let mut seen: HashMap<RowKey, u32> = HashMap::new();

    for &pos in &positions {
        let key: RowKey = keys
            .iter()
            .map(|k| JoinKey::from_value(&k.get_at(pos)))
            .collect();
        let next = seen.len() as u32;
        let id = *seen.entry(key).or_insert_with(|| {
            representatives.push(pos);
            next
        });
        ids.push(id);
    }
    Ok(GroupMap { ids, representatives })
}

/// Grouping driven by a borrowed typed key extractor (fast path helper).
fn group_typed<K: std::hash::Hash + Eq>(
    positions: &[usize],
    key_at: impl Fn(usize) -> K,
) -> GroupMap {
    let mut ids = Vec::with_capacity(positions.len());
    let mut representatives = Vec::new();
    let mut seen: HashMap<K, u32> = HashMap::with_capacity(16);
    for &pos in positions {
        let next = seen.len() as u32;
        let id = *seen.entry(key_at(pos)).or_insert_with(|| {
            representatives.push(pos);
            next
        });
        ids.push(id);
    }
    GroupMap { ids, representatives }
}

/// Materialize the group-key columns: one row per group, in group-id order.
pub fn group_heads(keys: &[&Bat], map: &GroupMap) -> Chunk {
    let cols = keys
        .iter()
        .map(|k| k.gather_positions(&map.representatives))
        .collect::<Vec<_>>();
    // lint:allow(panic-freedom): every key column is gathered with the same representative list
    Chunk::new(cols).expect("representatives align across key columns")
}

/// Count of rows per group.
pub fn group_counts(map: &GroupMap) -> Vec<u64> {
    let mut counts = vec![0u64; map.ngroups()];
    for &id in &map.ids {
        counts[id as usize] += 1;
    }
    counts
}

/// Distinct values of a single column (used by `SELECT DISTINCT`).
pub fn distinct(bat: &Bat, cand: Option<&Candidates>) -> Result<Bat> {
    let map = group_by(&[bat], cand)?;
    Ok(bat.gather_positions(&map.representatives))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::{DataType, Value};

    #[test]
    fn single_column_grouping() {
        let b = Bat::from_ints(vec![5, 3, 5, 5, 3]);
        let g = group_by(&[&b], None).unwrap();
        assert_eq!(g.ngroups(), 2);
        assert_eq!(g.ids, vec![0, 1, 0, 0, 1]);
        assert_eq!(g.representatives, vec![0, 1]);
        assert_eq!(group_counts(&g), vec![3, 2]);
    }

    #[test]
    fn multi_column_grouping() {
        let a = Bat::from_ints(vec![1, 1, 2, 1]);
        let b = Bat::from_ints(vec![10, 20, 10, 10]);
        let g = group_by(&[&a, &b], None).unwrap();
        assert_eq!(g.ngroups(), 3);
        assert_eq!(g.ids, vec![0, 1, 2, 0]);
        let heads = group_heads(&[&a, &b], &g);
        assert_eq!(heads.len(), 3);
        assert_eq!(heads.row(0), vec![Value::Int(1), Value::Int(10)]);
        assert_eq!(heads.row(2), vec![Value::Int(2), Value::Int(10)]);
    }

    #[test]
    fn nulls_form_one_group() {
        let mut b = Bat::new(DataType::Int);
        b.push(&Value::Null).unwrap();
        b.push(&Value::Int(1)).unwrap();
        b.push(&Value::Null).unwrap();
        let g = group_by(&[&b], None).unwrap();
        assert_eq!(g.ngroups(), 2);
        assert_eq!(g.ids, vec![0, 1, 0]);
    }

    #[test]
    fn grouping_respects_candidates() {
        let b = Bat::from_ints(vec![1, 2, 1, 3]);
        let cand = Candidates::List(vec![1, 3]);
        let g = group_by(&[&b], Some(&cand)).unwrap();
        assert_eq!(g.ngroups(), 2);
        assert_eq!(g.ids, vec![0, 1]);
        assert_eq!(g.representatives, vec![1, 3]);
    }

    #[test]
    fn distinct_values() {
        let b = Bat::from_ints(vec![3, 1, 3, 2, 1]);
        let d = distinct(&b, None).unwrap();
        assert_eq!(d.data().as_ints().unwrap(), &[3, 1, 2]);
    }

    #[test]
    fn empty_keys_rejected() {
        assert!(group_by(&[], None).is_err());
    }

    #[test]
    fn mismatched_key_lengths_rejected() {
        let a = Bat::from_ints(vec![1]);
        let b = Bat::from_ints(vec![1, 2]);
        assert!(group_by(&[&a, &b], None).is_err());
    }
}
