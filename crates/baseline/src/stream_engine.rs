//! A tuple-at-a-time continuous engine: DataCell's window semantics driven
//! by the Volcano executor. Benchmarks run the *same* SQL on this engine
//! and on DataCell; the only difference is the execution model.

use std::collections::HashMap;

use datacell_plan::{compile, Binder, CompiledQuery, PlanError};
use datacell_sql::{parse_statement, Statement, WindowSpec};
use datacell_storage::{Catalog, Row, Schema};

use crate::volcano::{execute_volcano, RowSources};

/// Per-stream row buffer with an absolute offset (mirrors basket OIDs).
#[derive(Debug, Default)]
struct RowBuffer {
    rows: Vec<Row>,
    /// Absolute index of `rows[0]`.
    base: u64,
}

impl RowBuffer {
    fn high(&self) -> u64 {
        self.base + self.rows.len() as u64
    }

    fn slice(&self, lo: u64, hi: u64) -> Vec<Row> {
        let lo = lo.clamp(self.base, self.high());
        let hi = hi.clamp(lo, self.high());
        self.rows[(lo - self.base) as usize..(hi - self.base) as usize].to_vec()
    }

    fn retire_before(&mut self, keep_from: u64) {
        if keep_from <= self.base {
            return;
        }
        let n = (keep_from.min(self.high()) - self.base) as usize;
        self.rows.drain(..n);
        self.base += n as u64;
    }
}

struct VQuery {
    id: u64,
    compiled: CompiledQuery,
    /// Per-stream cursor: (binding, window, next window end / next unseen).
    cursors: Vec<(String, Option<WindowSpec>, u64)>,
}

/// Tuple-at-a-time comparator engine (ROWS windows and unwindowed queries).
pub struct VolcanoEngine {
    catalog: Catalog,
    streams: HashMap<String, RowBuffer>,
    queries: Vec<VQuery>,
    results: HashMap<u64, Vec<Vec<Row>>>,
    next_id: u64,
}

impl Default for VolcanoEngine {
    fn default() -> Self {
        VolcanoEngine {
            catalog: Catalog::new(),
            streams: HashMap::new(),
            queries: Vec::new(),
            results: HashMap::new(),
            next_id: 1,
        }
    }
}

impl VolcanoEngine {
    /// New empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Run a DDL/INSERT statement (CREATE STREAM / CREATE TABLE / INSERT).
    pub fn execute(&mut self, sql: &str) -> Result<(), PlanError> {
        match parse_statement(sql)? {
            Statement::CreateStream { name, columns } => {
                let schema = schema_of(&columns);
                self.catalog.create_stream(&name, schema)?;
                self.streams.insert(name.to_ascii_lowercase(), RowBuffer::default());
                Ok(())
            }
            Statement::CreateTable { name, columns } => {
                self.catalog.create_table(&name, schema_of(&columns))?;
                Ok(())
            }
            Statement::Insert { table, rows } => {
                let mut converted = Vec::with_capacity(rows.len());
                for row in &rows {
                    converted.push(
                        row.iter()
                            .map(datacell_plan::literal_to_value)
                            .collect::<Result<Row, PlanError>>()?,
                    );
                }
                let handle = self.catalog.table(&table)?;
                handle.write().insert_rows(&converted)?;
                Ok(())
            }
            other => Err(PlanError::Unsupported(format!(
                "VolcanoEngine::execute supports DDL/INSERT, got {other}"
            ))),
        }
    }

    /// Register a continuous query (ROWS windows or unwindowed).
    pub fn register_query(&mut self, sql: &str) -> Result<u64, PlanError> {
        let stmt = match parse_statement(sql)? {
            Statement::Select(s) => s,
            other => {
                return Err(PlanError::Unsupported(format!("not a SELECT: {other}")))
            }
        };
        let bound = Binder::new(&self.catalog).bind_select(&stmt)?;
        let compiled = compile(sql, bound)?;
        let mut cursors = Vec::new();
        for s in &compiled.streams {
            let buffer = self
                .streams
                .get(&s.object.to_ascii_lowercase())
                .ok_or_else(|| PlanError::MissingSource(s.object.clone()))?;
            let start = match &s.window {
                None => buffer.high(),
                Some(WindowSpec::Rows { slide, .. }) => buffer.high() + slide,
                Some(WindowSpec::Range { .. }) => {
                    return Err(PlanError::Unsupported(
                        "VolcanoEngine supports ROWS windows only".into(),
                    ))
                }
            };
            cursors.push((s.object.to_ascii_lowercase(), s.window.clone(), start));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.queries.push(VQuery { id, compiled, cursors });
        self.results.insert(id, Vec::new());
        Ok(id)
    }

    /// Append rows to a stream buffer.
    pub fn push_rows(&mut self, stream: &str, rows: &[Row]) -> Result<usize, PlanError> {
        let buffer = self
            .streams
            .get_mut(&stream.to_ascii_lowercase())
            .ok_or_else(|| PlanError::MissingSource(stream.to_owned()))?;
        buffer.rows.extend(rows.iter().cloned());
        Ok(rows.len())
    }

    /// Fire every ready query repeatedly until quiescent; returns firings.
    pub fn run_until_idle(&mut self) -> Result<u64, PlanError> {
        let mut total = 0u64;
        loop {
            let mut fired = 0u64;
            for qi in 0..self.queries.len() {
                while self.ready(qi) {
                    self.fire(qi)?;
                    fired += 1;
                }
            }
            if fired == 0 {
                break;
            }
            total += fired;
        }
        self.retire();
        Ok(total)
    }

    fn ready(&self, qi: usize) -> bool {
        let q = &self.queries[qi];
        !q.cursors.is_empty()
            && q.cursors.iter().all(|(obj, window, cursor)| {
                let high = self.streams[obj].high();
                match window {
                    None => high > *cursor,
                    Some(WindowSpec::Rows { .. }) => high >= *cursor,
                    Some(WindowSpec::Range { .. }) => false,
                }
            })
    }

    fn fire(&mut self, qi: usize) -> Result<(), PlanError> {
        // (stream binding, lowercased object name, window spec) per cursor.
        type WindowedBinding = (String, String, Option<WindowSpec>);
        let (id, plan, tables, windows): (u64, _, _, Vec<WindowedBinding>) = {
            let q = &self.queries[qi];
            (
                q.id,
                q.compiled.plan.clone(),
                q.compiled.tables.clone(),
                q.compiled
                    .streams
                    .iter()
                    .map(|s| {
                        (s.binding.clone(), s.object.to_ascii_lowercase(), s.window.clone())
                    })
                    .collect(),
            )
        };
        let mut sources = RowSources::new();
        for (ci, (binding, object, window)) in windows.iter().enumerate() {
            let cursor = self.queries[qi].cursors[ci].2;
            let buffer = &self.streams[object];
            let rows = match window {
                None => {
                    let rows = buffer.slice(cursor, buffer.high());
                    self.queries[qi].cursors[ci].2 = buffer.high();
                    rows
                }
                Some(WindowSpec::Rows { size, slide }) => {
                    let win_end = cursor;
                    let rows = buffer.slice(win_end.saturating_sub(*size), win_end);
                    self.queries[qi].cursors[ci].2 = win_end + slide;
                    rows
                }
                // lint:allow(panic-freedom): register() rejects RANGE windows before any query reaches this loop
                Some(WindowSpec::Range { .. }) => unreachable!("rejected at register"),
            };
            sources.insert(binding.to_ascii_lowercase(), rows);
        }
        for (binding, object) in &tables {
            let handle = self.catalog.table(object)?;
            let rows: Vec<Row> = handle.read().scan().rows().collect();
            sources.insert(binding.to_ascii_lowercase(), rows);
        }
        let out = execute_volcano(&plan, &sources)?;
        self.results.entry(id).or_default().push(out);
        Ok(())
    }

    fn retire(&mut self) {
        // Per stream object, the minimum index still needed.
        let mut needed: HashMap<String, u64> = HashMap::new();
        for q in &self.queries {
            for (obj, window, cursor) in &q.cursors {
                let need = match window {
                    None => *cursor,
                    Some(WindowSpec::Rows { size, slide }) => {
                        (*cursor + slide).saturating_sub(*size + slide)
                    }
                    Some(WindowSpec::Range { .. }) => 0,
                };
                needed
                    .entry(obj.clone())
                    .and_modify(|m| *m = (*m).min(need))
                    .or_insert(need);
            }
        }
        for (obj, bound) in needed {
            if let Some(buf) = self.streams.get_mut(&obj) {
                buf.retire_before(bound);
            }
        }
    }

    /// Take all pending result batches for a query.
    pub fn take_results(&mut self, id: u64) -> Vec<Vec<Row>> {
        self.results.get_mut(&id).map(std::mem::take).unwrap_or_default()
    }
}

fn schema_of(columns: &[datacell_sql::ColumnSpec]) -> Schema {
    Schema::new(
        columns
            .iter()
            .map(|c| datacell_storage::ColumnDef {
                name: c.name.clone(),
                ty: datacell_plan::type_of(c.ty),
                not_null: c.not_null,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::Value;

    fn rows(n: usize, start: i64) -> Vec<Row> {
        (0..n as i64)
            .map(|i| vec![Value::Int(start + i), Value::Int((start + i) % 3)])
            .collect()
    }

    fn engine() -> VolcanoEngine {
        let mut e = VolcanoEngine::new();
        e.execute("CREATE STREAM s (v BIGINT, k BIGINT)").unwrap();
        e
    }

    #[test]
    fn unwindowed_consume_once() {
        let mut e = engine();
        let q = e.register_query("SELECT COUNT(*) FROM s").unwrap();
        e.push_rows("s", &rows(5, 0)).unwrap();
        e.run_until_idle().unwrap();
        e.push_rows("s", &rows(2, 5)).unwrap();
        e.run_until_idle().unwrap();
        let out = e.take_results(q);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][0][0], Value::Int(5));
        assert_eq!(out[1][0][0], Value::Int(2));
    }

    #[test]
    fn sliding_window_matches_datacell_semantics() {
        let mut e = engine();
        let q = e.register_query("SELECT COUNT(*) FROM s [ROWS 6 SLIDE 2]").unwrap();
        e.push_rows("s", &rows(10, 0)).unwrap();
        e.run_until_idle().unwrap();
        let out = e.take_results(q);
        let counts: Vec<Value> = out.iter().map(|b| b[0][0].clone()).collect();
        assert_eq!(
            counts,
            vec![Value::Int(2), Value::Int(4), Value::Int(6), Value::Int(6), Value::Int(6)]
        );
    }

    #[test]
    fn grouped_window_aggregate() {
        let mut e = engine();
        let q = e
            .register_query("SELECT k, SUM(v) FROM s [ROWS 6] GROUP BY k")
            .unwrap();
        e.push_rows("s", &rows(6, 0)).unwrap();
        e.run_until_idle().unwrap();
        let out = e.take_results(q);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 3); // groups 0,1,2
    }

    #[test]
    fn range_window_rejected() {
        let mut e = engine();
        e.execute("CREATE STREAM t (ts TIMESTAMP, v BIGINT)").unwrap();
        let err = e
            .register_query("SELECT COUNT(*) FROM t [RANGE 10 ON ts SLIDE 5]")
            .unwrap_err();
        assert!(matches!(err, PlanError::Unsupported(_)));
    }

    #[test]
    fn buffers_retire_consumed_rows() {
        let mut e = engine();
        let _q = e.register_query("SELECT COUNT(*) FROM s").unwrap();
        e.push_rows("s", &rows(100, 0)).unwrap();
        e.run_until_idle().unwrap();
        assert!(e.streams["s"].rows.is_empty());
        assert_eq!(e.streams["s"].base, 100);
    }
}
