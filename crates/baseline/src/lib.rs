//! # datacell-baseline
//!
//! Comparator engines for the paper's architectural claims (§2):
//!
//! * [`volcano`] — the same logical plans executed tuple-at-a-time with an
//!   interpreted Volcano iterator model (what STREAM/Aurora-generation
//!   engines did), isolating the bulk-vs-tuple execution difference.
//! * [`stream_engine`] — a continuous engine wrapper around the Volcano
//!   executor with DataCell-identical window semantics.
//! * [`store_first`] — store-first-query-later: append to a table, re-run
//!   the one-time query over the whole history per batch (the traditional
//!   DBMS answer Truviso/DataCell are contrasted with).

#![warn(missing_docs)]

pub mod store_first;
pub mod stream_engine;
pub mod volcano;

pub use store_first::StoreFirstEngine;
pub use stream_engine::VolcanoEngine;
pub use volcano::{eval_expr_row, eval_pred_row, execute_volcano, RowSources};
