//! Tuple-at-a-time Volcano executor — the architectural comparator.
//!
//! The paper's related-work section positions DataCell against engines
//! using "bulk processing instead of volcano and vectorized query
//! processing as opposed to tuple-based" (§2). This module implements the
//! *same logical plans* with a classic Volcano iterator model: every
//! operator pulls one `Row` at a time and every expression is interpreted
//! per tuple — so benchmark E8 isolates exactly the execution-model
//! difference, not a difference in plans.

use std::collections::HashMap;

use datacell_algebra::{AggState, ArithOp, JoinKey};
use datacell_plan::{AggSpec, BoundExpr, LogicalPlan, PlanError};
use datacell_storage::{Row, Value};

/// Row-oriented sources: binding → buffered rows.
pub type RowSources = HashMap<String, Vec<Row>>;

/// Execute `plan` tuple-at-a-time over row sources.
pub fn execute_volcano(plan: &LogicalPlan, sources: &RowSources) -> Result<Vec<Row>, PlanError> {
    let mut op = build(plan, sources)?;
    let mut out = Vec::new();
    while let Some(row) = op.next_row()? {
        out.push(row);
    }
    Ok(out)
}

/// A Volcano operator: pull-based row iterator.
trait VolcanoOp {
    fn next_row(&mut self) -> Result<Option<Row>, PlanError>;
}

fn build(
    plan: &LogicalPlan,
    sources: &RowSources,
) -> Result<Box<dyn VolcanoOp>, PlanError> {
    Ok(match plan {
        LogicalPlan::Scan(s) => {
            let rows = sources
                .get(&s.binding.to_ascii_lowercase())
                .cloned()
                .ok_or_else(|| PlanError::MissingSource(s.binding.clone()))?;
            Box::new(ScanOp { rows: rows.into_iter() })
        }
        LogicalPlan::Filter { input, predicate } => Box::new(FilterOp {
            input: build(input, sources)?,
            predicate: predicate.clone(),
        }),
        LogicalPlan::Project { input, exprs, .. } => Box::new(ProjectOp {
            input: build(input, sources)?,
            exprs: exprs.clone(),
        }),
        LogicalPlan::Join { left, right, left_key, right_key } => {
            // Build side: drain the right child into a hash table.
            let mut right_op = build(right, sources)?;
            let mut table: HashMap<JoinKey, Vec<Row>> = HashMap::new();
            while let Some(row) = right_op.next_row()? {
                if let Some(k) = JoinKey::from_value(&row[*right_key]) {
                    table.entry(k).or_default().push(row);
                }
            }
            Box::new(JoinOp {
                left: build(left, sources)?,
                table,
                left_key: *left_key,
                pending: Vec::new(),
            })
        }
        LogicalPlan::Aggregate { input, group_exprs, aggs, .. } => {
            let mut input_op = build(input, sources)?;
            // Blocking: consume everything, then emit group rows.
            let mut groups: HashMap<Vec<Option<JoinKey>>, (Row, Vec<AggState>)> =
                HashMap::new();
            let mut order: Vec<Vec<Option<JoinKey>>> = Vec::new();
            let mut saw_rows = false;
            while let Some(row) = input_op.next_row()? {
                saw_rows = true;
                let key_vals: Result<Row, PlanError> =
                    group_exprs.iter().map(|e| eval_expr_row(e, &row)).collect();
                let key_vals = key_vals?;
                let key: Vec<Option<JoinKey>> =
                    key_vals.iter().map(JoinKey::from_value).collect();
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    order.push(key);
                    (key_vals, aggs.iter().map(|a| AggState::new(a.kind)).collect())
                });
                for (state, spec) in entry.1.iter_mut().zip(aggs) {
                    match &spec.arg {
                        Some(arg) => state.update(&eval_expr_row(arg, &row)?),
                        None => state.update(&Value::Bool(true)),
                    }
                }
            }
            let mut rows = Vec::with_capacity(order.len().max(1));
            if group_exprs.is_empty() {
                // global aggregate: exactly one row, even for empty input
                let states: Vec<AggState> = if saw_rows {
                    groups.remove(&Vec::new()).map(|(_, s)| s).unwrap_or_else(|| {
                        aggs.iter().map(|a| AggState::new(a.kind)).collect()
                    })
                } else {
                    aggs.iter().map(|a| AggState::new(a.kind)).collect()
                };
                rows.push(finalize_row(&[], &states, aggs));
            } else {
                for key in order {
                    let (kv, states) = &groups[&key];
                    rows.push(finalize_row(kv, states, aggs));
                }
            }
            Box::new(ScanOp { rows: rows.into_iter() })
        }
        LogicalPlan::Distinct { input } => {
            let mut input_op = build(input, sources)?;
            let mut seen: Vec<Row> = Vec::new();
            while let Some(row) = input_op.next_row()? {
                if !seen.iter().any(|r| rows_equal(r, &row)) {
                    seen.push(row);
                }
            }
            Box::new(ScanOp { rows: seen.into_iter() })
        }
        LogicalPlan::Sort { input, keys } => {
            let mut input_op = build(input, sources)?;
            let mut rows = Vec::new();
            while let Some(row) = input_op.next_row()? {
                rows.push(row);
            }
            let keys = keys.clone();
            rows.sort_by(|a, b| {
                for (col, desc) in &keys {
                    let o = a[*col]
                        .sql_cmp(&b[*col])
                        .unwrap_or(std::cmp::Ordering::Equal);
                    let o = if *desc { o.reverse() } else { o };
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Box::new(ScanOp { rows: rows.into_iter() })
        }
        LogicalPlan::Limit { input, n } => Box::new(LimitOp {
            input: build(input, sources)?,
            remaining: *n,
        }),
    })
}

fn finalize_row(key_vals: &[Value], states: &[AggState], aggs: &[AggSpec]) -> Row {
    let mut row: Row = key_vals.to_vec();
    for (state, spec) in states.iter().zip(aggs) {
        row.push(state.finalize().coerce(spec.ty).unwrap_or(Value::Null));
    }
    row
}

fn rows_equal(a: &Row, b: &Row) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::Null, Value::Null) => true,
            _ => matches!(x.sql_cmp(y), Some(std::cmp::Ordering::Equal)),
        })
}

struct ScanOp {
    rows: std::vec::IntoIter<Row>,
}
impl VolcanoOp for ScanOp {
    fn next_row(&mut self) -> Result<Option<Row>, PlanError> {
        Ok(self.rows.next())
    }
}

struct FilterOp {
    input: Box<dyn VolcanoOp>,
    predicate: BoundExpr,
}
impl VolcanoOp for FilterOp {
    fn next_row(&mut self) -> Result<Option<Row>, PlanError> {
        while let Some(row) = self.input.next_row()? {
            if eval_pred_row(&self.predicate, &row)? {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }
}

struct ProjectOp {
    input: Box<dyn VolcanoOp>,
    exprs: Vec<BoundExpr>,
}
impl VolcanoOp for ProjectOp {
    fn next_row(&mut self) -> Result<Option<Row>, PlanError> {
        match self.input.next_row()? {
            None => Ok(None),
            Some(row) => {
                let out: Result<Row, PlanError> =
                    self.exprs.iter().map(|e| eval_expr_row(e, &row)).collect();
                Ok(Some(out?))
            }
        }
    }
}

struct JoinOp {
    left: Box<dyn VolcanoOp>,
    table: HashMap<JoinKey, Vec<Row>>,
    left_key: usize,
    pending: Vec<Row>,
}
impl VolcanoOp for JoinOp {
    fn next_row(&mut self) -> Result<Option<Row>, PlanError> {
        loop {
            if let Some(row) = self.pending.pop() {
                return Ok(Some(row));
            }
            match self.left.next_row()? {
                None => return Ok(None),
                Some(lrow) => {
                    if let Some(k) = JoinKey::from_value(&lrow[self.left_key]) {
                        if let Some(matches) = self.table.get(&k) {
                            for rrow in matches.iter().rev() {
                                let mut joined = lrow.clone();
                                joined.extend(rrow.iter().cloned());
                                self.pending.push(joined);
                            }
                        }
                    }
                }
            }
        }
    }
}

struct LimitOp {
    input: Box<dyn VolcanoOp>,
    remaining: u64,
}
impl VolcanoOp for LimitOp {
    fn next_row(&mut self) -> Result<Option<Row>, PlanError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        self.input.next_row()
    }
}

/// Interpret a bound expression against one row (tuple-at-a-time).
pub fn eval_expr_row(expr: &BoundExpr, row: &[Value]) -> Result<Value, PlanError> {
    Ok(match expr {
        BoundExpr::Col(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| PlanError::Internal(format!("column {i} out of row range")))?,
        BoundExpr::Const(v) => v.clone(),
        BoundExpr::Arith { left, op, right } => {
            let l = eval_expr_row(left, row)?;
            let r = eval_expr_row(right, row)?;
            arith_values(*op, &l, &r)
        }
        BoundExpr::Cmp { .. }
        | BoundExpr::And(..)
        | BoundExpr::Or(..)
        | BoundExpr::Not(..)
        | BoundExpr::IsNull { .. }
        | BoundExpr::Between { .. } => match eval_pred_row_3vl(expr, row)? {
            None => Value::Null,
            Some(b) => Value::Bool(b),
        },
    })
}

fn arith_values(op: ArithOp, a: &Value, b: &Value) -> Value {
    if a.is_null() || b.is_null() {
        return Value::Null;
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y))
        | (Value::Int(x), Value::Timestamp(y))
        | (Value::Timestamp(x), Value::Int(y))
        | (Value::Timestamp(x), Value::Timestamp(y)) => {
            let v = match op {
                ArithOp::Add => Some(x.wrapping_add(*y)),
                ArithOp::Sub => Some(x.wrapping_sub(*y)),
                ArithOp::Mul => Some(x.wrapping_mul(*y)),
                ArithOp::Div => (*y != 0).then(|| x.wrapping_div(*y)),
                ArithOp::Mod => (*y != 0).then(|| x.wrapping_rem(*y)),
            };
            v.map(Value::Int).unwrap_or(Value::Null)
        }
        _ => match (a.as_float(), b.as_float()) {
            (Some(x), Some(y)) => Value::Float(match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => x / y,
                ArithOp::Mod => x % y,
            }),
            _ => Value::Null,
        },
    }
}

/// Two-valued predicate evaluation (NULL ⇒ false), per row.
pub fn eval_pred_row(expr: &BoundExpr, row: &[Value]) -> Result<bool, PlanError> {
    Ok(eval_pred_row_3vl(expr, row)?.unwrap_or(false))
}

/// Three-valued logic evaluation: `None` = unknown.
fn eval_pred_row_3vl(expr: &BoundExpr, row: &[Value]) -> Result<Option<bool>, PlanError> {
    Ok(match expr {
        BoundExpr::Const(Value::Bool(b)) => Some(*b),
        BoundExpr::Const(Value::Null) => None,
        BoundExpr::Col(i) => match row.get(*i) {
            Some(Value::Bool(b)) => Some(*b),
            Some(Value::Null) | None => None,
            Some(_) => {
                return Err(PlanError::Unsupported(
                    "non-boolean column used as predicate".into(),
                ))
            }
        },
        BoundExpr::Cmp { left, op, right } => {
            let l = eval_expr_row(left, row)?;
            let r = eval_expr_row(right, row)?;
            l.sql_cmp(&r).map(|ord| op.eval(Some(ord)))
        }
        BoundExpr::And(a, b) => {
            match (eval_pred_row_3vl(a, row)?, eval_pred_row_3vl(b, row)?) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }
        }
        BoundExpr::Or(a, b) => {
            match (eval_pred_row_3vl(a, row)?, eval_pred_row_3vl(b, row)?) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }
        }
        BoundExpr::Not(e) => eval_pred_row_3vl(e, row)?.map(|b| !b),
        BoundExpr::IsNull { expr, negated } => {
            let v = eval_expr_row(expr, row)?;
            Some(v.is_null() != *negated)
        }
        BoundExpr::Between { expr, low, high, negated } => {
            let v = eval_expr_row(expr, row)?;
            let lo = eval_expr_row(low, row)?;
            let hi = eval_expr_row(high, row)?;
            let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
            let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
            match (ge, le) {
                (Some(a), Some(b)) => Some((a && b) != *negated),
                _ => None,
            }
        }
        other => {
            return Err(PlanError::Unsupported(format!(
                "expression used as predicate: {other:?}"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_algebra::CmpOp;
    use datacell_plan::{Binder, ExecSources};
    use datacell_storage::{Bat, Catalog, Chunk, DataType, Schema};

    fn catalog() -> Catalog {
        let cat = Catalog::new();
        cat.create_table(
            "t",
            Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]),
        )
        .unwrap();
        cat.create_table(
            "d",
            Schema::of(&[("k", DataType::Int), ("w", DataType::Int)]),
        )
        .unwrap();
        cat
    }

    fn t_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(1), Value::Int(30)],
            vec![Value::Int(3), Value::Int(40)],
        ]
    }

    fn d_rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::Int(100)],
            vec![Value::Int(2), Value::Int(200)],
        ]
    }

    /// Compare volcano output with the columnar executor on the same plan.
    fn assert_same(sql: &str) {
        let cat = catalog();
        let stmt = match datacell_sql::parse_statement(sql).unwrap() {
            datacell_sql::Statement::Select(s) => s,
            _ => panic!(),
        };
        let bound = Binder::new(&cat).bind_select(&stmt).unwrap();
        let plan = datacell_plan::optimize(bound.plan);

        let mut row_sources = RowSources::new();
        row_sources.insert("t".into(), t_rows());
        row_sources.insert("d".into(), d_rows());
        let mut volcano_rows = execute_volcano(&plan, &row_sources).unwrap();

        let mut col_sources = ExecSources::new();
        col_sources.bind(
            "t",
            Chunk::new(vec![
                Bat::from_ints(t_rows().iter().map(|r| r[0].as_int().unwrap()).collect()),
                Bat::from_ints(t_rows().iter().map(|r| r[1].as_int().unwrap()).collect()),
            ])
            .unwrap(),
        );
        col_sources.bind(
            "d",
            Chunk::new(vec![
                Bat::from_ints(d_rows().iter().map(|r| r[0].as_int().unwrap()).collect()),
                Bat::from_ints(d_rows().iter().map(|r| r[1].as_int().unwrap()).collect()),
            ])
            .unwrap(),
        );
        let chunk = datacell_plan::execute(&plan, &col_sources).unwrap();
        let mut columnar_rows: Vec<Row> = chunk.rows().collect();

        let fmt = |rows: &Vec<Row>| {
            rows.iter()
                .map(|r| r.iter().map(Value::to_string).collect::<Vec<_>>().join("|"))
                .collect::<Vec<_>>()
        };
        volcano_rows.sort_by_key(|r| fmt(&vec![r.clone()]));
        columnar_rows.sort_by_key(|r| fmt(&vec![r.clone()]));
        assert_eq!(fmt(&volcano_rows), fmt(&columnar_rows), "mismatch for {sql}");
    }

    #[test]
    fn agrees_on_filter_project() {
        assert_same("SELECT v * 2 FROM t WHERE v > 15");
    }

    #[test]
    fn agrees_on_grouped_aggregate() {
        assert_same("SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k");
    }

    #[test]
    fn agrees_on_join() {
        assert_same("SELECT t.v, d.w FROM t JOIN d ON t.k = d.k");
    }

    #[test]
    fn agrees_on_join_aggregate_having() {
        assert_same(
            "SELECT d.w, SUM(t.v) FROM t JOIN d ON t.k = d.k GROUP BY d.w HAVING SUM(t.v) > 5",
        );
    }

    #[test]
    fn agrees_on_sort_limit_distinct() {
        assert_same("SELECT DISTINCT k FROM t ORDER BY k DESC LIMIT 2");
    }

    #[test]
    fn agrees_on_global_aggregate() {
        assert_same("SELECT COUNT(*), AVG(v), MIN(v), MAX(v) FROM t");
    }

    #[test]
    fn row_expression_interpreter() {
        let row: Row = vec![Value::Int(6), Value::Null];
        let e = BoundExpr::Arith {
            left: Box::new(BoundExpr::Col(0)),
            op: ArithOp::Mul,
            right: Box::new(BoundExpr::Const(Value::Int(7))),
        };
        assert_eq!(eval_expr_row(&e, &row).unwrap(), Value::Int(42));
        // NULL propagation
        let e = BoundExpr::Arith {
            left: Box::new(BoundExpr::Col(1)),
            op: ArithOp::Add,
            right: Box::new(BoundExpr::Const(Value::Int(1))),
        };
        assert_eq!(eval_expr_row(&e, &row).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let row: Row = vec![Value::Null];
        // NULL = NULL is unknown → filter drops it
        let p = BoundExpr::Cmp {
            left: Box::new(BoundExpr::Col(0)),
            op: CmpOp::Eq,
            right: Box::new(BoundExpr::Const(Value::Null)),
        };
        assert!(!eval_pred_row(&p, &row).unwrap());
        // NOT unknown is still unknown
        let np = BoundExpr::Not(Box::new(p));
        assert!(!eval_pred_row(&np, &row).unwrap());
        // unknown OR true is true
        let p = BoundExpr::Or(
            Box::new(BoundExpr::Cmp {
                left: Box::new(BoundExpr::Col(0)),
                op: CmpOp::Eq,
                right: Box::new(BoundExpr::Const(Value::Int(1))),
            }),
            Box::new(BoundExpr::Const(Value::Bool(true))),
        );
        assert!(eval_pred_row(&p, &row).unwrap());
    }
}
