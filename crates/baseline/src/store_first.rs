//! Store-first-query-later baseline.
//!
//! The classic DBMS answer to streaming: append every arrival to a
//! persistent table and re-run the (one-time) query over the *whole* table
//! whenever fresh answers are needed. Truviso's comparison point — "query
//! evaluation has already been initiated when the first tuples arrive"
//! versus "traditional store-first-query-later database technologies"
//! (paper §2). Latency grows with the stored history, which is exactly
//! the shape benchmark E8 demonstrates.

use datacell_plan::{compile, execute, Binder, CompiledQuery, ExecSources, PlanError};
use datacell_sql::{parse_statement, Statement};
use datacell_storage::{Catalog, Chunk, Row, Schema, TableHandle};

/// The store-first engine: one table per "stream", full re-query per batch.
pub struct StoreFirstEngine {
    catalog: Catalog,
    queries: Vec<(u64, CompiledQuery)>,
    next_id: u64,
}

impl Default for StoreFirstEngine {
    fn default() -> Self {
        StoreFirstEngine { catalog: Catalog::new(), queries: Vec::new(), next_id: 1 }
    }
}

impl StoreFirstEngine {
    /// New empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create the backing table for an incoming "stream".
    pub fn create_table(&mut self, sql: &str) -> Result<TableHandle, PlanError> {
        match parse_statement(sql)? {
            Statement::CreateTable { name, columns } | Statement::CreateStream { name, columns } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| datacell_storage::ColumnDef {
                            name: c.name.clone(),
                            ty: datacell_plan::type_of(c.ty),
                            not_null: c.not_null,
                        })
                        .collect(),
                );
                Ok(self.catalog.create_table(&name, schema)?)
            }
            other => Err(PlanError::Unsupported(format!("expected CREATE, got {other}"))),
        }
    }

    /// Register the query that will be re-run per batch (plain SQL over the
    /// table — no window clause; the "window" is the whole history).
    pub fn register_query(&mut self, sql: &str) -> Result<u64, PlanError> {
        let stmt = match parse_statement(sql)? {
            Statement::Select(s) => s,
            other => {
                return Err(PlanError::Unsupported(format!("not a SELECT: {other}")))
            }
        };
        let bound = Binder::new(&self.catalog).bind_select(&stmt)?;
        let compiled = compile(sql, bound)?;
        let id = self.next_id;
        self.next_id += 1;
        self.queries.push((id, compiled));
        Ok(id)
    }

    /// Append a batch to the stored history.
    pub fn push_rows(&mut self, table: &str, rows: &[Row]) -> Result<usize, PlanError> {
        let handle = self.catalog.table(table)?;
        let n = handle.write().insert_rows(rows)?;
        Ok(n)
    }

    /// Stored row count of a table.
    pub fn stored_rows(&self, table: &str) -> Result<usize, PlanError> {
        Ok(self.catalog.table(table)?.read().len())
    }

    /// Re-run query `id` over the full stored history.
    pub fn evaluate(&self, id: u64) -> Result<Chunk, PlanError> {
        let (_, compiled) = self
            .queries
            .iter()
            .find(|(qid, _)| *qid == id)
            .ok_or_else(|| PlanError::Internal(format!("unknown query {id}")))?;
        let mut sources = ExecSources::new();
        for (binding, object) in &compiled.tables {
            let handle = self.catalog.table(object)?;
            let snap = handle.read().scan();
            sources.bind(binding, snap);
        }
        execute(&compiled.plan, &sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::Value;

    #[test]
    fn full_requery_sees_whole_history() {
        let mut e = StoreFirstEngine::new();
        e.create_table("CREATE TABLE s (v BIGINT)").unwrap();
        let q = e.register_query("SELECT COUNT(*), SUM(v) FROM s").unwrap();
        e.push_rows("s", &[vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
        let out = e.evaluate(q).unwrap();
        assert_eq!(out.row(0), vec![Value::Int(2), Value::Int(3)]);
        e.push_rows("s", &[vec![Value::Int(3)]]).unwrap();
        let out = e.evaluate(q).unwrap();
        // unlike a continuous engine, the history accumulates
        assert_eq!(out.row(0), vec![Value::Int(3), Value::Int(6)]);
        assert_eq!(e.stored_rows("s").unwrap(), 3);
    }

    #[test]
    fn create_stream_ddl_becomes_table() {
        let mut e = StoreFirstEngine::new();
        e.create_table("CREATE STREAM s (v BIGINT)").unwrap();
        assert_eq!(e.stored_rows("s").unwrap(), 0);
    }

    #[test]
    fn unknown_query_errors() {
        let e = StoreFirstEngine::new();
        assert!(e.evaluate(42).is_err());
    }
}
