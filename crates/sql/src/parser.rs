//! Recursive-descent parser with precedence climbing for expressions.

use crate::ast::*;
use crate::error::{ParseError, Result};
use crate::lexer::{lex, Keyword, Token, TokenKind};

/// Parse a single SQL statement (an optional trailing `;` is accepted).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut p = Parser::new(input)?;
    let stmt = p.statement()?;
    p.eat_if(&TokenKind::Semi);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_script(input: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat_if(&TokenKind::Semi) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.eat_if(&TokenKind::Semi) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Parse just an expression (used by tests and the HAVING rewriter).
pub fn parse_expression(input: &str) -> Result<Expr> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Parser { tokens: lex(input)?, pos: 0 })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    fn eat_if(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if *k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, kind: &TokenKind, what: &str) -> Result<()> {
        if self.eat_if(kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {:?}", kw.spelling(), self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.peek_offset())
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn int_literal(&mut self, what: &str) -> Result<i64> {
        match *self.peek() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(v)
            }
            _ => Err(self.err(format!("expected integer {what}"))),
        }
    }

    // ----- statements -------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Create) => self.create(),
            TokenKind::Keyword(Keyword::Drop) => self.drop(),
            TokenKind::Keyword(Keyword::Insert) => self.insert(),
            TokenKind::Keyword(Keyword::Select) => Ok(Statement::Select(self.select()?)),
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Create)?;
        let is_stream = if self.eat_kw(Keyword::Stream) {
            true
        } else {
            self.expect_kw(Keyword::Table)?;
            false
        };
        let name = self.ident("object name")?;
        self.expect_token(&TokenKind::LParen, "'('")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident("column name")?;
            let ty = self.type_name()?;
            let mut not_null = false;
            if self.eat_kw(Keyword::Not) {
                self.expect_kw(Keyword::Null)?;
                not_null = true;
            }
            columns.push(ColumnSpec { name: col_name, ty, not_null });
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_token(&TokenKind::RParen, "')'")?;
        Ok(if is_stream {
            Statement::CreateStream { name, columns }
        } else {
            Statement::CreateTable { name, columns }
        })
    }

    fn type_name(&mut self) -> Result<TypeName> {
        let ty = match self.peek() {
            TokenKind::Keyword(Keyword::Boolean) => TypeName::Bool,
            TokenKind::Keyword(Keyword::Int)
            | TokenKind::Keyword(Keyword::Integer)
            | TokenKind::Keyword(Keyword::Bigint) => TypeName::Int,
            TokenKind::Keyword(Keyword::Double) | TokenKind::Keyword(Keyword::Float) => {
                TypeName::Float
            }
            TokenKind::Keyword(Keyword::Varchar) | TokenKind::Keyword(Keyword::Text) => {
                TypeName::Str
            }
            TokenKind::Keyword(Keyword::TimestampKw) => TypeName::Timestamp,
            other => return Err(self.err(format!("expected type name, found {other:?}"))),
        };
        self.advance();
        // Optional parenthesized length, e.g. VARCHAR(32): parsed, ignored.
        if self.eat_if(&TokenKind::LParen) {
            self.int_literal("type length")?;
            self.expect_token(&TokenKind::RParen, "')'")?;
        }
        Ok(ty)
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Drop)?;
        if !self.eat_kw(Keyword::Table) {
            self.expect_kw(Keyword::Stream)?;
        }
        let name = self.ident("object name")?;
        Ok(Statement::Drop { name })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident("table name")?;
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect_token(&TokenKind::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_token(&TokenKind::RParen, "')'")?;
            rows.push(row);
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw(Keyword::Select)?;
        let mut stmt = SelectStmt { distinct: self.eat_kw(Keyword::Distinct), ..Default::default() };

        loop {
            if self.eat_if(&TokenKind::Star) {
                stmt.projection.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw(Keyword::As) {
                    Some(self.ident("alias")?)
                } else if let TokenKind::Ident(_) = self.peek() {
                    Some(self.ident("alias")?)
                } else {
                    None
                };
                stmt.projection.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&TokenKind::Comma) {
                break;
            }
        }

        if self.eat_kw(Keyword::From) {
            stmt.from = Some(self.table_ref()?);
            loop {
                if self.eat_kw(Keyword::Join) || {
                    if self.eat_kw(Keyword::Inner) {
                        self.expect_kw(Keyword::Join)?;
                        true
                    } else {
                        false
                    }
                } {
                    let table = self.table_ref()?;
                    self.expect_kw(Keyword::On)?;
                    let on = self.expr()?;
                    stmt.joins.push(Join { table, on });
                } else if self.eat_if(&TokenKind::Comma) {
                    // comma join requires WHERE to hold the predicate
                    let table = self.table_ref()?;
                    stmt.joins.push(Join {
                        table,
                        on: Expr::Literal(Literal::Bool(true)),
                    });
                } else {
                    break;
                }
            }
        }

        if self.eat_kw(Keyword::Where) {
            stmt.where_clause = Some(self.expr()?);
        }
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            loop {
                stmt.group_by.push(self.expr()?);
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Having) {
            stmt.having = Some(self.expr()?);
        }
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                stmt.order_by.push(OrderItem { expr, desc });
                if !self.eat_if(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Limit) {
            let n = self.int_literal("LIMIT count")?;
            if n < 0 {
                return Err(self.err("LIMIT must be non-negative"));
            }
            stmt.limit = Some(n as u64);
        }
        Ok(stmt)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident("table or stream name")?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident("alias")?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident("alias")?)
        } else {
            None
        };
        let window = if self.eat_if(&TokenKind::LBracket) {
            let w = self.window_spec()?;
            self.expect_token(&TokenKind::RBracket, "']'")?;
            Some(w)
        } else {
            None
        };
        Ok(TableRef { name, alias, window })
    }

    fn window_spec(&mut self) -> Result<WindowSpec> {
        if self.eat_kw(Keyword::Rows) {
            let size = self.int_literal("window size")?;
            if size <= 0 {
                return Err(self.err("window size must be positive"));
            }
            let slide = if self.eat_kw(Keyword::Slide) {
                let s = self.int_literal("slide step")?;
                if s <= 0 {
                    return Err(self.err("slide step must be positive"));
                }
                s as u64
            } else {
                size as u64 // no SLIDE ⇒ tumbling
            };
            Ok(WindowSpec::Rows { size: size as u64, slide })
        } else if self.eat_kw(Keyword::Range) {
            let size = self.int_literal("window range")?;
            if size <= 0 {
                return Err(self.err("window range must be positive"));
            }
            self.expect_kw(Keyword::On)?;
            let on = self.ident("timestamp column")?;
            let slide = if self.eat_kw(Keyword::Slide) {
                let s = self.int_literal("slide step")?;
                if s <= 0 {
                    return Err(self.err("slide step must be positive"));
                }
                s
            } else {
                size
            };
            Ok(WindowSpec::Range { size, slide, on })
        } else {
            Err(self.err("expected ROWS or RANGE window"))
        }
    }

    // ----- expressions (precedence climbing) ---------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.not_expr()?;
            Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;

        // IS [NOT] NULL
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        // [NOT] BETWEEN low AND high
        if self.eat_kw(Keyword::Not) {
            self.expect_kw(Keyword::Between)?;
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated: true,
            });
        }
        if let Some(between) = self.between_started(&left)? {
            return Ok(between);
        }

        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::Ne => BinaryOp::Ne,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::Le => BinaryOp::Le,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::Ge => BinaryOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) })
    }

    /// Handle a plain `BETWEEN` (without NOT) if present.
    fn between_started(&mut self, left: &Expr) -> Result<Option<Expr>> {
        if self.eat_kw(Keyword::Between) {
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            Ok(Some(Expr::Between {
                expr: Box::new(left.clone()),
                low: Box::new(low),
                high: Box::new(high),
                negated: false,
            }))
        } else {
            Ok(None)
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_if(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Fold negative literals immediately.
            return Ok(match inner {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat_if(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Int(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect_token(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Keyword(kw @ (Keyword::Count | Keyword::Sum | Keyword::Avg
                | Keyword::Min | Keyword::Max)) => {
                self.advance();
                let func = match kw {
                    Keyword::Count => AggFunc::Count,
                    Keyword::Sum => AggFunc::Sum,
                    Keyword::Avg => AggFunc::Avg,
                    Keyword::Min => AggFunc::Min,
                    _ => AggFunc::Max,
                };
                self.expect_token(&TokenKind::LParen, "'('")?;
                let arg = if self.eat_if(&TokenKind::Star) {
                    if func != AggFunc::Count {
                        return Err(self.err("only COUNT may take '*'"));
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect_token(&TokenKind::RParen, "')'")?;
                Ok(Expr::Agg { func, arg })
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.eat_if(&TokenKind::Dot) {
                    let col = self.ident("column name")?;
                    Ok(Expr::Column { table: Some(name), name: col })
                } else {
                    Ok(Expr::Column { table: None, name })
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(input: &str) -> SelectStmt {
        match parse_statement(input).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn create_table() {
        let s = parse_statement(
            "CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR(20), v DOUBLE)",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert!(columns[0].not_null);
                assert_eq!(columns[1].ty, TypeName::Str);
                assert_eq!(columns[2].ty, TypeName::Float);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn create_stream() {
        let s = parse_statement("CREATE STREAM s (ts TIMESTAMP, val INT)").unwrap();
        assert!(matches!(s, Statement::CreateStream { .. }));
    }

    #[test]
    fn insert_rows() {
        let s = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, NULL)").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::Literal(Literal::Null));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn select_basics() {
        let s = sel("SELECT a, b AS bee, * FROM t WHERE a > 3 LIMIT 5");
        assert_eq!(s.projection.len(), 3);
        assert!(matches!(s.projection[2], SelectItem::Wildcard));
        assert_eq!(s.from.as_ref().unwrap().name, "t");
        assert_eq!(s.limit, Some(5));
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn implicit_alias() {
        let s = sel("SELECT a x FROM t y");
        match &s.projection[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("x")),
            _ => panic!(),
        }
        assert_eq!(s.from.as_ref().unwrap().alias.as_deref(), Some("y"));
    }

    #[test]
    fn group_having_order() {
        let s = sel(
            "SELECT k, SUM(v) FROM t GROUP BY k HAVING SUM(v) > 10 ORDER BY k DESC, v",
        );
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.as_ref().unwrap().contains_aggregate());
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
    }

    #[test]
    fn rows_window() {
        let s = sel("SELECT AVG(v) FROM s [ROWS 100 SLIDE 10]");
        assert_eq!(
            s.from.unwrap().window,
            Some(WindowSpec::Rows { size: 100, slide: 10 })
        );
    }

    #[test]
    fn rows_window_defaults_to_tumbling() {
        let s = sel("SELECT COUNT(*) FROM s [ROWS 50]");
        assert_eq!(
            s.from.unwrap().window,
            Some(WindowSpec::Rows { size: 50, slide: 50 })
        );
    }

    #[test]
    fn range_window() {
        let s = sel("SELECT MAX(v) FROM s [RANGE 60 ON ts SLIDE 5]");
        assert_eq!(
            s.from.unwrap().window,
            Some(WindowSpec::Range { size: 60, slide: 5, on: "ts".into() })
        );
    }

    #[test]
    fn join_on() {
        let s = sel("SELECT s.v, d.name FROM s JOIN d ON s.k = d.k WHERE s.v > 0");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.name, "d");
        match &s.joins[0].on {
            Expr::Binary { op: BinaryOp::Eq, .. } => {}
            other => panic!("bad ON expr {other:?}"),
        }
    }

    #[test]
    fn precedence() {
        let e = parse_expression("a + b * c < 10 AND NOT d = 1 OR e = 2").unwrap();
        // ((((a + (b*c)) < 10) AND (NOT (d = 1))) OR (e = 2))
        assert_eq!(
            e.to_string(),
            "((((a + (b * c)) < 10) AND (NOT (d = 1))) OR (e = 2))"
        );
    }

    #[test]
    fn between_and_not_between() {
        let e = parse_expression("x BETWEEN 1 AND 5").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expression("x NOT BETWEEN 1 AND 5").unwrap();
        assert!(matches!(e, Expr::Between { negated: true, .. }));
        // BETWEEN binds tighter than AND
        let e = parse_expression("x BETWEEN 1 AND 5 AND y = 2").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinaryOp::And, .. }));
    }

    #[test]
    fn is_null_forms() {
        assert!(matches!(
            parse_expression("x IS NULL").unwrap(),
            Expr::IsNull { negated: false, .. }
        ));
        assert!(matches!(
            parse_expression("x IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn count_star_and_agg_args() {
        let e = parse_expression("COUNT(*)").unwrap();
        assert_eq!(e, Expr::Agg { func: AggFunc::Count, arg: None });
        assert!(parse_expression("SUM(*)").is_err());
        let e = parse_expression("SUM(a * 2)").unwrap();
        assert!(e.contains_aggregate());
    }

    #[test]
    fn negative_literals_folded() {
        assert_eq!(parse_expression("-5").unwrap(), Expr::int(-5));
        assert_eq!(
            parse_expression("-2.5").unwrap(),
            Expr::Literal(Literal::Float(-2.5))
        );
    }

    #[test]
    fn script_parsing() {
        let stmts = parse_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT a FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(err.offset >= 7);
        assert!(parse_statement("CREATE TABLE t ()").is_err());
        assert!(parse_statement("SELECT a FROM s [ROWS 0]").is_err());
        assert!(parse_statement("SELECT a FROM s [ROWS 10 SLIDE 0]").is_err());
    }

    #[test]
    fn distinct_flag() {
        assert!(sel("SELECT DISTINCT a FROM t").distinct);
    }

    #[test]
    fn comma_join_produces_true_predicate() {
        let s = sel("SELECT * FROM a, b WHERE a.x = b.x");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].on, Expr::Literal(Literal::Bool(true)));
    }

    #[test]
    fn display_round_trip() {
        for q in [
            "SELECT a, SUM(b) AS s FROM t WHERE (a > 1) GROUP BY a HAVING (SUM(b) > 2) ORDER BY a ASC LIMIT 3",
            "SELECT AVG(v) FROM s [ROWS 100 SLIDE 10]",
            "SELECT s.v FROM s JOIN d ON (s.k = d.k)",
        ] {
            let stmt = parse_statement(q).unwrap();
            let rendered = stmt.to_string();
            let reparsed = parse_statement(&rendered).unwrap();
            assert_eq!(stmt, reparsed, "round-trip failed for {q}");
        }
    }
}
