//! Parse errors with source positions.

use std::fmt;

/// A lexing or parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Construct an error at `offset`.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError { message: message.into(), offset }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Convenience alias for parser results.
pub type Result<T> = std::result::Result<T, ParseError>;
