//! Hand-written SQL lexer.
//!
//! Keywords are recognized case-insensitively; identifiers keep their
//! original spelling (resolution downstream is case-insensitive). String
//! literals use single quotes with `''` as the escape, per SQL.

use crate::error::{ParseError, Result};

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased spelling stored).
    Keyword(Keyword),
    /// Identifier (original spelling).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (unescaped).
    Str(String),
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semi,
    /// End of input.
    Eof,
}

macro_rules! keywords {
    ($($name:ident => $spelling:literal),+ $(,)?) => {
        /// SQL keywords recognized by the lexer.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($name,)+
        }

        impl Keyword {
            /// Parse a word as a keyword, case-insensitively.
            pub fn from_word(word: &str) -> Option<Keyword> {
                $(
                    if word.eq_ignore_ascii_case($spelling) {
                        return Some(Keyword::$name);
                    }
                )+
                None
            }

            /// Canonical (uppercase) spelling.
            pub fn spelling(self) -> &'static str {
                match self {
                    $(Keyword::$name => $spelling,)+
                }
            }
        }
    };
}

keywords! {
    Select => "SELECT", From => "FROM", Where => "WHERE", Group => "GROUP",
    By => "BY", Having => "HAVING", Order => "ORDER", Limit => "LIMIT",
    As => "AS", And => "AND", Or => "OR", Not => "NOT", Between => "BETWEEN",
    Is => "IS", Null => "NULL", True => "TRUE", False => "FALSE",
    Asc => "ASC", Desc => "DESC", Distinct => "DISTINCT",
    Create => "CREATE", Table => "TABLE", Stream => "STREAM", Drop => "DROP",
    Insert => "INSERT", Into => "INTO", Values => "VALUES",
    Join => "JOIN", Inner => "INNER", On => "ON",
    Rows => "ROWS", Range => "RANGE", Slide => "SLIDE",
    Boolean => "BOOLEAN", Bigint => "BIGINT", Int => "INT",
    Integer => "INTEGER", Double => "DOUBLE", Float => "FLOAT",
    Varchar => "VARCHAR", TimestampKw => "TIMESTAMP", Text => "TEXT",
    Count => "COUNT", Sum => "SUM", Avg => "AVG", Min => "MIN", Max => "MAX",
}

/// Tokenize `input` fully.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push1(&mut tokens, TokenKind::LParen, &mut i),
            ')' => push1(&mut tokens, TokenKind::RParen, &mut i),
            '[' => push1(&mut tokens, TokenKind::LBracket, &mut i),
            ']' => push1(&mut tokens, TokenKind::RBracket, &mut i),
            ',' => push1(&mut tokens, TokenKind::Comma, &mut i),
            '.' => push1(&mut tokens, TokenKind::Dot, &mut i),
            ';' => push1(&mut tokens, TokenKind::Semi, &mut i),
            '+' => push1(&mut tokens, TokenKind::Plus, &mut i),
            '-' => push1(&mut tokens, TokenKind::Minus, &mut i),
            '*' => push1(&mut tokens, TokenKind::Star, &mut i),
            '/' => push1(&mut tokens, TokenKind::Slash, &mut i),
            '%' => push1(&mut tokens, TokenKind::Percent, &mut i),
            '=' => push1(&mut tokens, TokenKind::Eq, &mut i),
            '<' => {
                let start = i;
                i += 1;
                let kind = match bytes.get(i) {
                    Some(b'=') => {
                        i += 1;
                        TokenKind::Le
                    }
                    Some(b'>') => {
                        i += 1;
                        TokenKind::Ne
                    }
                    _ => TokenKind::Lt,
                };
                tokens.push(Token { kind, offset: start });
            }
            '>' => {
                let start = i;
                i += 1;
                let kind = if bytes.get(i) == Some(&b'=') {
                    i += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                };
                tokens.push(Token { kind, offset: start });
            }
            '!' => {
                let start = i;
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Token { kind: TokenKind::Ne, offset: start });
                } else {
                    return Err(ParseError::new("unexpected '!'", i));
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new("unterminated string", start)),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), offset: start });
            }
            '0'..='9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && (bytes[i].is_ascii_digit()) {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&b'+') || bytes.get(j) == Some(&b'-') {
                        j += 1;
                    }
                    if bytes.get(j).is_some_and(u8::is_ascii_digit) {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &input[start..i];
                let kind = if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        ParseError::new(format!("bad float literal {text}"), start)
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        ParseError::new(format!("bad int literal {text}"), start)
                    })?)
                };
                tokens.push(Token { kind, offset: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let kind = match Keyword::from_word(word) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(word.to_owned()),
                };
                tokens.push(Token { kind, offset: start });
            }
            other => {
                return Err(ParseError::new(format!("unexpected character {other:?}"), i));
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: input.len() });
    Ok(tokens)
}

fn push1(tokens: &mut Vec<Token>, kind: TokenKind, i: &mut usize) {
    tokens.push(Token { kind, offset: *i });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        lex(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            kinds("select FROM WhErE"),
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_keep_spelling() {
        assert_eq!(
            kinds("MyTable _x1"),
            vec![
                TokenKind::Ident("MyTable".into()),
                TokenKind::Ident("_x1".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.25 1e3 7.5e-2"),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.25),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.075),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn dotted_access_is_not_float() {
        assert_eq!(
            kinds("t.c"),
            vec![
                TokenKind::Ident("t".into()),
                TokenKind::Dot,
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escape() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Eof]
        );
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= + - * / %"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 -- the rest\n2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn window_brackets() {
        assert_eq!(
            kinds("[ROWS 10 SLIDE 2]"),
            vec![
                TokenKind::LBracket,
                TokenKind::Keyword(Keyword::Rows),
                TokenKind::Int(10),
                TokenKind::Keyword(Keyword::Slide),
                TokenKind::Int(2),
                TokenKind::RBracket,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn error_offset_reported() {
        let err = lex("a ? b").unwrap_err();
        assert_eq!(err.offset, 2);
    }
}
