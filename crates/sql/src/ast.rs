//! Abstract syntax for the DataCell SQL subset.
//!
//! The paper extends the MonetDB SQL'03 compiler "with a few orthogonal
//! language constructs": `CREATE STREAM` declares a stream, and a bracketed
//! window clause after a stream reference (`FROM s [ROWS 100 SLIDE 10]` or
//! `FROM s [RANGE 100 ON ts SLIDE 10]`) declares sliding/tumbling windows.
//! Queries over streams are *continuous*; everything else is ordinary SQL.

use std::fmt;

/// A parsed SQL statement.
// Statements are one-per-query parser output, never bulk data; boxing the
// big Select variant would churn every match site for no runtime win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column specifications.
        columns: Vec<ColumnSpec>,
    },
    /// `CREATE STREAM name (...)` — DataCell extension.
    CreateStream {
        /// Stream name.
        name: String,
        /// Column specifications.
        columns: Vec<ColumnSpec>,
    },
    /// `DROP TABLE name` / `DROP STREAM name`.
    Drop {
        /// Object name.
        name: String,
    },
    /// `INSERT INTO name VALUES (...), (...)`.
    Insert {
        /// Target table or stream.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Expr>>,
    },
    /// A query.
    Select(SelectStmt),
}

/// Column in a CREATE statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// NOT NULL constraint.
    pub not_null: bool,
}

/// SQL type names (mapped to kernel types by the binder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// BOOLEAN.
    Bool,
    /// INT / INTEGER / BIGINT.
    Int,
    /// FLOAT / DOUBLE.
    Float,
    /// VARCHAR / TEXT.
    Str,
    /// TIMESTAMP.
    Timestamp,
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeName::Bool => "BOOLEAN",
            TypeName::Int => "BIGINT",
            TypeName::Float => "DOUBLE",
            TypeName::Str => "VARCHAR",
            TypeName::Timestamp => "TIMESTAMP",
        })
    }
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// First FROM source.
    pub from: Option<TableRef>,
    /// JOIN clauses in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A FROM-clause source: table or stream, optional alias and window.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Object name.
    pub name: String,
    /// `AS alias`.
    pub alias: Option<String>,
    /// Bracketed window clause — only meaningful on streams.
    pub window: Option<WindowSpec>,
}

impl TableRef {
    /// The name this source is referred to by in expressions.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// DataCell window clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WindowSpec {
    /// Count-based window: last `size` tuples, advancing by `slide`.
    Rows {
        /// Window size in tuples.
        size: u64,
        /// Slide step in tuples (`size` for tumbling).
        slide: u64,
    },
    /// Time-based window over column `on`: values in `[t - size, t)` for
    /// window boundaries `t` advancing by `slide`.
    Range {
        /// Window length in timestamp units.
        size: i64,
        /// Slide step in timestamp units.
        slide: i64,
        /// Ordering/timestamp column.
        on: String,
    },
}

impl WindowSpec {
    /// True iff slide == size (no overlap).
    pub fn is_tumbling(&self) -> bool {
        match self {
            WindowSpec::Rows { size, slide } => slide >= size,
            WindowSpec::Range { size, slide, .. } => slide >= size,
        }
    }

    /// Number of basic windows the incremental rewriter splits this window
    /// into (`ceil(size / slide)`).
    pub fn basic_window_count(&self) -> u64 {
        match self {
            WindowSpec::Rows { size, slide } => size.div_ceil((*slide).max(1)),
            WindowSpec::Range { size, slide, .. } => {
                (*size as u64).div_ceil((*slide).max(1) as u64)
            }
        }
    }
}

/// A JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Joined source.
    pub table: TableRef,
    /// `ON` predicate.
    pub on: Expr,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// Scalar/boolean expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified.
    Column {
        /// Qualifier (table/stream binding name).
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal constant.
    Literal(Literal),
    /// Unary operator.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operator.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN?
        negated: bool,
    },
    /// Aggregate function call.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// Argument; `None` encodes `COUNT(*)`.
        arg: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column { table: None, name: name.into() }
    }

    /// Shorthand for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Int(v))
    }

    /// True iff the expression contains any aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate()
                    || low.contains_aggregate()
                    || high.contains_aggregate()
            }
        }
    }

    /// Collect all column references into `out`.
    pub fn collect_columns<'a>(&'a self, out: &mut Vec<(&'a Option<String>, &'a str)>) {
        match self {
            Expr::Column { table, name } => out.push((table, name)),
            Expr::Literal(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Between { expr, low, high, .. } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
        }
    }
}

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// NULL.
    Null,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl BinaryOp {
    /// True for comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// True for `+ - * / %`.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
        )
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// COUNT (arg `None` ⇒ `COUNT(*)`).
    Count,
    /// SUM.
    Sum,
    /// AVG.
    Avg,
    /// MIN.
    Min,
    /// MAX.
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        })
    }
}

// ---------------------------------------------------------------------
// Display: render statements back to parseable SQL (round-trip tested).
// ---------------------------------------------------------------------

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
            Literal::Null => f.write_str("NULL"),
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        })
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "(-{expr})"),
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "(NOT {expr})"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::IsNull { expr, negated: false } => write!(f, "({expr} IS NULL)"),
            Expr::IsNull { expr, negated: true } => write!(f, "({expr} IS NOT NULL)"),
            Expr::Between { expr, low, high, negated } => {
                let not = if *negated { "NOT " } else { "" };
                write!(f, "({expr} {not}BETWEEN {low} AND {high})")
            }
            Expr::Agg { func, arg: None } => write!(f, "{func}(*)"),
            Expr::Agg { func, arg: Some(a) } => write!(f, "{func}({a})"),
        }
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowSpec::Rows { size, slide } => write!(f, "[ROWS {size} SLIDE {slide}]"),
            WindowSpec::Range { size, slide, on } => {
                write!(f, "[RANGE {size} ON {on} SLIDE {slide}]")
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if let Some(a) = &self.alias {
            write!(f, " AS {a}")?;
        }
        if let Some(w) = &self.window {
            write!(f, " {w}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match item {
                SelectItem::Wildcard => write!(f, "*")?,
                SelectItem::Expr { expr, alias: None } => write!(f, "{expr}")?,
                SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}")?,
            }
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        for j in &self.joins {
            write!(f, " JOIN {} ON {}", j.table, j.on)?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.desc { " DESC" } else { " ASC" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                fmt_columns(f, columns)?;
                write!(f, ")")
            }
            Statement::CreateStream { name, columns } => {
                write!(f, "CREATE STREAM {name} (")?;
                fmt_columns(f, columns)?;
                write!(f, ")")
            }
            Statement::Drop { name } => write!(f, "DROP TABLE {name}"),
            Statement::Insert { table, rows } => {
                write!(f, "INSERT INTO {table} VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Statement::Select(s) => write!(f, "{s}"),
        }
    }
}

fn fmt_columns(f: &mut fmt::Formatter<'_>, columns: &[ColumnSpec]) -> fmt::Result {
    for (i, c) in columns.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{} {}", c.name, c.ty)?;
        if c.not_null {
            write!(f, " NOT NULL")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_helpers() {
        let w = WindowSpec::Rows { size: 100, slide: 10 };
        assert!(!w.is_tumbling());
        assert_eq!(w.basic_window_count(), 10);
        let t = WindowSpec::Rows { size: 10, slide: 10 };
        assert!(t.is_tumbling());
        assert_eq!(t.basic_window_count(), 1);
        let r = WindowSpec::Range { size: 95, slide: 10, on: "ts".into() };
        assert_eq!(r.basic_window_count(), 10);
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::Add,
            right: Box::new(Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(Expr::col("b"))) }),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("a").contains_aggregate());
    }

    #[test]
    fn collect_columns_finds_all() {
        let e = Expr::Between {
            expr: Box::new(Expr::col("x")),
            low: Box::new(Expr::col("lo")),
            high: Box::new(Expr::int(9)),
            negated: false,
        };
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn display_escapes_strings() {
        assert_eq!(Literal::Str("a'b".into()).to_string(), "'a''b'");
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableRef { name: "t".into(), alias: Some("x".into()), window: None };
        assert_eq!(t.binding_name(), "x");
    }
}
