//! # datacell-sql
//!
//! SQL'03-subset front-end with the DataCell stream extensions (paper §3:
//! "The SQL compiler is extended with a few orthogonal language constructs
//! to recognize and process continuous queries"):
//!
//! * `CREATE STREAM name (col TYPE, …)` declares a stream; queries reading
//!   from it become continuous queries.
//! * `FROM s [ROWS n SLIDE m]` — count-based sliding window.
//! * `FROM s [RANGE n ON ts SLIDE m]` — time-based sliding window over a
//!   timestamp column.
//!
//! The crate is self-contained (lexer → [`ast`] → parser); binding to the
//! catalog and plan construction happen in `datacell-plan`.

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{
    AggFunc, BinaryOp, ColumnSpec, Expr, Join, Literal, OrderItem, SelectItem, SelectStmt,
    Statement, TableRef, TypeName, UnaryOp, WindowSpec,
};
pub use error::{ParseError, Result};
pub use parser::{parse_expression, parse_script, parse_statement};
