//! Reconnect-with-resume and runtime resilience over real sockets:
//!
//! * the per-query replay ring redelivers exactly the missed chunks to a
//!   client re-attaching with `SUBSCRIBE … AFTER <epoch> <seq>`;
//! * [`ResumingSubscription`] rides out a full server restart over a
//!   durable WAL directory with no duplicated and no missing chunks
//!   (sequence-verified);
//! * sessions are defended against stalled peers: mid-`PUSH` frame
//!   deadlines, idle-session reaping, and `OVERLOADED` admission sheds
//!   with a usable retry hint.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use datacell_core::{DataCellConfig, MemoryBudget, ShedPolicy, SyncPolicy, WalConfig};
use datacell_server::{
    Client, ClientError, ReconnectPolicy, ResumingSubscription, Server, ServerConfig,
};
use datacell_storage::{Row, Value};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("datacell-resume-{}-{n}", std::process::id()))
}

fn rows_int(values: &[i64]) -> Vec<Row> {
    values.iter().map(|&v| vec![Value::Int(v)]).collect()
}

fn read_line_blocking(stream: &mut TcpStream) -> String {
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(1) => {
                if byte[0] == b'\n' {
                    return String::from_utf8_lossy(&line).into_owned();
                }
                line.push(byte[0]);
            }
            Ok(_) => panic!("connection closed mid-line"),
            Err(e) => panic!("read error: {e}"),
        }
    }
}

/// Parse `OK SUBSCRIBED <id> <epoch> <next-seq> [names]`.
fn parse_handshake(line: &str) -> (u64, u64) {
    let rest = line
        .strip_prefix("OK SUBSCRIBED ")
        .unwrap_or_else(|| panic!("unexpected subscribe reply: {line:?}"));
    let mut it = rest.split_whitespace().skip(1);
    let epoch = it.next().unwrap().parse().unwrap();
    let next_seq = it.next().unwrap().parse().unwrap();
    (epoch, next_seq)
}

/// Read one `CHUNK <q> <n> <seq>` frame; return (seq, row lines).
fn read_chunk(stream: &mut TcpStream) -> (u64, Vec<String>) {
    let header = read_line_blocking(stream);
    let rest = header
        .strip_prefix("CHUNK ")
        .unwrap_or_else(|| panic!("expected CHUNK, got {header:?}"));
    let mut it = rest.split_whitespace().skip(1);
    let count: usize = it.next().unwrap().parse().unwrap();
    let seq: u64 = it.next().unwrap().parse().unwrap();
    let rows = (0..count).map(|_| read_line_blocking(stream)).collect();
    (seq, rows)
}

/// A client that vanishes mid-stream (dropped socket, no STOP) must be
/// able to reconnect and fetch exactly the chunks it missed by cursor.
#[test]
fn same_epoch_reconnect_replays_only_missed_chunks() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT v FROM s").unwrap();

    // First subscriber over a raw socket; read two chunks, then vanish.
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(format!("SUBSCRIBE {q}\n").as_bytes()).unwrap();
    let (epoch, next_seq) = parse_handshake(&read_line_blocking(&mut raw));
    assert_eq!(next_seq, 1, "fresh incarnation sequences start at 1");

    for v in [10, 20, 30] {
        c.push_rows("s", &rows_int(&[v])).unwrap();
    }
    let (seq1, rows1) = read_chunk(&mut raw);
    let (seq2, rows2) = read_chunk(&mut raw);
    assert_eq!((seq1, seq2), (1, 2));
    assert_eq!((rows1, rows2), (vec!["10".to_owned()], vec!["20".to_owned()]));
    drop(raw); // connection dies without STOP; the ring survives

    // Reconnect with the cursor at seq 2: exactly chunk 3 is redelivered.
    let mut raw2 = TcpStream::connect(addr).unwrap();
    raw2.write_all(format!("SUBSCRIBE {q} AFTER {epoch} 2\n").as_bytes())
        .unwrap();
    let (epoch2, next2) = parse_handshake(&read_line_blocking(&mut raw2));
    assert_eq!(epoch2, epoch);
    assert_eq!(next2, 3);
    let (seq3, rows3) = read_chunk(&mut raw2);
    assert_eq!(seq3, 3);
    assert_eq!(rows3, vec!["30".to_owned()]);

    // And the stream continues live from there.
    c.push_rows("s", &rows_int(&[40])).unwrap();
    let (seq4, rows4) = read_chunk(&mut raw2);
    assert_eq!(seq4, 4);
    assert_eq!(rows4, vec!["40".to_owned()]);
    server.shutdown();
}

fn durable_config(dir: &PathBuf, addr: &str) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        engine: DataCellConfig {
            wal: Some(WalConfig {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                ..WalConfig::at(dir)
            }),
            results_capacity: Some(64),
            ..DataCellConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// Bind may transiently fail right after the previous incarnation closed
/// its listener; retry until the port is free again.
fn start_on(dir: &PathBuf, addr: &str) -> Server {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match Server::start(durable_config(dir, addr)) {
            Ok(server) => return server,
            Err(e) => {
                assert!(Instant::now() < deadline, "rebind never succeeded: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// The acceptance loop: a [`ResumingSubscription`] must survive the
/// server dying and being restarted over the same durable directory,
/// with the delivered value sequence exactly the pushed one — nothing
/// duplicated, nothing missing.
#[test]
fn resuming_subscription_survives_server_restart() {
    let dir = tmpdir();

    // Incarnation 1.
    let server = Server::start(durable_config(&dir, "127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(addr.as_str()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT v FROM s").unwrap();

    let mut sub = ResumingSubscription::connect_with(
        addr.clone(),
        q,
        ReconnectPolicy {
            max_attempts: 100,
            base_delay: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        },
    )
    .unwrap();
    assert_eq!(sub.names(), ["v"]);

    let mut delivered: Vec<i64> = Vec::new();
    let mut collect = |sub: &mut ResumingSubscription, want: usize| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while delivered.len() < want {
            assert!(
                Instant::now() < deadline,
                "timed out with {delivered:?}, wanted {want} values"
            );
            if let Some(rows) = sub.next_chunk(Duration::from_millis(100)).unwrap() {
                for row in rows {
                    delivered.push(row[0].as_int().unwrap());
                }
            }
        }
    };

    c.push_rows("s", &rows_int(&[1])).unwrap();
    c.push_rows("s", &rows_int(&[2])).unwrap();
    collect(&mut sub, 2);

    // The server dies (takes every socket with it) and a new incarnation
    // recovers from the WAL on the same address.
    drop(c);
    server.shutdown();
    let server = start_on(&dir, &addr);

    // The new incarnation fires these while our subscriber is still
    // reconnecting — the primed replay ring must retain them for resume.
    let mut c2 = Client::connect(addr.as_str()).unwrap();
    c2.push_rows("s", &rows_int(&[3])).unwrap();
    c2.push_rows("s", &rows_int(&[4])).unwrap();
    collect(&mut sub, 4);
    c2.push_rows("s", &rows_int(&[5])).unwrap();
    collect(&mut sub, 5);

    assert_eq!(delivered, vec![1, 2, 3, 4, 5], "duplicated or missing chunks");
    assert!(sub.reconnects() >= 1, "the subscription never re-attached");
    assert!(!sub.finished());
    server.shutdown();
}

/// Satellite: a producer that opens `PUSH` and stalls mid-frame must not
/// pin the session forever — the batch is discarded with an ERR at the
/// frame deadline and the session stays usable.
#[test]
fn push_frame_timeout_discards_partial_batch() {
    let server = Server::start(ServerConfig {
        push_frame_timeout: Duration::from_millis(150),
        init_script: Some("CREATE STREAM s (v BIGINT)".into()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    // Rows but no END: the frame deadline fires.
    raw.write_all(b"PUSH s\n1\n2\n").unwrap();
    let reply = read_line_blocking(&mut raw);
    assert!(reply.starts_with("ERR "), "got {reply:?}");
    assert!(reply.contains("no END"), "got {reply:?}");
    // The partial batch was discarded, the session is back in command
    // mode and fully usable.
    raw.write_all(b"PING\n").unwrap();
    assert_eq!(read_line_blocking(&mut raw), "PONG");
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c.push_rows("s", &rows_int(&[7])).unwrap(), 1);
    let stats = server.stats();
    assert_eq!(stats.rows_pushed, 1, "discarded rows must not be ingested");
    server.shutdown();
}

/// Satellite: idle command-mode sessions are reaped at the idle timeout;
/// a quiet *subscriber* is exempt.
#[test]
fn idle_sessions_are_reaped_but_subscribers_are_exempt() {
    let server = Server::start(ServerConfig {
        idle_timeout: Some(Duration::from_millis(150)),
        init_script: Some("CREATE STREAM s (v BIGINT)".into()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // A subscriber sits quiet for much longer than the idle timeout and
    // must still be served afterwards.
    let mut c = Client::connect(addr).unwrap();
    let q = c.register("SELECT v FROM s").unwrap();
    let mut raw_sub = TcpStream::connect(addr).unwrap();
    raw_sub.write_all(format!("SUBSCRIBE {q}\n").as_bytes()).unwrap();
    read_line_blocking(&mut raw_sub);

    // An idle command-mode session gets reaped.
    let mut idle = TcpStream::connect(addr).unwrap();
    let reply = read_line_blocking(&mut idle);
    assert_eq!(reply, "ERR idle session reaped");
    let mut buf = [0u8; 1];
    idle.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(idle.read(&mut buf).unwrap(), 0, "reaped session must close");

    // The quiet subscriber outlived it and still streams. (A fresh
    // pusher connection — every idle command-mode session, including the
    // one that registered the query, is fair game for the reaper.)
    std::thread::sleep(Duration::from_millis(300));
    let mut pusher = Client::connect(addr).unwrap();
    pusher.push_rows("s", &rows_int(&[42])).unwrap();
    let (_seq, rows) = read_chunk(&mut raw_sub);
    assert_eq!(rows, vec!["42".to_owned()]);
    server.shutdown();
}

/// Satellite: admission control speaks `OVERLOADED <retry-after-ms>` on
/// the wire, surfaced as a typed client error, and `push_rows_retry`
/// rides it out once the engine drains.
#[test]
fn overloaded_push_is_shed_with_retry_hint() {
    let server = Server::start(ServerConfig {
        engine: DataCellConfig {
            memory_budget: Some(MemoryBudget::pinned_bytes(256, ShedPolicy::Reject)),
            results_capacity: Some(64),
            ..DataCellConfig::default()
        },
        init_script: Some("CREATE STREAM s (v BIGINT)".into()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    // No query consumes the basket, so pushed chunks stay pinned until
    // the budget rejects.
    let big: Vec<i64> = (0..64).collect();
    let mut hint = None;
    for _ in 0..64 {
        match c.push_rows("s", &rows_int(&big)) {
            Ok(_) => {}
            Err(ClientError::Overloaded { retry_after_ms }) => {
                hint = Some(retry_after_ms);
                break;
            }
            Err(other) => panic!("expected OVERLOADED, got {other}"),
        }
    }
    let hint = hint.expect("budget never rejected");
    assert!(hint > 0, "retry hint must be usable");
    // The session survived the shed and still answers.
    c.ping().unwrap();
    // A bounded retry on a still-full engine surfaces the same error
    // instead of hanging.
    match c.push_rows_retry("s", &rows_int(&big), 2) {
        Err(ClientError::Overloaded { .. }) => {}
        other => panic!("expected OVERLOADED after retries, got {other:?}"),
    }
    server.shutdown();
}
