//! Server-level restart: a durable server shut down gracefully (which
//! checkpoints) and restarted over the same WAL directory must recover
//! its catalog, continuous queries, lifetime counters — and the
//! subscription chunk stream must continue exactly where it stopped.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use datacell_core::{DataCellConfig, SyncPolicy, WalConfig};
use datacell_server::{Client, Server, ServerConfig};
use datacell_storage::{Row, Value};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("datacell-server-wal-{}-{n}", std::process::id()))
}

fn durable_server(dir: &PathBuf, init: Option<&str>) -> Server {
    let config = ServerConfig {
        engine: DataCellConfig {
            wal: Some(WalConfig {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                ..WalConfig::at(dir)
            }),
            results_capacity: Some(64),
            ..DataCellConfig::default()
        },
        init_script: init.map(str::to_owned),
        ..ServerConfig::default()
    };
    Server::start(config).expect("server start")
}

fn push(client: &mut Client, rows: &[(i64, i64)]) {
    let rows: Vec<Row> = rows
        .iter()
        .map(|&(ts, v)| vec![Value::Timestamp(ts), Value::Int(v)])
        .collect();
    assert_eq!(client.push_rows("s", &rows).unwrap(), rows.len());
}

#[test]
fn graceful_restart_continues_windowed_subscription() {
    let dir = tmpdir();

    // Incarnation 1: schema + windowed query, two window fires.
    let server = durable_server(&dir, Some("CREATE STREAM s (ts TIMESTAMP, v BIGINT)"));
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    let qid = c.register("SELECT COUNT(*), SUM(v) FROM s [ROWS 4 SLIDE 2]").unwrap();
    let pre: Vec<Vec<Row>> = {
        let mut sub_conn = Client::connect(addr).unwrap();
        let mut sub = sub_conn.subscribe(qid, Some(2)).unwrap();
        push(&mut c, &[(1, 10), (2, 20), (3, 30), (4, 40)]);
        let mut got = Vec::new();
        while let Some(chunk) = sub.next_chunk(Duration::from_secs(10)).unwrap() {
            got.push(chunk);
            if got.len() == 2 {
                break;
            }
        }
        got
    };
    // Window [1..4] then [1..4] slid by 2 → fires at tuples 2 and 4.
    assert_eq!(pre.len(), 2);
    assert_eq!(pre[1], vec![vec![Value::Int(4), Value::Int(100)]]);
    c.quit().unwrap();
    server.shutdown(); // graceful → checkpoint

    // Incarnation 2: no init script — everything comes from the WAL.
    let server = durable_server(&dir, None);
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();

    // Recovered STATS: lifetime counters and the recovered query survive.
    let stats = c.stats().unwrap();
    assert!(stats.contains("wal:"), "stats must include the wal section:\n{stats}");
    let arrived_line = stats.lines().find(|l| l.starts_with("s ")).unwrap();
    assert!(arrived_line.contains("4"), "arrived counter lost:\n{stats}");

    // The subscription continues: next slide covers tuples 3..6.
    let mut sub_conn = Client::connect(addr).unwrap();
    let mut sub = sub_conn.subscribe(qid, Some(1)).unwrap();
    push(&mut c, &[(5, 50), (6, 60)]);
    let next = sub.next_chunk(Duration::from_secs(10)).unwrap().unwrap();
    // Window is the 4 tuples ending at tuple 6: 30+40+50+60.
    assert_eq!(next, vec![vec![Value::Int(4), Value::Int(180)]]);

    c.quit().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_after_unclean_drop_recovers_from_log_tail() {
    let dir = tmpdir();
    {
        // Incarnation 1 dies without shutdown(): no checkpoint, only logs.
        let server = durable_server(&dir, Some("CREATE STREAM s (ts TIMESTAMP, v BIGINT)"));
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.register("SELECT COUNT(*), SUM(v) FROM s [ROWS 4 SLIDE 2]").unwrap();
        push(&mut c, &[(1, 1), (2, 2), (3, 3)]);
        // Simulate a crash: leak the server object so Drop still runs the
        // minimal flag-raise, but no checkpoint is written.
        std::mem::forget(c);
        drop(server);
    }
    let server = durable_server(&dir, None);
    server.with_engine(|e| {
        assert!(e.recovered());
        assert_eq!(e.stats().baskets[0].arrived, 3);
        assert_eq!(e.query_ids(), vec![1]);
        assert_eq!(e.stats().wal.as_ref().unwrap().snapshots, 0, "no checkpoint ran");
    });
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
