//! Binary wire mode end-to-end: `HELLO BINARY` negotiation, cross-mode
//! equivalence (binary == text == in-process emitter), columnar value
//! fidelity, reconnect-with-resume over frames, robustness against
//! corrupt frames, and the frame-atomicity guarantee under backpressure
//! (a stalled subscriber only ever observes whole frames — the reactor
//! queues frames whole, so a mid-frame write deadline can only kill the
//! connection, never splice the stream).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use datacell_core::{DataCell, DataCellConfig, SyncPolicy, WalConfig};
use datacell_server::frame::{self, Frame, FrameBuf};
use datacell_server::{
    Client, ClientError, ReconnectPolicy, ResumingSubscription, Server, ServerConfig,
    Subscription,
};
use datacell_storage::{Row, Value};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir() -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("datacell-binmode-{}-{n}", std::process::id()))
}

fn rows_int(values: &[i64]) -> Vec<Row> {
    values.iter().map(|&v| vec![Value::Int(v)]).collect()
}

fn read_line_blocking(stream: &mut TcpStream) -> String {
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(1) => {
                if byte[0] == b'\n' {
                    return String::from_utf8_lossy(&line).into_owned();
                }
                line.push(byte[0]);
            }
            Ok(_) => panic!("connection closed mid-line"),
            Err(e) => panic!("read error: {e}"),
        }
    }
}

/// Drain a subscription until `want` rows arrived (or the deadline).
fn collect_rows(sub: &mut Subscription<'_>, want: usize) -> Vec<Row> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut rows = Vec::new();
    while rows.len() < want {
        assert!(
            Instant::now() < deadline,
            "timed out with {} rows, wanted {want}",
            rows.len()
        );
        if let Some(batch) = sub.next_chunk(Duration::from_millis(100)).unwrap() {
            rows.extend(batch);
        }
    }
    rows
}

/// Canonical form that distinguishes float bit patterns (`-0.0` vs
/// `0.0`, every NaN payload) — `PartialEq` on `f64` would blur them.
fn canon(rows: &[Row]) -> Vec<String> {
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Float(x) => format!("f:{:016x}", x.to_bits()),
                    other => format!("{other:?}"),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect()
}

// ---- negotiation -------------------------------------------------------

/// `HELLO BINARY 1` flips the connection to frames; an unsupported
/// version gets an ERR and the session stays text and usable.
#[test]
fn hello_negotiates_and_unsupported_version_stays_text() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"HELLO BINARY 99\nPING\n").unwrap();
    let reply = read_line_blocking(&mut raw);
    assert!(
        reply.starts_with("ERR unsupported binary wire version 99"),
        "got {reply:?}"
    );
    assert_eq!(read_line_blocking(&mut raw), "PONG");
    drop(raw);

    let mut c = Client::connect_binary(addr).unwrap();
    assert!(c.is_binary());
    c.ping().unwrap();
    c.quit().unwrap();
    server.shutdown();
}

// ---- cross-mode equivalence --------------------------------------------

/// Command-mode replies must be observationally identical across modes:
/// same EXEC outcomes, same error strings, same framed reports.
#[test]
fn binary_command_replies_match_text_mode() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut t = Client::connect(addr).unwrap();
    let mut b = Client::connect_binary(addr).unwrap();

    // Identical EXEC outcome shapes.
    use datacell_server::ExecReply;
    assert_eq!(
        t.exec("CREATE STREAM st (v BIGINT)").unwrap(),
        ExecReply::Created("st".into())
    );
    assert_eq!(
        b.exec("CREATE STREAM sb (v BIGINT)").unwrap(),
        ExecReply::Created("sb".into())
    );

    // Identical error strings, including engine errors.
    let terr = match t.deregister(424242) {
        Err(ClientError::Server(m)) => m,
        other => panic!("expected server error, got {other:?}"),
    };
    let berr = match b.deregister(424242) {
        Err(ClientError::Server(m)) => m,
        other => panic!("expected server error, got {other:?}"),
    };
    assert_eq!(terr, berr);

    let terr = match t.exec("FROBNICATE") {
        Err(ClientError::Server(m)) => m,
        other => panic!("expected server error, got {other:?}"),
    };
    let berr = match b.exec("FROBNICATE") {
        Err(ClientError::Server(m)) => m,
        other => panic!("expected server error, got {other:?}"),
    };
    assert_eq!(terr, berr);

    // PUSH round-trips the same count (text CSV block vs columnar frame).
    assert_eq!(t.push_rows("st", &rows_int(&[1, 2, 3])).unwrap(), 3);
    assert_eq!(b.push_rows("st", &rows_int(&[1, 2, 3])).unwrap(), 3);

    // Framed reports arrive whole in both modes with the same sections.
    let ts = t.stats().unwrap();
    let bs = b.stats().unwrap();
    for section in ["commands:", "rows pushed"] {
        assert!(ts.contains(section), "text STATS lacks {section}: {ts}");
        assert!(bs.contains(section), "binary STATS lacks {section}: {bs}");
    }
    let metrics = b.metrics().unwrap();
    assert!(
        metrics.contains("datacell_reactor_sessions"),
        "binary METRICS lacks the reactor gauge:\n{metrics}"
    );

    t.quit().unwrap();
    b.quit().unwrap();
    server.shutdown();
}

/// The tentpole equivalence: one workload observed through a text
/// subscriber, a binary subscriber, and an in-process emitter must yield
/// the exact same row values in the same order.
#[test]
fn subscribers_agree_across_binary_text_and_in_process() {
    const DDL: &str = "CREATE STREAM s (v DOUBLE, tag VARCHAR)";
    const QUERY: &str = "SELECT v, tag FROM s";

    // In-process reference: engine + emitter, no sockets.
    let mut cell = DataCell::default();
    cell.execute(DDL).unwrap();
    let q0 = cell.register_query(QUERY).unwrap();
    let emitter = cell.subscribe(q0).unwrap();

    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.exec(DDL).unwrap();
    let q = admin.register(QUERY).unwrap();

    let mut text_cli = Client::connect(addr).unwrap();
    let mut text_sub = text_cli.subscribe(q, None).unwrap();
    let mut bin_cli = Client::connect_binary(addr).unwrap();
    let mut bin_sub = bin_cli.subscribe(q, None).unwrap();

    let batches: Vec<Vec<Row>> = vec![
        vec![
            vec![Value::Float(0.1), Value::Str("plain".into())],
            vec![Value::Float(-0.0), Value::Str("a,b\"c".into())],
        ],
        vec![
            vec![Value::Float(f64::MIN_POSITIVE), Value::Str(String::new())],
            vec![Value::Float(1e300), Value::Str("end".into())],
        ],
    ];
    for batch in &batches {
        admin.push_rows("s", batch).unwrap();
        cell.push_rows("s", batch).unwrap();
        cell.run_until_idle().unwrap();
    }
    let want: Vec<Row> = batches.concat();

    let text_rows = collect_rows(&mut text_sub, want.len());
    let bin_rows = collect_rows(&mut bin_sub, want.len());
    let mut local_rows: Vec<Row> = Vec::new();
    while let Some(chunk) = emitter.try_next() {
        local_rows.extend(chunk.rows());
    }

    assert_eq!(canon(&text_rows), canon(&bin_rows), "text vs binary disagree");
    assert_eq!(canon(&bin_rows), canon(&local_rows), "wire vs in-process disagree");
    assert_eq!(canon(&bin_rows), canon(&want), "delivered values mutated in flight");
    server.shutdown();
}

/// Columnar frames carry float bit patterns the CSV text grammar cannot
/// even spell: NaN payloads and infinities survive bit-for-bit.
#[test]
fn binary_chunks_preserve_nonfinite_float_bits() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut admin = Client::connect_binary(addr).unwrap();
    admin.exec("CREATE STREAM s (v DOUBLE)").unwrap();
    let q = admin.register("SELECT v FROM s").unwrap();

    let mut bin_cli = Client::connect_binary(addr).unwrap();
    let mut sub = bin_cli.subscribe(q, None).unwrap();

    let specials = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        f64::from_bits(0x7ff8_0000_dead_beef), // NaN with a payload
    ];
    let rows: Vec<Row> = specials.iter().map(|&x| vec![Value::Float(x)]).collect();
    assert_eq!(admin.push_rows("s", &rows).unwrap(), rows.len());

    let got = collect_rows(&mut sub, rows.len());
    let got_bits: Vec<u64> = got
        .iter()
        .map(|r| match r[0] {
            Value::Float(x) => x.to_bits(),
            ref other => panic!("expected a float, got {other:?}"),
        })
        .collect();
    let want_bits: Vec<u64> = specials.iter().map(|x| x.to_bits()).collect();
    assert_eq!(got_bits, want_bits);
    server.shutdown();
}

// ---- reconnect with resume ---------------------------------------------

fn durable_config(dir: &PathBuf, addr: &str) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        engine: DataCellConfig {
            wal: Some(WalConfig {
                dir: dir.clone(),
                sync: SyncPolicy::Never,
                ..WalConfig::at(dir)
            }),
            results_capacity: Some(64),
            ..DataCellConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn start_on(dir: &PathBuf, addr: &str) -> Server {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match Server::start(durable_config(dir, addr)) {
            Ok(server) => return server,
            Err(e) => {
                assert!(Instant::now() < deadline, "rebind never succeeded: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// AFTER-resume works over frames too: a binary [`ResumingSubscription`]
/// rides out a full server restart with nothing duplicated and nothing
/// missing, renegotiating `HELLO BINARY` on every re-attach.
#[test]
fn binary_resuming_subscription_survives_server_restart() {
    let dir = tmpdir();
    let server = Server::start(durable_config(&dir, "127.0.0.1:0")).unwrap();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect_binary(addr.as_str()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT v FROM s").unwrap();

    let mut sub = ResumingSubscription::connect_binary_with(
        addr.clone(),
        q,
        ReconnectPolicy {
            max_attempts: 100,
            base_delay: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        },
    )
    .unwrap();
    assert_eq!(sub.names(), ["v"]);

    let mut delivered: Vec<i64> = Vec::new();
    let mut collect = |sub: &mut ResumingSubscription, want: usize| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while delivered.len() < want {
            assert!(
                Instant::now() < deadline,
                "timed out with {delivered:?}, wanted {want} values"
            );
            if let Some(rows) = sub.next_chunk(Duration::from_millis(100)).unwrap() {
                for row in rows {
                    delivered.push(row[0].as_int().unwrap());
                }
            }
        }
    };

    c.push_rows("s", &rows_int(&[1])).unwrap();
    c.push_rows("s", &rows_int(&[2])).unwrap();
    collect(&mut sub, 2);

    drop(c);
    server.shutdown();
    let server = start_on(&dir, &addr);

    let mut c2 = Client::connect_binary(addr.as_str()).unwrap();
    c2.push_rows("s", &rows_int(&[3])).unwrap();
    c2.push_rows("s", &rows_int(&[4])).unwrap();
    collect(&mut sub, 4);
    c2.push_rows("s", &rows_int(&[5])).unwrap();
    collect(&mut sub, 5);

    assert_eq!(delivered, vec![1, 2, 3, 4, 5], "duplicated or missing chunks");
    assert!(sub.reconnects() >= 1, "the subscription never re-attached");
    assert!(!sub.finished());
    server.shutdown();
}

// ---- corrupt input robustness ------------------------------------------

/// Negotiate binary mode on a raw socket and return it (nonblocking
/// frame I/O is then up to the caller).
fn negotiate_raw(addr: std::net::SocketAddr) -> TcpStream {
    let mut raw = TcpStream::connect(addr).unwrap();
    raw.write_all(b"HELLO BINARY 1\n").unwrap();
    assert_eq!(read_line_blocking(&mut raw), "OK HELLO BINARY 1");
    raw
}

/// Read frames off a raw socket until one TEXT frame arrives; return its
/// payload. Panics on EOF (callers expecting a close use `expect_eof`).
fn read_text_frame(stream: &mut TcpStream, fbuf: &mut FrameBuf) -> String {
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut buf = [0u8; 4096];
    loop {
        if let Some((tag, payload)) = fbuf.next_frame().unwrap() {
            match frame::decode_frame(tag, &payload).unwrap() {
                Frame::Text(t) => return t,
                other => panic!("expected a TEXT frame, got {other:?}"),
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => panic!("connection closed while awaiting a TEXT frame"),
            Ok(n) => fbuf.push_bytes(&buf[..n]),
            Err(e) => panic!("read error: {e}"),
        }
    }
}

/// Drain until EOF, asserting every byte received still parses as whole
/// frames (a dying connection must never splice a frame).
fn expect_clean_close(stream: &mut TcpStream, fbuf: &mut FrameBuf) {
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut buf = [0u8; 4096];
    loop {
        while let Some((tag, payload)) = fbuf.next_frame().unwrap() {
            frame::decode_frame(tag, &payload).unwrap();
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => fbuf.push_bytes(&buf[..n]),
            Err(e) => panic!("read error: {e}"),
        }
    }
}

/// Corrupt frames must never panic or wedge the server: a decodable
/// frame with a broken payload gets an ERR and the connection stays
/// synced; an untrustworthy length is fatal but clean; truncation is a
/// clean close. The server keeps serving throughout.
#[test]
fn corrupt_frames_get_err_or_clean_close_never_panic() {
    let server = Server::start(ServerConfig {
        init_script: Some("CREATE STREAM s (v BIGINT)".into()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();

    // (a) Unknown tag with a valid length: ERR, connection stays usable.
    {
        let mut raw = negotiate_raw(addr);
        let mut fbuf = FrameBuf::new();
        raw.write_all(&[0x7f, 3, 0, 0, 0, b'x', b'y', b'z']).unwrap();
        let reply = read_text_frame(&mut raw, &mut fbuf);
        assert!(reply.starts_with("ERR "), "got {reply:?}");
        raw.write_all(&frame::encode_text("PING")).unwrap();
        assert_eq!(read_text_frame(&mut raw, &mut fbuf).trim(), "PONG");
    }

    // (b) A client-sent CHUNK frame is rejected but not fatal.
    {
        let mut raw = negotiate_raw(addr);
        let mut fbuf = FrameBuf::new();
        let chunk_bytes = {
            use datacell_storage::{Bat, Chunk};
            let chunk = Chunk::new(vec![Bat::from_ints(vec![1])]).unwrap();
            frame::encode_chunk_frame(1, 1, &chunk).unwrap()
        };
        raw.write_all(&chunk_bytes).unwrap();
        let reply = read_text_frame(&mut raw, &mut fbuf);
        assert!(reply.contains("server to client only"), "got {reply:?}");
    }

    // (c) An oversized length field is fatal: ERR then close, at a frame
    // boundary.
    {
        let mut raw = negotiate_raw(addr);
        let mut fbuf = FrameBuf::new();
        raw.write_all(&[0x00, 0xff, 0xff, 0xff, 0xff]).unwrap();
        let reply = read_text_frame(&mut raw, &mut fbuf);
        assert!(reply.starts_with("ERR "), "got {reply:?}");
        expect_clean_close(&mut raw, &mut fbuf);
    }

    // (d) Truncation: a partial frame followed by a close is just a
    // clean disconnect.
    {
        let mut raw = negotiate_raw(addr);
        let valid = {
            use datacell_storage::Schema;
            let schema = Schema::of(&[("v", datacell_storage::DataType::Int)]);
            frame::encode_push_frame("s", &schema, &rows_int(&[7])).unwrap()
        };
        raw.write_all(&valid[..valid.len() / 2]).unwrap();
        drop(raw);
    }

    // (e) Bit-flip sweep over a valid PUSH payload: every mutation gets
    // *some* single-frame TEXT reply (OK or ERR — a flip may still
    // decode) and the connection stays synced for the next frame.
    {
        let valid = {
            use datacell_storage::Schema;
            let schema = Schema::of(&[("v", datacell_storage::DataType::Int)]);
            frame::encode_push_frame("s", &schema, &rows_int(&[7, 8, 9])).unwrap()
        };
        let header = 5; // tag + u32 length stay intact: framing is trusted
        let mut raw = negotiate_raw(addr);
        let mut fbuf = FrameBuf::new();
        for pos in (header..valid.len()).step_by(3) {
            let mut mutated = valid.clone();
            mutated[pos] ^= 0x80;
            raw.write_all(&mutated).unwrap();
            let reply = read_text_frame(&mut raw, &mut fbuf);
            assert!(
                reply.starts_with("OK PUSHED") || reply.starts_with("ERR "),
                "byte {pos}: got {reply:?}"
            );
        }
        // Still synced: an unmutated frame is accepted.
        raw.write_all(&valid).unwrap();
        let reply = read_text_frame(&mut raw, &mut fbuf);
        assert!(reply.starts_with("OK PUSHED 3"), "got {reply:?}");
    }

    // The server survived everything above.
    let mut c = Client::connect_binary(addr).unwrap();
    c.ping().unwrap();
    c.quit().unwrap();
    server.shutdown();
}

/// Pure decode totality: arbitrary bytes through [`frame::decode_frame`]
/// may fail but never panic and never allocate unboundedly.
mod decode_totality {
    use super::frame;
    use proptest::prelude::*;
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]
        #[test]
        fn decode_frame_is_total_on_arbitrary_bytes(
            tag in 0u32..256,
            payload in proptest::collection::vec(0u32..256, 0..256)
        ) {
            let bytes: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
            let _ = frame::decode_frame(tag as u8, &bytes);
        }
    }
}

// ---- frame atomicity under backpressure (satellite 3) ------------------

/// A subscriber that stops reading while the server keeps producing
/// exercises partial socket writes and the reactor's high-water pause.
/// When it resumes, every byte must still parse as whole frames with
/// strictly increasing sequence numbers: frames are queued whole, so
/// backpressure can delay or kill a stream but never interleave it.
#[test]
fn backpressured_subscriber_sees_only_whole_frames() {
    let server = Server::start(ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut admin = Client::connect(addr).unwrap();
    admin.exec("CREATE STREAM s (v BIGINT, pad VARCHAR)").unwrap();
    let q = admin.register("SELECT v, pad FROM s").unwrap();

    let mut bin_cli = Client::connect_binary(addr).unwrap();
    let mut sub = bin_cli.subscribe(q, None).unwrap();

    // ~6 MiB of chunk frames — far beyond the kernel socket buffers, so
    // the reactor sees partial writes and (briefly) the high-water mark.
    const CHUNKS: usize = 200;
    const ROWS: usize = 32;
    let pad = "x".repeat(1024);
    for i in 0..CHUNKS {
        let batch: Vec<Row> = (0..ROWS)
            .map(|r| vec![Value::Int((i * ROWS + r) as i64), Value::Str(pad.clone())])
            .collect();
        admin.push_rows("s", &batch).unwrap();
    }
    // Let the server wedge against the unread socket before we drain.
    std::thread::sleep(Duration::from_millis(300));

    let deadline = Instant::now() + Duration::from_secs(60);
    let mut total_rows = 0usize;
    let mut last_seq = 0u64;
    let mut next_expected = 0i64;
    while total_rows < CHUNKS * ROWS {
        assert!(
            Instant::now() < deadline,
            "timed out after {total_rows} rows (seq {last_seq})"
        );
        let Some(rows) = sub.next_chunk(Duration::from_millis(200)).unwrap() else {
            assert!(!sub.finished(), "stream ended early at {total_rows} rows");
            continue;
        };
        let (_, seq) = sub.position();
        assert!(seq > last_seq, "sequence went backwards: {last_seq} -> {seq}");
        last_seq = seq;
        for row in rows {
            assert_eq!(row[0], Value::Int(next_expected), "row payload out of order");
            next_expected += 1;
            total_rows += 1;
        }
    }
    let (tail, _, _) = sub.stop().unwrap();
    assert!(tail.is_empty(), "all chunks were already drained");
    server.shutdown();
}
