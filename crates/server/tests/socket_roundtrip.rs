//! Integration tests over real TCP sockets: the full receptor → engine →
//! emitter loop, including the acceptance check that the wire-delivered
//! subscription stream is **byte-identical** to encoding the chunks an
//! in-process `Engine::subscribe` emitter produces for the same inputs.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use datacell_core::{DataCell, DataCellConfig};
use datacell_server::protocol::encode_chunk;
use datacell_server::{Client, ClientError, ExecReply, Server, ServerConfig};
use datacell_storage::{Row, Value};

fn start_server() -> Server {
    Server::start(ServerConfig::default()).expect("server start")
}

fn rows_int(values: &[i64]) -> Vec<Row> {
    values.iter().map(|&v| vec![Value::Int(v)]).collect()
}

/// Read from `stream` until `want` bytes arrived (or panic at deadline).
fn read_exact_bytes(stream: &mut TcpStream, want: usize) -> Vec<u8> {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut got = Vec::new();
    let mut buf = [0u8; 4096];
    while got.len() < want {
        assert!(
            Instant::now() < deadline,
            "timed out with {} of {} bytes:\n{}",
            got.len(),
            want,
            String::from_utf8_lossy(&got)
        );
        match stream.read(&mut buf) {
            Ok(0) => panic!("server closed early after {} bytes", got.len()),
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read error: {e}"),
        }
    }
    got
}

fn read_line_blocking(stream: &mut TcpStream) -> String {
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(1) => {
                if byte[0] == b'\n' {
                    return String::from_utf8_lossy(&line).into_owned();
                }
                line.push(byte[0]);
            }
            Ok(_) => panic!("connection closed mid-line"),
            Err(e) => panic!("read error: {e}"),
        }
    }
}

/// The acceptance loop: client A creates the stream and the continuous
/// query and subscribes; client B pushes tuples over `PUSH`; the `CHUNK`
/// stream A receives must be byte-identical to encoding the chunks of an
/// in-process subscription fed the same batches.
#[test]
fn full_loop_byte_identical_to_in_process_windowed() {
    let ddl = "CREATE STREAM s (v BIGINT)";
    let sql = "SELECT COUNT(*), SUM(v) FROM s [ROWS 8 SLIDE 4]";
    let batches: Vec<Vec<i64>> = vec![
        (0..5).collect(),
        (5..12).collect(),
        vec![100],
        (200..220).collect(),
    ];

    // Reference: the same inputs through the in-process emitter path.
    let mut cell = DataCell::new(DataCellConfig::default());
    cell.execute(ddl).unwrap();
    let ref_q = cell.register_query(sql).unwrap();
    let emitter = cell.subscribe(ref_q).unwrap();
    for batch in &batches {
        cell.push_rows("s", &rows_int(batch)).unwrap();
        cell.run_until_idle().unwrap();
    }
    // Sequence numbers start at 1 in a fresh server incarnation and the
    // subscription precedes every push, so the ring assigns 1..=N.
    let expected: String = emitter
        .drain()
        .iter()
        .enumerate()
        .map(|(i, chunk)| encode_chunk(ref_q, i as u64 + 1, chunk))
        .collect();
    assert!(!expected.is_empty(), "reference produced no chunks");

    // The same inputs over sockets.
    let server = start_server();
    let mut a = Client::connect(server.local_addr()).unwrap();
    assert_eq!(a.exec(ddl).unwrap(), ExecReply::Created("s".into()));
    let q = a.register(sql).unwrap();
    assert_eq!(q, ref_q, "fresh engines must assign the same first id");

    // Client A becomes the emitter over a raw socket so we can assert on
    // the exact bytes.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(format!("SUBSCRIBE {q}\n").as_bytes()).unwrap();
    let header = read_line_blocking(&mut raw);
    assert!(
        header.starts_with(&format!("OK SUBSCRIBED {q} ")),
        "unexpected subscribe reply: {header:?}"
    );

    let mut b = Client::connect(server.local_addr()).unwrap();
    for batch in &batches {
        let pushed = b.push_rows("s", &rows_int(batch)).unwrap();
        assert_eq!(pushed, batch.len());
    }

    let got = read_exact_bytes(&mut raw, expected.len());
    assert_eq!(
        String::from_utf8_lossy(&got),
        expected,
        "wire chunk stream diverged from the in-process emitter"
    );

    // Clean exit from streaming mode.
    raw.write_all(b"STOP\n").unwrap();
    let stopped = read_line_blocking(&mut raw);
    assert!(stopped.starts_with("OK STOPPED "), "got {stopped:?}");

    server.shutdown();
}

/// Same acceptance loop for an unwindowed echo query with strings, NULLs,
/// floats and timestamps — stressing CSV encoding both directions.
#[test]
fn full_loop_byte_identical_echo_with_mixed_types() {
    let ddl = "CREATE STREAM t (v BIGINT, tag VARCHAR, x DOUBLE, ts TIMESTAMP)";
    let sql = "SELECT v, tag, x, ts FROM t";
    let batches: Vec<Vec<Row>> = vec![
        vec![
            vec![Value::Int(1), Value::Str("plain".into()), Value::Float(1.5), Value::Timestamp(10)],
            vec![Value::Int(2), Value::Str("with,comma".into()), Value::Float(2.0), Value::Timestamp(20)],
        ],
        vec![
            vec![Value::Null, Value::Str("quo\"te".into()), Value::Null, Value::Timestamp(30)],
            vec![Value::Int(4), Value::Str("NULL".into()), Value::Float(-0.25), Value::Null],
            // A newline in a value must not split the line framing (nor
            // inject protocol commands on the PUSH path).
            vec![Value::Int(5), Value::Str("multi\nEND\nline".into()), Value::Float(9.0), Value::Timestamp(40)],
        ],
    ];

    let mut cell = DataCell::default();
    cell.execute(ddl).unwrap();
    let ref_q = cell.register_query(sql).unwrap();
    let emitter = cell.subscribe(ref_q).unwrap();
    for batch in &batches {
        cell.push_rows("t", batch).unwrap();
        cell.run_until_idle().unwrap();
    }
    // Sequence numbers start at 1 in a fresh server incarnation and the
    // subscription precedes every push, so the ring assigns 1..=N.
    let expected: String = emitter
        .drain()
        .iter()
        .enumerate()
        .map(|(i, chunk)| encode_chunk(ref_q, i as u64 + 1, chunk))
        .collect();

    let server = start_server();
    let mut a = Client::connect(server.local_addr()).unwrap();
    a.exec(ddl).unwrap();
    let q = a.register(sql).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(format!("SUBSCRIBE {q}\n").as_bytes()).unwrap();
    read_line_blocking(&mut raw);

    let mut b = Client::connect(server.local_addr()).unwrap();
    for batch in &batches {
        assert_eq!(b.push_rows("t", batch).unwrap(), batch.len());
    }
    let got = read_exact_bytes(&mut raw, expected.len());
    assert_eq!(String::from_utf8_lossy(&got), expected);
    server.shutdown();
}

#[test]
fn exec_one_time_queries_and_ddl() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.ping().unwrap();
    assert_eq!(
        c.exec("CREATE TABLE prices (sym VARCHAR, p DOUBLE)").unwrap(),
        ExecReply::Created("prices".into())
    );
    assert_eq!(
        c.exec("INSERT INTO prices VALUES ('a', 1.5), ('b', 2.5)").unwrap(),
        ExecReply::Inserted(2)
    );
    let reply = c.exec("SELECT sym, p FROM prices WHERE p > 2.0").unwrap();
    match reply {
        ExecReply::Rows { names, rows } => {
            assert_eq!(names, vec!["sym", "p"]);
            assert_eq!(rows, vec![vec![Value::Str("b".into()), Value::Float(2.5)]]);
        }
        other => panic!("expected rows, got {other:?}"),
    }
    assert_eq!(
        c.exec("DROP TABLE prices").unwrap(),
        ExecReply::Dropped("prices".into())
    );
    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn errors_are_reported_not_fatal() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    // SQL error.
    match c.exec("SELEKT 1") {
        Err(ClientError::Server(_)) => {}
        other => panic!("expected server error, got {other:?}"),
    }
    // Unknown stream push: the row block is consumed, the session lives.
    match c.push_rows("nosuch", &rows_int(&[1])) {
        Err(ClientError::Server(msg)) => assert!(msg.contains("nosuch"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    // Unknown query ids.
    assert!(matches!(c.deregister(99), Err(ClientError::Server(_))));
    assert!(matches!(c.subscribe(99, None), Err(ClientError::Server(_))));
    // The session is still usable afterwards.
    c.ping().unwrap();
    let stats = server.stats();
    assert!(stats.errors >= 4, "errors not counted: {stats:?}");
    server.shutdown();
}

#[test]
fn push_with_bad_row_applies_nothing() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    // Raw block with a malformed second row: must ERR and apply nothing.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(b"PUSH s\n1\nnot-a-number\n3\nEND\n").unwrap();
    let reply = read_line_blocking(&mut raw);
    assert!(reply.starts_with("ERR "), "got {reply:?}");
    assert!(reply.contains("row 2"), "got {reply:?}");
    // Nothing was ingested: the first clean push is the first firing, and
    // its COUNT(*) must be exactly the clean batch.
    let q = c.register("SELECT COUNT(*) FROM s").unwrap();
    let mut pusher = Client::connect(server.local_addr()).unwrap();
    let mut sub = c.subscribe(q, Some(1)).unwrap();
    assert_eq!(pusher.push_rows("s", &rows_int(&[7])).unwrap(), 1);
    let first = sub.next_chunk(Duration::from_secs(10)).unwrap().unwrap();
    assert_eq!(first, vec![vec![Value::Int(1)]], "bad batch must not count");
    server.shutdown();
}

#[test]
fn subscribe_limit_ends_stream_automatically() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT SUM(v) FROM s").unwrap();

    let mut pusher = Client::connect(server.local_addr()).unwrap();
    let mut sub = c.subscribe(q, Some(2)).unwrap();
    assert_eq!(sub.names(), ["SUM(v)"]);
    for i in 0..3 {
        pusher.push_rows("s", &rows_int(&[i, i + 1])).unwrap();
    }
    let first = sub.next_chunk(Duration::from_secs(10)).unwrap().unwrap();
    assert_eq!(first, vec![vec![Value::Int(1)]]);
    let second = sub.next_chunk(Duration::from_secs(10)).unwrap().unwrap();
    assert_eq!(second, vec![vec![Value::Int(3)]]);
    // Limit reached: the server ends the stream on its own.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sub.finished() {
        assert!(Instant::now() < deadline, "no OK STOPPED after limit");
        assert!(sub.next_chunk(Duration::from_millis(100)).unwrap().is_none());
    }
    // Back in command mode.
    drop(sub);
    c.ping().unwrap();
    server.shutdown();
}

#[test]
fn stop_returns_to_command_mode() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT COUNT(*) FROM s").unwrap();
    let mut pusher = Client::connect(server.local_addr()).unwrap();

    let mut sub = c.subscribe(q, None).unwrap();
    pusher.push_rows("s", &rows_int(&[1, 2, 3])).unwrap();
    let chunk = sub.next_chunk(Duration::from_secs(10)).unwrap().unwrap();
    assert_eq!(chunk, vec![vec![Value::Int(3)]]);
    let (_tail, chunks, rows) = sub.stop().unwrap();
    assert_eq!((chunks, rows), (1, 1));
    // The connection is a normal command session again.
    c.ping().unwrap();
    assert!(matches!(
        c.exec("SELECT COUNT(*) FROM nosuch"),
        Err(ClientError::Server(_))
    ));
    server.shutdown();
}

#[test]
fn deregister_closes_live_subscriptions() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT COUNT(*) FROM s").unwrap();
    let mut sub_client = Client::connect(server.local_addr()).unwrap();
    let mut sub = sub_client.subscribe(q, None).unwrap();
    c.deregister(q).unwrap();
    // The emitter closes; the server ends the stream with OK STOPPED.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !sub.finished() {
        assert!(Instant::now() < deadline, "stream did not end on deregister");
        assert!(sub.next_chunk(Duration::from_millis(100)).unwrap().is_none());
    }
    server.shutdown();
}

#[test]
fn concurrent_pushers_fan_in_completely() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT COUNT(*) FROM s").unwrap();
    let mut sub = c.subscribe(q, None).unwrap();

    const PUSHERS: usize = 4;
    const BATCHES: usize = 10;
    const BATCH: usize = 25;
    let addr = server.local_addr();
    let handles: Vec<_> = (0..PUSHERS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut p = Client::connect(addr).unwrap();
                for b in 0..BATCHES {
                    let vals: Vec<i64> = (0..BATCH as i64).map(|i| i + b as i64).collect();
                    assert_eq!(p.push_rows("s", &rows_int(&vals)).unwrap(), BATCH);
                }
            })
        })
        .collect();

    // COUNT(*) consumes what arrived per firing; the counts across all
    // chunks must sum to every pushed row exactly once.
    let expected = (PUSHERS * BATCHES * BATCH) as i64;
    let mut seen = 0i64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while seen < expected {
        assert!(Instant::now() < deadline, "saw only {seen} of {expected} rows");
        if let Some(rows) = sub.next_chunk(Duration::from_millis(200)).unwrap() {
            for row in rows {
                seen += row[0].as_int().unwrap();
            }
        }
    }
    assert_eq!(seen, expected, "fan-in lost or duplicated tuples");
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.rows_pushed, expected as u64);
    server.shutdown();
}

#[test]
fn stats_command_reports_engine_and_server_sections() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    c.register("SELECT COUNT(*) FROM s").unwrap();
    c.push_rows("s", &rows_int(&[1, 2])).unwrap();
    let report = c.stats().unwrap();
    assert!(report.contains("== baskets =="), "{report}");
    assert!(report.contains("== queries =="), "{report}");
    assert!(report.contains("== server =="), "{report}");
    assert!(report.contains("rows pushed"), "{report}");
    // Engine uptime and this session's own counters ride along.
    assert!(report.contains("uptime: "), "{report}");
    assert!(report.contains("== session =="), "{report}");
    assert!(report.contains("commands: "), "{report}");
    server.shutdown();
}

/// The observability surface over the wire: `METRICS` must be valid
/// Prometheus text exposition format (acceptance), and the latency
/// histograms filled by real socket traffic must show up on it.
#[test]
fn metrics_command_serves_parseable_prometheus() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT COUNT(*), SUM(v) FROM s").unwrap();

    // Drive the full receptor → engine → emitter → socket loop so the
    // wire-delivery histogram records (the chunk carries its ingest stamp
    // through the subscriber queue onto this connection).
    let mut pusher = Client::connect(server.local_addr()).unwrap();
    let mut sub = c.subscribe(q, Some(2)).unwrap();
    pusher.push_rows("s", &rows_int(&[1, 2, 3])).unwrap();
    pusher.push_rows("s", &rows_int(&[4, 5])).unwrap();
    sub.next_chunk(Duration::from_secs(10)).unwrap().unwrap();
    sub.next_chunk(Duration::from_secs(10)).unwrap().unwrap();
    drop(sub);

    let text = pusher.metrics().unwrap();
    let samples = datacell_core::parse_prometheus(&text)
        .expect("METRICS must be valid Prometheus exposition format");
    let value_of = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing from:\n{text}"))
            .value
    };
    assert_eq!(value_of("datacell_ingest_rows_total"), 5.0);
    assert!(value_of("datacell_firings_total") >= 2.0);
    for histogram in [
        "datacell_basket_wait_us",
        "datacell_factory_fire_us",
        "datacell_e2e_latency_us",
        "datacell_emitter_queue_us",
        "datacell_wire_delivery_us",
    ] {
        assert!(
            value_of(&format!("{histogram}_count")) >= 1.0,
            "{histogram} recorded no samples:\n{text}"
        );
    }
    server.shutdown();
}

#[test]
fn explain_analyze_stats_detail_and_trace_over_the_wire() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT COUNT(*) FROM s").unwrap();
    c.push_rows("s", &rows_int(&[1, 2, 3])).unwrap();

    let analyze = c.explain_analyze(q).unwrap();
    assert!(analyze.contains("== analyze =="), "{analyze}");
    assert!(analyze.contains(&format!("q{q}")), "{analyze}");
    assert!(matches!(c.explain_analyze(999), Err(ClientError::Server(_))));

    let detail = c.stats_detail().unwrap();
    assert!(detail.contains("== analyze =="), "{detail}");
    assert!(detail.contains("== latency =="), "{detail}");
    assert!(detail.contains("== session =="), "{detail}");

    // The flight recorder saw the DDL and registration; a drain returns
    // them oldest-first and a second drain finds nothing new.
    let trace = c.trace_dump(None).unwrap();
    assert!(trace.contains("create_stream"), "{trace}");
    assert!(trace.contains("register"), "{trace}");
    assert!(c.trace_dump(None).unwrap().is_empty());
    server.shutdown();
}

#[test]
fn init_script_prepares_engine_before_listening() {
    let server = Server::start(ServerConfig {
        init_script: Some(
            "CREATE STREAM boot (v BIGINT); CREATE TABLE dim (k BIGINT)".into(),
        ),
        ..Default::default()
    })
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c.push_rows("boot", &rows_int(&[1])).unwrap(), 1);
    server.shutdown();
}

#[test]
fn shutdown_command_requests_server_teardown() {
    let server = start_server();
    let mut c = Client::connect(server.local_addr()).unwrap();
    c.exec("CREATE STREAM s (v BIGINT)").unwrap();
    let q = c.register("SELECT COUNT(*) FROM s").unwrap();
    // A live subscription on another connection must be released too.
    let mut sub_client = Client::connect(server.local_addr()).unwrap();
    let sub = sub_client.subscribe(q, None).unwrap();
    assert!(!server.shutdown_requested());
    c.shutdown_server().unwrap();
    assert!(server.shutdown_requested());
    let stats = server.shutdown();
    assert!(stats.sessions_opened >= 2);
    drop(sub);
}

#[test]
fn quit_and_reconnect_cycle() {
    let server = start_server();
    for _ in 0..3 {
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.ping().unwrap();
        c.quit().unwrap();
    }
    // Sessions are torn down and counted.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().sessions_closed < 3 {
        assert!(Instant::now() < deadline, "sessions not reaped: {:?}", server.stats());
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.stats().sessions_opened, 3);
    server.shutdown();
}
