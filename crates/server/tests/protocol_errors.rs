//! Protocol error-path regression tests: malformed client input —
//! wrong-arity `PUSH` rows, broken CSV escaping, oversize lines — must be
//! answered with `ERR` while the session (and the batch framing) stays
//! alive. A hostile or buggy client must never tear down its connection
//! thread, poison the engine, or desync the line protocol.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use datacell_server::{Server, ServerConfig};

fn start_server() -> Server {
    let config = ServerConfig {
        init_script: Some(
            "CREATE STREAM s (ts TIMESTAMP, v BIGINT); \
             CREATE TABLE t (x BIGINT)"
                .into(),
        ),
        ..ServerConfig::default()
    };
    Server::start(config).expect("server start")
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).ok();
    stream
}

fn read_line(stream: &mut TcpStream) -> String {
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        assert!(Instant::now() < deadline, "timed out reading a line");
        match stream.read(&mut byte) {
            Ok(1) if byte[0] == b'\n' => {
                return String::from_utf8_lossy(&line).into_owned()
            }
            Ok(1) => line.push(byte[0]),
            Ok(_) => panic!("connection closed mid-line: {line:?}"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("read error: {e}"),
        }
    }
}

fn send(stream: &mut TcpStream, text: &str) {
    stream.write_all(text.as_bytes()).expect("write");
}

/// The liveness probe after every error: the session must still answer.
fn assert_alive(stream: &mut TcpStream) {
    send(stream, "PING\n");
    assert_eq!(read_line(stream), "PONG");
}

#[test]
fn wrong_arity_push_rows_answer_err_and_keep_session() {
    let server = start_server();
    let mut c = connect(&server);

    // Too few and too many fields — whole batch rejected, session alive.
    send(&mut c, "PUSH s\n@1\nEND\n");
    let reply = read_line(&mut c);
    assert!(reply.starts_with("ERR row 1:"), "got {reply:?}");
    assert!(reply.contains("2 columns"), "got {reply:?}");
    assert_alive(&mut c);

    send(&mut c, "PUSH s\n@1,2,3,4\nEND\n");
    assert!(read_line(&mut c).starts_with("ERR row 1:"));
    assert_alive(&mut c);

    // A bad row mid-batch rejects the batch atomically: nothing landed.
    send(&mut c, "PUSH s\n@1,10\nbogus,row,extra\n@2,20\nEND\n");
    assert!(read_line(&mut c).starts_with("ERR row 2:"));
    server.with_engine(|e| {
        assert_eq!(e.stats().baskets[0].arrived, 0, "failed batch must not land");
    });

    // And a correct batch on the same connection still works.
    send(&mut c, "PUSH s\n@1,10\n@2,20\nEND\n");
    assert_eq!(read_line(&mut c), "OK PUSHED 2");
    server.shutdown();
}

#[test]
fn bad_csv_escaping_answers_err_and_keeps_session() {
    let server = start_server();
    let mut c = connect(&server);

    for bad in [
        "PUSH s\n@1,\"unterminated\nEND\n",    // quote never closed
        "PUSH s\n@1,\"bad\\q\"\nEND\n",        // unknown escape
        "PUSH s\n@1,\"trail\"junk\nEND\n",     // junk after quoted field
        "PUSH s\nnaked\"quote,1\nEND\n",       // quote inside bare field
    ] {
        send(&mut c, bad);
        let reply = read_line(&mut c);
        assert!(reply.starts_with("ERR row 1:"), "{bad:?} → {reply:?}");
        assert_alive(&mut c);
    }
    server.with_engine(|e| assert_eq!(e.stats().baskets[0].arrived, 0));
    server.shutdown();
}

#[test]
fn oversize_command_line_answers_err_and_keeps_session() {
    let server = start_server();
    let mut c = connect(&server);

    // A ~2 MiB command line (limit is 1 MiB): ERR, then business as usual.
    let mut huge = String::with_capacity(2 << 20);
    huge.push_str("EXEC ");
    huge.extend(std::iter::repeat_n('x', 2 << 20));
    huge.push('\n');
    send(&mut c, &huge);
    let reply = read_line(&mut c);
    assert!(reply.starts_with("ERR") && reply.contains("1 MiB"), "got {reply:?}");
    assert_alive(&mut c);
    server.shutdown();
}

#[test]
fn oversize_push_row_poisons_batch_not_session() {
    let server = start_server();
    let mut c = connect(&server);

    let mut batch = String::with_capacity(2 << 20);
    batch.push_str("PUSH s\n@1,10\n");
    batch.extend(std::iter::repeat_n('9', 2 << 20)); // oversize row
    batch.push('\n');
    batch.push_str("@2,20\nEND\n");
    send(&mut c, &batch);
    let reply = read_line(&mut c);
    assert!(
        reply.starts_with("ERR row 2:") && reply.contains("1 MiB"),
        "got {reply:?}"
    );
    server.with_engine(|e| assert_eq!(e.stats().baskets[0].arrived, 0));
    assert_alive(&mut c);

    // Framing stayed intact: the next batch parses cleanly.
    send(&mut c, "PUSH s\n@3,30\nEND\n");
    assert_eq!(read_line(&mut c), "OK PUSHED 1");
    server.shutdown();
}

#[test]
fn errors_do_not_tear_down_other_sessions() {
    let server = start_server();
    let mut bad = connect(&server);
    let mut good = connect(&server);

    send(&mut bad, "PUSH s\nnot,a,row,at,all\nEND\n");
    assert!(read_line(&mut bad).starts_with("ERR"));
    send(&mut good, "PUSH s\n@7,70\nEND\n");
    assert_eq!(read_line(&mut good), "OK PUSHED 1");
    assert_alive(&mut bad);
    assert_alive(&mut good);

    let stats = server.shutdown();
    assert!(stats.errors >= 1);
    assert_eq!(stats.rows_pushed, 1);
}
