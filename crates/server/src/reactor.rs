//! The reactor: one thread driving every binary-mode connection through
//! readiness-based I/O.
//!
//! Text sessions keep the thread-per-connection model (`session.rs`) —
//! a CLI user costs one cheap mostly-parked thread. Connections that
//! negotiate `HELLO BINARY <v>` are handed off here instead: the session
//! thread flips the socket non-blocking, parks it on
//! `SharedState::enqueue_handoff` and exits, and this single thread
//! multiplexes all of them over an epoll [`Poller`] (oneshot readiness,
//! re-armed after every event), so thousands of subscribers cost one
//! thread, not thousands.
//!
//! Per connection the reactor keeps a frame reassembly buffer
//! ([`FrameBuf`]) on the read side and a queue of pending write buffers
//! on the write side. Subscription `CHUNK` frames enter that queue as
//! [`Arc`]-shared bytes straight from the replay ring's encode-once
//! cache ([`crate::replay::ReplayRing::fetch_frames_after`]) — one
//! encode per chunk, shared by every subscriber. Each frame is queued
//! whole and buffers drain strictly in order, so frames are never
//! interleaved on the wire regardless of how many partial writes a slow
//! client forces (the binary-mode answer to the write-deadline atomicity
//! audit: a mid-frame write deadline kills the *connection*, never
//! splices the stream).
//!
//! Backpressure: a connection whose write queue exceeds [`HIGH_WATER`]
//! stops pulling from the replay ring (the ring keeps retaining; a
//! reconnect with `AFTER` recovers), and a queue that makes no progress
//! for the configured write timeout marks the connection dead. Fault
//! injection ([`FaultPoint::SocketRead`] / [`FaultPoint::SocketWrite`])
//! is consulted at every socket syscall the reactor issues, same as the
//! WAL consults its points.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell_core::{
    Counter, EngineError, EngineObs, ExecOutcome, FaultKind, FaultPoint, Gauge,
};
use polling::{Event, Events, Poller};

use crate::frame::{decode_frame, encode_text, Frame, FrameBuf};
use crate::protocol::{encode_names, encode_row, err_line, parse_command, Command};
use crate::server::SharedState;
use crate::session::SessionStats;

/// Poll granularity: the reactor wakes at least this often to adopt
/// handoffs, pull replay rings forward and check deadlines.
const TICK: Duration = Duration::from_millis(5);

/// Read buffer size per syscall.
const READ_BUF: usize = 64 * 1024;

/// Socket reads per readiness event before yielding to other
/// connections (fairness under a firehose producer).
const READ_ROUNDS: usize = 4;

/// Stop pulling chunks from the replay ring once this many bytes are
/// queued for one connection (resume below it next tick).
const HIGH_WATER: usize = 4 << 20;

/// Chunk frames pulled from a ring per fill round.
const FILL_BATCH: usize = 64;

/// Best-effort flush budget for queued replies during shutdown drain.
const DRAIN_BUDGET: Duration = Duration::from_secs(2);

/// A connection that negotiated `HELLO BINARY`, parked by its session
/// thread for the reactor to adopt.
pub(crate) struct BinaryHandoff {
    /// The socket, already switched to non-blocking mode.
    pub stream: TcpStream,
    /// Bytes the client pipelined behind the `HELLO` line — the first
    /// binary frames, read by the line reader but not consumed.
    pub leftover: Vec<u8>,
    /// Counters accumulated during the text phase; folded server-wide
    /// when the reactor closes the connection.
    pub stats: SessionStats,
}

/// What a connection is currently doing (mirror of the session's
/// command/streaming alternation).
#[derive(Clone, Copy)]
enum Mode {
    /// Awaiting command frames.
    Command,
    /// Subscribed: `CHUNK` frames flow out until STOP / limit / close.
    Streaming { query: u64, limit: Option<u64>, cursor: u64, chunks: u64, rows: u64 },
}

/// One pending write buffer: replies are owned, chunk frames are shared
/// with every other subscriber of the same query.
enum WriteBuf {
    Shared(Arc<Vec<u8>>),
    Owned(Vec<u8>),
}

impl WriteBuf {
    fn as_bytes(&self) -> &[u8] {
        match self {
            WriteBuf::Shared(b) => b,
            WriteBuf::Owned(b) => b,
        }
    }
}

/// Reactor-owned metrics (registered on the engine's registry so they
/// ride the existing `METRICS` surface).
struct Metrics {
    sessions: Arc<Gauge>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
}

impl Metrics {
    fn new(obs: &EngineObs) -> Metrics {
        let r = obs.registry();
        Metrics {
            sessions: r.gauge(
                "datacell_reactor_sessions",
                "binary-mode connections currently driven by the reactor",
            ),
            cache_hits: r.counter(
                "datacell_reactor_frame_cache_hits_total",
                "CHUNK frames served from the encode-once cache",
            ),
            cache_misses: r.counter(
                "datacell_reactor_frame_cache_misses_total",
                "CHUNK frames encoded fresh (first delivery to any subscriber)",
            ),
        }
    }
}

/// Immutable context threaded through the per-connection handlers.
struct Ctx<'a> {
    shared: &'a Arc<SharedState>,
    obs: &'a Arc<EngineObs>,
    metrics: &'a Metrics,
}

/// One reactor-driven connection.
struct Conn {
    stream: TcpStream,
    rbuf: FrameBuf,
    wq: VecDeque<WriteBuf>,
    /// Byte offset into the front write buffer.
    wpos: usize,
    /// Total unsent bytes queued across `wq` (backpressure accounting).
    queued: usize,
    mode: Mode,
    stats: SessionStats,
    last_input: Instant,
    last_write_progress: Instant,
    /// Whether the poller is currently armed for writability.
    armed_writable: bool,
    /// Graceful close requested: drain the write queue, then close.
    closing: bool,
    /// Hard close: tear down at the next reap, queue and all.
    dead: bool,
}

impl Conn {
    fn new(handoff: BinaryHandoff) -> Conn {
        let now = Instant::now();
        let mut rbuf = FrameBuf::new();
        rbuf.push_bytes(&handoff.leftover);
        Conn {
            stream: handoff.stream,
            rbuf,
            wq: VecDeque::new(),
            wpos: 0,
            queued: 0,
            mode: Mode::Command,
            stats: handoff.stats,
            last_input: now,
            last_write_progress: now,
            armed_writable: false,
            closing: false,
            dead: false,
        }
    }

    fn enqueue(&mut self, buf: WriteBuf) {
        self.queued += buf.as_bytes().len();
        self.wq.push_back(buf);
    }

    /// Queue a reply line as one TEXT frame (frames are queued whole —
    /// never interleaved with chunk frames).
    fn reply_text(&mut self, s: &str) {
        self.enqueue(WriteBuf::Owned(encode_text(s)));
    }
}

/// Outcome of one readiness-driven read pass.
enum ReadOutcome {
    /// Read what was available (possibly nothing).
    Progress,
    /// Peer closed its write side.
    Eof,
    /// Unrecoverable socket error — tear the connection down.
    Dead,
}

/// The reactor thread body: adopt handoffs, poll, dispatch, repeat —
/// until shutdown, then drain.
pub(crate) fn reactor_loop(shared: &Arc<SharedState>, obs: &Arc<EngineObs>) {
    let metrics = Metrics::new(obs);
    let ctx = Ctx { shared, obs, metrics: &metrics };
    let Ok(poller) = Poller::new() else {
        // No epoll: binary mode is unavailable; reject handoffs so their
        // stats still fold and clients see a closed socket.
        while !shared.is_shutdown() {
            for h in shared.take_handoffs() {
                shared.stats.fold_session(&h.stats);
            }
            std::thread::sleep(TICK);
        }
        return;
    };
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key: usize = 0;
    let mut events = Events::new();

    while !shared.is_shutdown() {
        adopt(&ctx, &poller, &mut conns, &mut next_key);
        events.clear();
        if poller.wait(&mut events, Some(TICK)).is_err() {
            std::thread::sleep(TICK);
        }
        let fired: HashSet<usize> = events.iter().map(|e| e.key).collect();
        for &key in &fired {
            if let Some(conn) = conns.get_mut(&key) {
                handle_event(&ctx, conn);
            }
        }
        service_all(&ctx, &mut conns);
        rearm(&poller, &mut conns, &fired);
        reap(&ctx, &poller, &mut conns);
    }
    final_drain(&ctx, &poller, &mut conns, &mut next_key);
}

/// Adopt every parked handoff: register with the poller and process any
/// frames the client pipelined behind the `HELLO` line (no readiness
/// event will ever fire for bytes already in userspace).
fn adopt(
    ctx: &Ctx<'_>,
    poller: &Poller,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
) {
    for handoff in ctx.shared.take_handoffs() {
        let key = *next_key;
        *next_key += 1;
        let mut conn = Conn::new(handoff);
        if poller.add(&conn.stream, Event { key, readable: true, writable: false }).is_err() {
            ctx.shared.stats.fold_session(&conn.stats);
            continue;
        }
        ctx.metrics.sessions.add(1);
        process_frames(ctx, &mut conn);
        flush(ctx, &mut conn);
        conns.insert(key, conn);
    }
}

/// One readiness event: pull bytes, process complete frames, flush.
fn handle_event(ctx: &Ctx<'_>, conn: &mut Conn) {
    if conn.dead {
        return;
    }
    match read_some(ctx, conn) {
        ReadOutcome::Progress => {}
        ReadOutcome::Eof => {
            // Half-close friendly: act on everything already received,
            // let the replies drain, then close.
            process_frames(ctx, conn);
            conn.closing = true;
        }
        ReadOutcome::Dead => {
            conn.dead = true;
            return;
        }
    }
    process_frames(ctx, conn);
    flush(ctx, conn);
}

/// Non-blocking read pass, bounded per event for fairness.
fn read_some(ctx: &Ctx<'_>, conn: &mut Conn) -> ReadOutcome {
    let mut rounds = 0;
    let mut buf = [0u8; READ_BUF];
    loop {
        if rounds >= READ_ROUNDS {
            return ReadOutcome::Progress;
        }
        let mut cap = READ_BUF;
        match ctx.shared.faults.check(FaultPoint::SocketRead) {
            None => {}
            // An injected stall skips this readiness pass entirely.
            Some(FaultKind::Stall) => return ReadOutcome::Progress,
            // A short read: a single byte reaches the frame buffer.
            Some(FaultKind::ShortWrite) => cap = 1,
            Some(FaultKind::Eio) | Some(FaultKind::Enospc) => return ReadOutcome::Dead,
        }
        match conn.stream.read(&mut buf[..cap]) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => {
                conn.rbuf.push_bytes(&buf[..n]);
                conn.last_input = Instant::now();
                rounds += 1;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return ReadOutcome::Progress,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Dead,
        }
    }
}

/// Drain every complete frame out of the reassembly buffer.
fn process_frames(ctx: &Ctx<'_>, conn: &mut Conn) {
    loop {
        if conn.closing || conn.dead {
            return;
        }
        match conn.rbuf.next_frame() {
            Ok(None) => return,
            Ok(Some((tag, payload))) => match decode_frame(tag, &payload) {
                // The frame boundary held, only the payload is bad:
                // answer ERR and stay in sync (same recovery contract as
                // an unparseable text line).
                Err(e) => reply_err(ctx, conn, &e.0),
                Ok(frame) => handle_frame(ctx, conn, frame),
            },
            Err(e) => {
                // Framing itself is broken (oversize length, unknown
                // tag): no resync point exists — report and hang up.
                reply_err(ctx, conn, &e.0);
                conn.closing = true;
                return;
            }
        }
    }
}

/// Dispatch one decoded frame according to the connection's mode.
fn handle_frame(ctx: &Ctx<'_>, conn: &mut Conn, frame: Frame) {
    match frame {
        Frame::Text(line) => {
            if line.trim().is_empty() {
                return;
            }
            conn.stats.commands += 1;
            ctx.shared.stats.commands.fetch_add(1, Ordering::Relaxed);
            match parse_command(&line) {
                Ok(cmd) => dispatch(ctx, conn, cmd),
                Err(e) => reply_err(ctx, conn, &e.0),
            }
        }
        Frame::Push { stream, chunk } => {
            if matches!(conn.mode, Mode::Streaming { .. }) {
                reply_err(ctx, conn, "only STOP is accepted while subscribed");
                return;
            }
            conn.stats.commands += 1;
            ctx.shared.stats.commands.fetch_add(1, Ordering::Relaxed);
            push_chunk(ctx, conn, &stream, &chunk);
        }
        Frame::Chunk { .. } => {
            reply_err(ctx, conn, "CHUNK frames flow server to client only");
        }
    }
}

/// Command dispatch, mirroring the text session's replies so the two
/// modes stay observationally equivalent.
fn dispatch(ctx: &Ctx<'_>, conn: &mut Conn, cmd: Command) {
    if let Mode::Streaming { .. } = conn.mode {
        match cmd {
            Command::Stop => end_stream(ctx, conn),
            _ => reply_err(ctx, conn, "only STOP is accepted while subscribed"),
        }
        return;
    }
    match cmd {
        Command::Hello(_) => {
            reply_err(ctx, conn, "HELLO is only valid in text mode (already negotiated)")
        }
        Command::Schema(stream) => {
            let schema = ctx.shared.lock_engine().catalog().schema_of(&stream);
            match schema {
                Ok(s) => {
                    let mut bytes = Vec::new();
                    datacell_storage::binio::encode_schema(&mut bytes, &s);
                    conn.reply_text(&format!(
                        "OK SCHEMA {stream} {}\n",
                        crate::protocol::encode_hex(&bytes)
                    ));
                }
                Err(e) => reply_engine_err(ctx, conn, &EngineError::from(e)),
            }
        }
        Command::Ping => conn.reply_text("PONG\n"),
        Command::Quit => {
            conn.reply_text("OK BYE\n");
            conn.closing = true;
        }
        Command::Shutdown => {
            ctx.shared.request_shutdown();
            conn.reply_text("OK SHUTDOWN\n");
            conn.closing = true;
        }
        Command::Stop => reply_err(ctx, conn, "STOP is only valid while subscribed"),
        Command::Exec(sql) => exec(ctx, conn, &sql),
        Command::Register { sql, mode } => {
            let registered = {
                let mut engine = ctx.shared.lock_engine();
                match mode {
                    Some(m) => engine.register_query_with_mode(&sql, m),
                    None => engine.register_query(&sql),
                }
            };
            match registered {
                Ok(id) => {
                    ctx.shared.notify_work();
                    conn.reply_text(&format!("OK QUERY {id}\n"));
                }
                Err(e) => reply_err(ctx, conn, &e.to_string()),
            }
        }
        Command::Deregister(id) => {
            let res = ctx.shared.lock_engine().deregister_query(id);
            match res {
                Ok(()) => conn.reply_text(&format!("OK DEREGISTERED {id}\n")),
                Err(e) => reply_err(ctx, conn, &e.to_string()),
            }
        }
        Command::Push(_) => reply_err(
            ctx,
            conn,
            "text PUSH is not available in binary mode; send a PUSH frame",
        ),
        Command::Subscribe { query, limit, after } => subscribe(ctx, conn, query, limit, after),
        Command::Stats => stats_report(ctx, conn, false),
        Command::StatsDetail => stats_report(ctx, conn, true),
        Command::Metrics => {
            let text = ctx.shared.lock_engine().metrics_text();
            reply_framed(conn, "METRICS", text);
        }
        Command::ExplainAnalyze(id) => {
            let rendered = ctx.shared.lock_engine().explain_analyze(id);
            match rendered {
                Ok(text) => reply_framed(conn, "ANALYZE", text),
                Err(e) => reply_err(ctx, conn, &e.to_string()),
            }
        }
        Command::TraceDump(n) => {
            let events = ctx.shared.lock_engine().trace_events(n);
            let mut body = String::new();
            for e in &events {
                body.push_str(&format!(
                    "#{} +{}us {} {}\n",
                    e.seq,
                    e.at_us,
                    e.kind,
                    e.detail.replace(['\n', '\r'], "; ")
                ));
            }
            reply_framed(conn, "TRACE", body);
        }
    }
}

fn exec(ctx: &Ctx<'_>, conn: &mut Conn, sql: &str) {
    let outcome = {
        let mut engine = ctx.shared.lock_engine();
        let outcome = engine.execute(sql);
        // Ingest-synchronous semantics, same as the text session: results
        // of an INSERT are on subscriber queues before the reply.
        if matches!(outcome, Ok(ExecOutcome::Inserted(_))) {
            engine.run_until_idle().ok();
        }
        outcome
    };
    match outcome {
        Ok(ExecOutcome::Created(name)) => conn.reply_text(&format!("OK CREATED {name}\n")),
        Ok(ExecOutcome::Dropped(name)) => conn.reply_text(&format!("OK DROPPED {name}\n")),
        Ok(ExecOutcome::Inserted(n)) => {
            count_pushed(ctx, conn, n as u64);
            ctx.shared.notify_work();
            conn.reply_text(&format!("OK INSERTED {n}\n"));
        }
        Ok(ExecOutcome::Rows { names, chunk }) => {
            let mut reply = format!("ROWS {} {}\n", chunk.len(), encode_names(&names));
            for row in chunk.rows() {
                reply.push_str(&encode_row(&row));
                reply.push('\n');
            }
            conn.reply_text(&reply);
        }
        Err(e) => reply_engine_err(ctx, conn, &e),
    }
}

/// Binary ingest: the whole batch arrived in one `PUSH` frame as typed
/// columns — append the chunk wholesale (no row materialization; the
/// basket's columnar schema gate rejects ragged or mistyped chunks),
/// evaluate to quiescence, ack.
fn push_chunk(ctx: &Ctx<'_>, conn: &mut Conn, stream: &str, chunk: &datacell_storage::Chunk) {
    let pushed = {
        let mut engine = ctx.shared.lock_engine();
        match engine.push_chunk(stream, chunk) {
            Ok(n) => {
                engine.run_until_idle().ok();
                Ok(n)
            }
            Err(e) => Err(e),
        }
    };
    match pushed {
        Ok(n) => {
            count_pushed(ctx, conn, n as u64);
            ctx.shared.notify_work();
            conn.reply_text(&format!("OK PUSHED {n}\n"));
        }
        Err(e) => reply_engine_err(ctx, conn, &e),
    }
}

fn subscribe(
    ctx: &Ctx<'_>,
    conn: &mut Conn,
    query: u64,
    limit: Option<u64>,
    after: Option<(u64, u64)>,
) {
    let names = {
        let engine = ctx.shared.lock_engine();
        engine.output_names(query)
    };
    let names = match names {
        Ok(n) => n,
        Err(e) => return reply_engine_err(ctx, conn, &e),
    };
    let cursor = match ctx.shared.attach_subscriber(query, after) {
        Ok((cursor, _next_seq)) => cursor,
        Err(e) => return reply_engine_err(ctx, conn, &e),
    };
    conn.reply_text(&format!(
        "OK SUBSCRIBED {query} {} {} {}\n",
        ctx.shared.epoch,
        cursor + 1,
        encode_names(&names)
    ));
    conn.mode = Mode::Streaming { query, limit, cursor, chunks: 0, rows: 0 };
}

/// Stream end (STOP / limit / ring closed / connection teardown): fold
/// the per-stream counters, announce `OK STOPPED`, return to command
/// mode.
fn end_stream(ctx: &Ctx<'_>, conn: &mut Conn) {
    if let Mode::Streaming { chunks, rows, .. } = conn.mode {
        conn.stats.chunks_delivered += chunks;
        conn.stats.rows_delivered += rows;
        ctx.shared.stats.chunks_delivered.fetch_add(chunks, Ordering::Relaxed);
        ctx.shared.stats.rows_delivered.fetch_add(rows, Ordering::Relaxed);
        conn.reply_text(&format!("OK STOPPED {chunks} {rows}\n"));
        conn.mode = Mode::Command;
        conn.last_input = Instant::now();
    }
}

/// Pull wire-ready chunk frames from the replay ring into the write
/// queue, respecting the limit and the backpressure high-water mark.
fn fill_streaming(ctx: &Ctx<'_>, conn: &mut Conn) {
    let mut stamps: Vec<Instant> = Vec::new();
    while let Mode::Streaming { query, limit, cursor, chunks, rows } = conn.mode {
        if limit.is_some_and(|l| chunks >= l) {
            end_stream(ctx, conn);
            break;
        }
        if conn.queued >= HIGH_WATER {
            break;
        }
        let budget = match limit {
            Some(l) => ((l - chunks) as usize).min(FILL_BATCH),
            None => FILL_BATCH,
        };
        let (batch, closed) = ctx.shared.fetch_ring_frames(query, cursor, budget);
        if batch.is_empty() {
            if closed {
                end_stream(ctx, conn);
            }
            break;
        }
        let mut cursor = cursor;
        let mut chunks = chunks;
        let mut rows = rows;
        for d in batch {
            if d.cached {
                ctx.metrics.cache_hits.inc();
            } else {
                ctx.metrics.cache_misses.inc();
            }
            cursor = d.seq;
            chunks += 1;
            rows += d.rows;
            if let Some(arrived) = d.stamp {
                stamps.push(arrived);
            }
            conn.enqueue(WriteBuf::Shared(d.bytes));
        }
        conn.mode = Mode::Streaming { query, limit, cursor, chunks, rows };
    }
    if !stamps.is_empty() {
        // Hand the bytes to the socket before closing the latency chain:
        // first deliveries normally leave userspace within this flush.
        flush(ctx, conn);
        for arrived in stamps {
            let us = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
            ctx.obs.record_wire_delivery_us(us);
        }
    }
}

/// Write queued buffers until the socket blocks, strictly in order.
fn flush(ctx: &Ctx<'_>, conn: &mut Conn) {
    if conn.dead {
        return;
    }
    while let Some(front) = conn.wq.front() {
        let bytes = front.as_bytes();
        if conn.wpos >= bytes.len() {
            conn.wq.pop_front();
            conn.wpos = 0;
            continue;
        }
        let mut cap = bytes.len() - conn.wpos;
        match ctx.shared.faults.check(FaultPoint::SocketWrite) {
            None => {}
            // Stall: pretend the socket blocked; retry next tick.
            Some(FaultKind::Stall) => return,
            Some(FaultKind::ShortWrite) => cap = 1,
            Some(FaultKind::Eio) | Some(FaultKind::Enospc) => {
                conn.dead = true;
                return;
            }
        }
        let end = conn.wpos + cap;
        match conn.stream.write(&bytes[conn.wpos..end]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => {
                conn.wpos += n;
                conn.queued = conn.queued.saturating_sub(n);
                conn.last_write_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Per-tick service pass over every connection: fill streaming queues,
/// flush, enforce the write-progress and idle deadlines.
fn service_all(ctx: &Ctx<'_>, conns: &mut HashMap<usize, Conn>) {
    let now = Instant::now();
    for conn in conns.values_mut() {
        if conn.dead {
            continue;
        }
        if !conn.closing && matches!(conn.mode, Mode::Streaming { .. }) {
            fill_streaming(ctx, conn);
        }
        flush(ctx, conn);
        if !conn.wq.is_empty() {
            if let Some(t) = ctx.shared.tuning.write_timeout {
                if now.duration_since(conn.last_write_progress) > t {
                    // Wedged client: no byte left userspace within the
                    // deadline. Killing the connection (not the frame)
                    // keeps the stream splice-free.
                    conn.dead = true;
                    continue;
                }
            }
        }
        if !conn.closing && matches!(conn.mode, Mode::Command) {
            if let Some(t) = ctx.shared.tuning.idle_timeout {
                if now.duration_since(conn.last_input) > t {
                    conn.reply_text("ERR idle session reaped\n");
                    conn.closing = true;
                }
            }
        }
    }
}

/// Re-arm oneshot interest: every connection whose event fired is
/// disarmed and must be re-registered; others only when their desired
/// writability changed (queue went empty ↔ non-empty).
fn rearm(poller: &Poller, conns: &mut HashMap<usize, Conn>, fired: &HashSet<usize>) {
    for (key, conn) in conns.iter_mut() {
        if conn.dead {
            continue;
        }
        let want_write = !conn.wq.is_empty();
        if fired.contains(key) || want_write != conn.armed_writable {
            let ev = Event { key: *key, readable: true, writable: want_write };
            if poller.modify(&conn.stream, ev).is_err() {
                conn.dead = true;
                continue;
            }
            conn.armed_writable = want_write;
        }
    }
}

/// Remove finished connections: hard-dead ones immediately, gracefully
/// closing ones once their write queue drained.
fn reap(ctx: &Ctx<'_>, poller: &Poller, conns: &mut HashMap<usize, Conn>) {
    let done: Vec<usize> = conns
        .iter()
        .filter(|(_, c)| c.dead || (c.closing && c.wq.is_empty()))
        .map(|(k, _)| *k)
        .collect();
    for key in done {
        if let Some(conn) = conns.remove(&key) {
            close_conn(ctx, poller, conn);
        }
    }
}

/// Tear one connection down, folding its counters server-wide.
fn close_conn(ctx: &Ctx<'_>, poller: &Poller, mut conn: Conn) {
    if let Mode::Streaming { chunks, rows, .. } = conn.mode {
        // Died mid-stream: the per-stream counters still count.
        conn.stats.chunks_delivered += chunks;
        conn.stats.rows_delivered += rows;
        ctx.shared.stats.chunks_delivered.fetch_add(chunks, Ordering::Relaxed);
        ctx.shared.stats.rows_delivered.fetch_add(rows, Ordering::Relaxed);
    }
    let _ = poller.delete(&conn.stream);
    ctx.metrics.sessions.add(-1);
    ctx.shared.stats.fold_session(&conn.stats);
}

/// Shutdown: give every streaming connection its final ring drain and
/// `OK STOPPED`, then flush best-effort within a bounded budget and
/// close everything.
fn final_drain(
    ctx: &Ctx<'_>,
    poller: &Poller,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
) {
    // Late handoffs still need their stats folded (and a fair goodbye);
    // adopt() also processes any frames they pipelined.
    adopt(ctx, poller, conns, next_key);
    for conn in conns.values_mut() {
        if conn.dead {
            continue;
        }
        if matches!(conn.mode, Mode::Streaming { .. }) {
            // The engine closed every tap; drain what the rings retain.
            fill_streaming(ctx, conn);
            end_stream(ctx, conn);
        }
    }
    let deadline = Instant::now() + DRAIN_BUDGET;
    loop {
        let mut pending = false;
        for conn in conns.values_mut() {
            if conn.dead {
                continue;
            }
            flush(ctx, conn);
            pending |= !conn.wq.is_empty();
        }
        if !pending || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    for (_, conn) in conns.drain() {
        close_conn(ctx, poller, conn);
    }
}

fn count_pushed(ctx: &Ctx<'_>, conn: &mut Conn, n: u64) {
    conn.stats.rows_pushed += n;
    ctx.shared.stats.rows_pushed.fetch_add(n, Ordering::Relaxed);
}

fn reply_err(ctx: &Ctx<'_>, conn: &mut Conn, msg: &str) {
    conn.stats.errors += 1;
    ctx.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
    conn.reply_text(&err_line(msg));
}

/// Engine failures: overload sheds get the retryable `OVERLOADED` line,
/// everything else a plain `ERR` — identical to the text session.
fn reply_engine_err(ctx: &Ctx<'_>, conn: &mut Conn, e: &EngineError) {
    if let EngineError::Overloaded { retry_after_ms } = e {
        conn.stats.errors += 1;
        ctx.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        conn.reply_text(&format!("OVERLOADED {retry_after_ms}\n"));
        return;
    }
    reply_err(ctx, conn, &e.to_string());
}

/// Multi-line report framed as `<tag> <line-count>` (one TEXT frame).
fn reply_framed(conn: &mut Conn, tag: &str, mut body: String) {
    if !body.is_empty() && !body.ends_with('\n') {
        body.push('\n');
    }
    let lines = body.lines().count();
    conn.reply_text(&format!("{tag} {lines}\n{body}"));
}

/// The `STATS` / `STATS DETAIL` report, binary edition — same sections
/// as the text session, with this connection's own counters at the end.
fn stats_report(ctx: &Ctx<'_>, conn: &mut Conn, detail: bool) {
    let (engine_report, uptime) = {
        let engine = ctx.shared.lock_engine();
        let text = if detail { engine.stats_detail() } else { engine.stats().render() };
        (text, engine.uptime())
    };
    let mut report = engine_report;
    report.push_str(&format!("uptime: {:.1}s\n", uptime.as_secs_f64()));
    report.push_str(&ctx.shared.stats.render());
    report.push_str(&format!(
        "== session ==\n\
         commands: {} ({} errors)\n\
         ingest: {} rows pushed\n\
         egress: {} chunks / {} rows delivered\n",
        conn.stats.commands,
        conn.stats.errors,
        conn.stats.rows_pushed,
        conn.stats.chunks_delivered,
        conn.stats.rows_delivered,
    ));
    reply_framed(conn, "STATS", report);
}
