//! # datacell-server
//!
//! The TCP frontend of the DataCell engine: the paper's "bridges to the
//! outside world" (§3) made real. Receptors and emitters stop being
//! in-process iterator/channel adapters and become **sockets**:
//!
//! * a `PUSH` block is a **socket receptor** — rows flow off the wire
//!   into a stream's basket in one batch: CSV lines on a text session,
//!   one columnar `PUSH` frame on a binary one;
//! * a `SUBSCRIBE`d connection is an **emitter** — result chunks stream
//!   back to the client with bounded-queue backpressure (drop-oldest, see
//!   `DataCellConfig::emitter_capacity`).
//!
//! Every connection starts in the line-oriented text protocol; a client
//! may upgrade with `HELLO BINARY 1`, after which both directions speak
//! length-prefixed frames (see [`frame`]) — result chunks are then
//! encoded **once** per (query, seq) and the same bytes fan out to every
//! binary subscriber.
//!
//! Layering (each unit-testable below the sockets):
//!
//! * [`protocol`] — line-oriented wire grammar: framing, CSV value
//!   encoding, command parsing. No I/O.
//! * [`frame`] — the binary wire grammar: tagged length-prefixed frames
//!   (TEXT / CHUNK / PUSH) and the incremental [`FrameBuf`] cutter. No
//!   I/O either.
//! * [`replay`] — per-query retained result tails with delivery sequence
//!   numbers, powering reconnect-with-resume (`SUBSCRIBE … AFTER`).
//! * [`session`] — one thread per connection: command dispatch and the
//!   streaming (subscription) mode for text sessions.
//! * [`reactor`] — the readiness-based driver for binary sessions: one
//!   thread, an epoll poller (`vendor/polling`), per-session write queues
//!   with high-water backpressure, and the encode-once frame cache. Text
//!   sessions that negotiate `HELLO BINARY` are handed off here.
//! * [`server`] — the listener, the shared engine behind a mutex, the
//!   scheduler pump thread, graceful shutdown, server-wide stats.
//! * [`client`] — a blocking client for tests, the CLI and load
//!   generators; speaks both modes ([`Client::connect_binary`]).
//!
//! Binaries: `datacell-server` (the daemon) and `datacell-cli`
//! (interactive/scripted session, `--binary` for framed mode).
//!
//! ```
//! use datacell_server::{Client, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! // Subscriptions deliver *future* results, so subscribe (connection A)
//! // before pushing (connection B).
//! let mut a = Client::connect(server.local_addr()).unwrap();
//! a.exec("CREATE STREAM s (v BIGINT)").unwrap();
//! let q = a.register("SELECT COUNT(*) FROM s").unwrap();
//! let mut sub = a.subscribe(q, Some(1)).unwrap();
//!
//! let mut b = Client::connect(server.local_addr()).unwrap();
//! b.push_rows("s", &[vec![1i64.into()], vec![2i64.into()]]).unwrap();
//!
//! let chunk = sub.next_chunk(std::time::Duration::from_secs(10)).unwrap();
//! assert_eq!(chunk.unwrap()[0], vec![2i64.into()]);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod protocol;
pub mod reactor;
pub mod replay;
pub mod server;
pub mod session;

pub use client::{
    Client, ClientError, ExecReply, ReconnectPolicy, ResumingSubscription, Subscription,
};
pub use frame::{Frame, FrameBuf, FrameTag};
pub use protocol::{Command, ProtocolError};
pub use replay::ReplayRing;
pub use server::{Server, ServerConfig, ServerStats};
pub use session::SessionStats;
