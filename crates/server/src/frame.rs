//! Binary wire frames: the length-prefixed columnar protocol negotiated
//! by `HELLO BINARY <version>` — no sockets here, so every rule is
//! unit-testable (the binary counterpart of [`crate::protocol`]).
//!
//! After the text handshake (`HELLO BINARY 1` → `OK HELLO BINARY 1`)
//! **both** directions switch to frames:
//!
//! ```text
//! frame   := tag:u8 len:u32le payload[len]        (len ≤ 16 MiB)
//!
//! tag 0x00 TEXT   payload = UTF-8 text.
//!                 client → server: one command line (old grammar);
//!                 server → client: reply line(s), incl. framed reports.
//! tag 0x01 CHUNK  payload = query:u64 seq:u64 binio::encode_chunk
//!                 server → client only: one result chunk, columnar.
//! tag 0x02 PUSH   payload = stream:str(u32-prefixed) binio::encode_batch
//!                 client → server only: bulk ingest, columnar.
//! ```
//!
//! `CHUNK` payloads are what the server's encode-once cache stores: the
//! bytes embed only (query, seq) — both stable across subscribers — so a
//! single encoding fans out to every subscriber of the query.
//!
//! Decoding is *total*: truncated or bit-flipped input yields an error
//! (never a panic, never an unbounded allocation — lengths are capped by
//! [`binio::MAX_FRAME_LEN`] before any buffering). A frame whose length
//! field is past the cap is fatal for the connection: resync inside a
//! binary stream is impossible once a length can't be trusted.

use datacell_storage::binio::{self, ByteReader};
use datacell_storage::{Chunk, Row, Schema, StorageError};

use crate::protocol::ProtocolError;

fn err(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

fn from_storage(e: StorageError) -> ProtocolError {
    ProtocolError(e.to_string())
}

/// Discriminant of one wire frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameTag {
    /// UTF-8 text payload (command line or reply lines).
    Text,
    /// One result chunk: query id, delivery seq, columnar body.
    Chunk,
    /// Bulk ingest: stream name, columnar row batch.
    Push,
}

/// Stable wire byte of a [`FrameTag`].
pub fn tag_byte(tag: FrameTag) -> u8 {
    match tag {
        FrameTag::Text => 0x00,
        FrameTag::Chunk => 0x01,
        FrameTag::Push => 0x02,
    }
}

/// Inverse of [`tag_byte`].
pub fn tag_from_byte(b: u8) -> Result<FrameTag, ProtocolError> {
    match b {
        0x00 => Ok(FrameTag::Text),
        0x01 => Ok(FrameTag::Chunk),
        0x02 => Ok(FrameTag::Push),
        other => Err(err(format!("unknown frame tag {other:#04x}"))),
    }
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Text payload (a command line, or server reply lines).
    Text(String),
    /// A result chunk with its delivery position.
    Chunk {
        /// Query id the chunk belongs to.
        query: u64,
        /// Per-query delivery sequence number (the resume cursor).
        seq: u64,
        /// The columnar result rows.
        chunk: Chunk,
    },
    /// A columnar ingest batch for one stream. The payload decodes
    /// straight into a [`Chunk`] (one typed buffer per column, values
    /// already coerced to the encoder's schema) so the server can append
    /// it column-wise without ever materializing rows.
    Push {
        /// Target stream name.
        stream: String,
        /// The columnar ingest batch.
        chunk: Chunk,
    },
}

// ---- encoding ---------------------------------------------------------

/// Encode a TEXT frame. `text` may hold multiple `\n`-separated lines
/// (server-side framed reports travel as one frame).
pub fn encode_text(text: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(binio::FRAME_HEADER_LEN + text.len());
    // Infallible: a text payload under the cap always frames; oversized
    // reports are a server bug surfaced as a closed connection.
    if binio::put_frame(&mut buf, tag_byte(FrameTag::Text), text.as_bytes()).is_err() {
        buf.clear();
    }
    buf
}

/// Encode a CHUNK frame — header and payload in one allocation. These are
/// the bytes the encode-once cache retains and every subscriber shares.
pub fn encode_chunk_frame(query: u64, seq: u64, chunk: &Chunk) -> Result<Vec<u8>, ProtocolError> {
    let mut buf = Vec::new();
    let start = binio::begin_frame(&mut buf, tag_byte(FrameTag::Chunk));
    binio::put_u64(&mut buf, query);
    binio::put_u64(&mut buf, seq);
    binio::encode_chunk(&mut buf, chunk);
    binio::end_frame(&mut buf, start).map_err(from_storage)?;
    Ok(buf)
}

/// Encode a PUSH frame for `rows` against the stream's schema.
pub fn encode_push_frame(
    stream: &str,
    schema: &Schema,
    rows: &[Row],
) -> Result<Vec<u8>, ProtocolError> {
    let mut buf = Vec::new();
    let start = binio::begin_frame(&mut buf, tag_byte(FrameTag::Push));
    binio::put_str(&mut buf, stream);
    binio::encode_batch(&mut buf, schema, rows);
    binio::end_frame(&mut buf, start).map_err(from_storage)?;
    Ok(buf)
}

// ---- decoding ---------------------------------------------------------

/// Decode one frame body (tag already split off by the reader). Total:
/// any byte sequence yields `Ok` or a clean error.
pub fn decode_frame(tag: u8, payload: &[u8]) -> Result<Frame, ProtocolError> {
    match tag_from_byte(tag)? {
        FrameTag::Text => String::from_utf8(payload.to_vec())
            .map(Frame::Text)
            .map_err(|_| err("TEXT frame is not valid UTF-8")),
        FrameTag::Chunk => {
            let mut r = ByteReader::new(payload);
            let query = r.u64().map_err(from_storage)?;
            let seq = r.u64().map_err(from_storage)?;
            let chunk = binio::decode_chunk(&mut r).map_err(from_storage)?;
            if !r.is_empty() {
                return Err(err("trailing bytes after CHUNK payload"));
            }
            Ok(Frame::Chunk { query, seq, chunk })
        }
        FrameTag::Push => {
            let mut r = ByteReader::new(payload);
            let stream = r.str().map_err(from_storage)?;
            let chunk = binio::decode_batch_chunk(&mut r).map_err(from_storage)?;
            if !r.is_empty() {
                return Err(err("trailing bytes after PUSH payload"));
            }
            Ok(Frame::Push { stream, chunk })
        }
    }
}

// ---- incremental reader -----------------------------------------------

/// Byte-stream accumulator that cuts whole frames out of arbitrary read
/// chunks (the frame-mode analogue of the session's `LineReader`, minus
/// the socket).
///
/// Usage: [`FrameBuf::push_bytes`] whatever the socket produced, then
/// loop [`FrameBuf::peek`] / [`FrameBuf::consume`] until `peek` returns
/// `None` (incomplete frame — read more).
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    pos: usize,
}

/// Compact the buffer once this many consumed bytes accumulate.
const COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameBuf {
    /// An empty accumulator.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Append bytes read from the peer.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed byte count.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True iff no partial frame is pending (a clean point to close).
    pub fn is_empty(&self) -> bool {
        self.buffered() == 0
    }

    /// The next whole frame, if one is fully buffered: `(tag, payload)`.
    /// `Ok(None)` means read more bytes. An error (bad tag byte is left
    /// to [`decode_frame`]; this reports only untrusted lengths) is
    /// fatal — the stream cannot be resynced.
    pub fn peek(&self) -> Result<Option<(u8, &[u8])>, ProtocolError> {
        let pending = &self.buf[self.pos..];
        match binio::peek_frame_header(pending).map_err(from_storage)? {
            None => Ok(None),
            Some((tag, len)) => match pending.get(binio::FRAME_HEADER_LEN..binio::FRAME_HEADER_LEN + len) {
                Some(payload) => Ok(Some((tag, payload))),
                None => Ok(None),
            },
        }
    }

    /// Drop the frame last returned by [`FrameBuf::peek`]. No-op when no
    /// whole frame is buffered.
    pub fn consume(&mut self) {
        if let Ok(Some((_, payload))) = self.peek() {
            self.pos += binio::FRAME_HEADER_LEN + payload.len();
        }
    }

    /// Owned convenience: cut and return the next whole frame.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, ProtocolError> {
        match self.peek()? {
            None => Ok(None),
            Some((tag, payload)) => {
                let owned = payload.to_vec();
                self.pos += binio::FRAME_HEADER_LEN + owned.len();
                Ok(Some((tag, owned)))
            }
        }
    }

    fn compact(&mut self) {
        if self.pos >= COMPACT_THRESHOLD || self.pos == self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_storage::{Bat, DataType, Value};

    fn sample_chunk() -> Chunk {
        Chunk::new(vec![
            Bat::from_ints(vec![1, 2]),
            Bat::from_floats(vec![0.5, -0.0]),
        ])
        .unwrap()
    }

    #[test]
    fn tag_bytes_are_stable() {
        for tag in [FrameTag::Text, FrameTag::Chunk, FrameTag::Push] {
            assert_eq!(tag_from_byte(tag_byte(tag)).unwrap(), tag);
        }
        assert!(tag_from_byte(0x7f).is_err());
    }

    #[test]
    fn text_frame_roundtrip() {
        let bytes = encode_text("PING");
        let (tag, payload) = {
            let mut fb = FrameBuf::new();
            fb.push_bytes(&bytes);
            fb.next_frame().unwrap().unwrap()
        };
        assert_eq!(decode_frame(tag, &payload).unwrap(), Frame::Text("PING".into()));
    }

    #[test]
    fn chunk_frame_roundtrip() {
        let chunk = sample_chunk();
        let bytes = encode_chunk_frame(7, 31, &chunk).unwrap();
        let mut fb = FrameBuf::new();
        fb.push_bytes(&bytes);
        let (tag, payload) = fb.next_frame().unwrap().unwrap();
        assert_eq!(
            decode_frame(tag, &payload).unwrap(),
            Frame::Chunk { query: 7, seq: 31, chunk }
        );
        assert!(fb.is_empty());
    }

    #[test]
    fn push_frame_roundtrip() {
        let schema = Schema::of(&[("v", DataType::Int), ("s", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::Str("a".into())],
            vec![Value::Null, Value::Str(String::new())],
        ];
        let bytes = encode_push_frame("trades", &schema, &rows).unwrap();
        let mut fb = FrameBuf::new();
        fb.push_bytes(&bytes);
        let (tag, payload) = fb.next_frame().unwrap().unwrap();
        let Frame::Push { stream, chunk } = decode_frame(tag, &payload).unwrap() else {
            panic!("expected PUSH frame");
        };
        assert_eq!(stream, "trades");
        assert_eq!(chunk.rows().collect::<Vec<_>>(), rows);
        assert_eq!(chunk.columns()[0].data_type(), DataType::Int);
        assert_eq!(chunk.columns()[1].data_type(), DataType::Str);
    }

    #[test]
    fn frames_cut_across_arbitrary_read_boundaries() {
        let chunk = sample_chunk();
        let mut stream = encode_text("OK HELLO BINARY 1");
        stream.extend(encode_chunk_frame(1, 1, &chunk).unwrap());
        stream.extend(encode_chunk_frame(1, 2, &chunk).unwrap());
        // Feed one byte at a time: every frame must still come out whole.
        for step in [1usize, 2, 3, 7] {
            let mut fb = FrameBuf::new();
            let mut out = Vec::new();
            for piece in stream.chunks(step) {
                fb.push_bytes(piece);
                while let Some((tag, payload)) = fb.next_frame().unwrap() {
                    out.push(decode_frame(tag, &payload).unwrap());
                }
            }
            assert_eq!(out.len(), 3, "step {step}");
            assert_eq!(out[0], Frame::Text("OK HELLO BINARY 1".into()));
            assert!(matches!(&out[2], Frame::Chunk { seq: 2, .. }));
            assert!(fb.is_empty());
        }
    }

    #[test]
    fn corrupt_frames_fail_cleanly() {
        // Oversized length field: fatal error, no allocation.
        let mut fb = FrameBuf::new();
        fb.push_bytes(&[0x01, 0xff, 0xff, 0xff, 0xff]);
        assert!(fb.next_frame().is_err());

        // Unknown tag decodes to an error, not a panic.
        assert!(decode_frame(0x55, b"junk").is_err());

        // Truncations of a valid CHUNK payload all fail cleanly.
        let bytes = encode_chunk_frame(1, 1, &sample_chunk()).unwrap();
        let payload = &bytes[binio::FRAME_HEADER_LEN..];
        for cut in 0..payload.len() {
            assert!(decode_frame(0x01, &payload[..cut]).is_err(), "cut {cut}");
        }
        // Trailing junk is rejected too (a desynced stream must not be
        // silently accepted).
        let mut long = payload.to_vec();
        long.push(0);
        assert!(decode_frame(0x01, &long).is_err());

        // Non-UTF-8 TEXT payload.
        assert!(decode_frame(0x00, &[0xff, 0xfe]).is_err());
    }
}
