//! Per-connection sessions: one thread per client, command dispatch over
//! the shared engine, and the streaming (subscription) mode.
//!
//! A session alternates between two modes:
//!
//! * **command mode** — read a line, parse a [`Command`], dispatch it
//!   against the engine (held behind the server's mutex only for the
//!   duration of the command), write the reply;
//! * **streaming mode** — after `SUBSCRIBE`, the connection becomes an
//!   *emitter* (paper §3): result chunks are pumped from the query's
//!   server-side [`ReplayRing`](crate::replay::ReplayRing) to the socket
//!   as `CHUNK <id> <n> <seq>` frames until the client sends `STOP`, the
//!   chunk limit is reached, the subscription is closed engine-side, or
//!   the connection drops. The ring outlives the connection, so a client
//!   reconnecting with `SUBSCRIBE … AFTER <epoch> <seq>` resumes from its
//!   last delivered chunk.
//!
//! All socket reads go through [`LineReader`] with a short read timeout,
//! so every blocking point periodically rechecks the server's shutdown
//! flag and streaming sessions can poll the socket and the ring from a
//! single thread. Sessions also carry resilience deadlines (see
//! [`ServerConfig`](crate::ServerConfig)): idle command-mode sessions are
//! reaped, a `PUSH` block must reach `END` within its frame timeout, and
//! socket writes carry a deadline so a wedged client cannot pin the
//! thread.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use datacell_core::{EngineError, EngineObs, ExecOutcome};
use datacell_storage::{Chunk, Row};

use crate::protocol::{
    decode_typed_row, encode_chunk, encode_names, encode_row, err_line, parse_command,
    Command, PUSH_END,
};
use crate::server::SharedState;

/// Upper bound on one protocol line; longer input is a framing error.
const MAX_LINE: usize = 1 << 20;

/// Read timeout while waiting for the next command.
const COMMAND_POLL: Duration = Duration::from_millis(100);

/// Read/emitter poll interval while streaming.
const STREAM_POLL: Duration = Duration::from_millis(5);

/// Outcome of one [`LineReader::poll_line`] call.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadLine {
    /// A complete line (terminator stripped).
    Line(String),
    /// A line longer than the protocol limit. Its bytes were discarded
    /// (through the terminating newline), the stream stays in sync, and
    /// the session answers `ERR` instead of tearing the connection down.
    Overlong,
    /// Peer closed the connection.
    Eof,
    /// Nothing available within the read timeout.
    Idle,
}

/// Incremental line reader that survives read timeouts: bytes of a
/// partial line stay buffered across [`ReadLine::Idle`] returns, unlike
/// `BufRead::read_line` which can lose them into the caller's buffer.
pub struct LineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    scanned: usize,
    /// An oversize line is being skipped: drop bytes until its newline,
    /// then report [`ReadLine::Overlong`].
    discarding: bool,
}

impl<R: Read> LineReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> Self {
        LineReader { inner, buf: Vec::new(), scanned: 0, discarding: false }
    }

    fn take_line(&mut self, newline_at: usize) -> String {
        let mut line: Vec<u8> = self.buf.drain(..=newline_at).collect();
        line.pop(); // '\n'
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        self.scanned = 0;
        String::from_utf8_lossy(&line).into_owned()
    }

    /// Surrender whatever raw bytes are buffered past the last produced
    /// line. Used at the `HELLO BINARY` handoff: bytes the peer pipelined
    /// after the handshake line are binary frames and belong to the
    /// reactor's frame reader, not this line reader.
    pub fn take_buffered(&mut self) -> Vec<u8> {
        self.scanned = 0;
        self.discarding = false;
        std::mem::take(&mut self.buf)
    }

    /// Try to produce the next line. A read timeout on the underlying
    /// stream yields [`ReadLine::Idle`]; a line over [`MAX_LINE`] is
    /// discarded (through its newline) and reported as
    /// [`ReadLine::Overlong`] — the framing stays intact, so the session
    /// can answer `ERR` and keep serving.
    pub fn poll_line(&mut self) -> io::Result<ReadLine> {
        loop {
            if let Some(pos) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                if self.discarding {
                    self.buf.drain(..=self.scanned + pos);
                    self.scanned = 0;
                    self.discarding = false;
                    return Ok(ReadLine::Overlong);
                }
                return Ok(ReadLine::Line(self.take_line(self.scanned + pos)));
            }
            self.scanned = self.buf.len();
            if self.discarding {
                // Nothing before a newline matters; drop what is buffered.
                self.buf.clear();
                self.scanned = 0;
            } else if self.buf.len() > MAX_LINE {
                self.buf.clear();
                self.scanned = 0;
                self.discarding = true;
            }
            let mut tmp = [0u8; 8192];
            match self.inner.read(&mut tmp) {
                Ok(0) => {
                    if self.discarding {
                        // Oversize final line, never terminated.
                        self.discarding = false;
                        return Ok(ReadLine::Overlong);
                    }
                    if self.buf.is_empty() {
                        return Ok(ReadLine::Eof);
                    }
                    // Final unterminated line.
                    let line = String::from_utf8_lossy(&self.buf).into_owned();
                    self.buf.clear();
                    self.scanned = 0;
                    return Ok(ReadLine::Line(line));
                }
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadLine::Idle),
                Err(e) if e.kind() == io::ErrorKind::TimedOut => return Ok(ReadLine::Idle),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Statistics of one finished session (also aggregated server-wide).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Commands dispatched.
    pub commands: u64,
    /// Stream tuples ingested via `PUSH` / `EXEC INSERT`.
    pub rows_pushed: u64,
    /// Result chunks streamed out while subscribed.
    pub chunks_delivered: u64,
    /// Result rows streamed out while subscribed.
    pub rows_delivered: u64,
    /// Commands that answered `ERR`.
    pub errors: u64,
}

/// Reply sent when a line exceeds [`MAX_LINE`].
const OVERLONG_MSG: &str = "protocol line exceeds 1 MiB";

/// One blocking read's outcome at the session level.
enum Input {
    /// A complete protocol line.
    Line(String),
    /// An oversize line was discarded; answer `ERR`, stay alive.
    Overlong,
    /// Connection closed (or server shutting down).
    Closed,
    /// The caller's deadline passed with no input (idle reaping or a
    /// stalled `PUSH` frame).
    TimedOut,
}

/// Why the session loop ended.
enum Exit {
    /// Client sent QUIT, closed the socket, or an I/O error occurred.
    Closed,
    /// The server is shutting down.
    Shutdown,
    /// `HELLO BINARY` negotiated: this connection continues under the
    /// reactor in frame mode; the session thread ends without closing it.
    Handoff,
}

/// Drive one client connection to completion. Returns the session's
/// final statistics (already folded into the server-wide counters) —
/// or, after a binary handoff, an empty default: the connection lives on
/// under the reactor, which folds the carried-over counters when the
/// connection actually closes.
pub(crate) fn run_session(stream: TcpStream, shared: Arc<SharedState>) -> SessionStats {
    let mut session = match Session::new(stream, shared) {
        Ok(s) => s,
        Err(_) => return SessionStats::default(),
    };
    let _ = session.run();
    if session.handoff {
        session.into_handoff();
        return SessionStats::default();
    }
    session.finish()
}

struct Session {
    reader: LineReader<TcpStream>,
    writer: TcpStream,
    shared: Arc<SharedState>,
    stats: SessionStats,
    /// Set when `HELLO BINARY` succeeded: hand the socket to the reactor
    /// instead of closing it.
    handoff: bool,
}

impl Session {
    fn new(stream: TcpStream, shared: Arc<SharedState>) -> io::Result<Session> {
        stream.set_read_timeout(Some(COMMAND_POLL))?;
        // A wedged client that stops reading must not pin this thread on
        // a blocking write forever.
        stream.set_write_timeout(shared.tuning.write_timeout)?;
        stream.set_nodelay(true).ok();
        let reader = LineReader::new(stream.try_clone()?);
        Ok(Session {
            reader,
            writer: stream,
            shared,
            stats: SessionStats::default(),
            handoff: false,
        })
    }

    fn finish(self) -> SessionStats {
        self.shared.stats.fold_session(&self.stats);
        self.stats
    }

    /// Pass the connection to the reactor: the socket goes non-blocking,
    /// bytes the client pipelined behind the `HELLO` line travel along,
    /// and this session's counters ride with the connection (folded
    /// server-wide when the reactor eventually closes it).
    fn into_handoff(mut self) {
        let leftover = self.reader.take_buffered();
        if self.writer.set_nonblocking(true).is_err() {
            // Can't enter the reactor; close out as a normal session end.
            self.finish();
            return;
        }
        let Session { writer, shared, stats, .. } = self;
        shared.enqueue_handoff(crate::reactor::BinaryHandoff {
            stream: writer,
            leftover,
            stats,
        });
    }

    fn send(&mut self, text: &str) -> io::Result<()> {
        self.writer.write_all(text.as_bytes())
    }

    fn send_err(&mut self, msg: &str) -> io::Result<()> {
        self.stats.errors += 1;
        self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        let line = err_line(msg);
        self.send(&line)
    }

    /// Report an engine failure. Admission-control sheds get the
    /// dedicated retryable `OVERLOADED <retry-after-ms>` line so clients
    /// can tell "back off and retry" from a hard `ERR`.
    fn send_engine_err(&mut self, e: &EngineError) -> io::Result<()> {
        if let EngineError::Overloaded { retry_after_ms } = e {
            self.stats.errors += 1;
            self.shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            return self.send(&format!("OVERLOADED {retry_after_ms}\n"));
        }
        self.send_err(&e.to_string())
    }

    fn count_pushed(&mut self, n: u64) {
        self.stats.rows_pushed += n;
        self.shared.stats.rows_pushed.fetch_add(n, Ordering::Relaxed);
    }

    /// Block for the next input event, honouring the shutdown flag at
    /// every read-timeout tick. A passed `deadline` turns prolonged
    /// silence into [`Input::TimedOut`] instead of waiting forever.
    fn next_input(&mut self, deadline: Option<Instant>) -> io::Result<Input> {
        loop {
            match self.reader.poll_line()? {
                ReadLine::Line(l) => return Ok(Input::Line(l)),
                ReadLine::Overlong => return Ok(Input::Overlong),
                ReadLine::Eof => return Ok(Input::Closed),
                ReadLine::Idle => {
                    if self.shared.is_shutdown() {
                        return Ok(Input::Closed);
                    }
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Ok(Input::TimedOut);
                    }
                }
            }
        }
    }

    fn run(&mut self) -> io::Result<()> {
        loop {
            let deadline = self.shared.tuning.idle_timeout.map(|t| Instant::now() + t);
            let line = match self.next_input(deadline)? {
                Input::Line(l) => l,
                Input::TimedOut => {
                    // Idle-session reaping: tell the client why, then hang
                    // up (best effort — it may be long gone).
                    let _ = self.send("ERR idle session reaped\n");
                    break;
                }
                Input::Overlong => {
                    // A framing error, not a fatal one: answer ERR and
                    // keep the session alive (the reader resynced at the
                    // newline).
                    self.stats.commands += 1;
                    self.shared.stats.commands.fetch_add(1, Ordering::Relaxed);
                    self.send_err(OVERLONG_MSG)?;
                    continue;
                }
                Input::Closed => break,
            };
            if line.trim().is_empty() {
                continue;
            }
            self.stats.commands += 1;
            self.shared.stats.commands.fetch_add(1, Ordering::Relaxed);
            let cmd = match parse_command(&line) {
                Ok(c) => c,
                Err(e) => {
                    self.send_err(&e.0)?;
                    continue;
                }
            };
            match self.dispatch(cmd)? {
                None => {}
                Some(Exit::Handoff) => {
                    self.handoff = true;
                    break;
                }
                Some(Exit::Closed) | Some(Exit::Shutdown) => break,
            }
        }
        Ok(())
    }

    fn dispatch(&mut self, cmd: Command) -> io::Result<Option<Exit>> {
        match cmd {
            Command::Hello(version) => {
                if version == datacell_storage::binio::WIRE_VERSION {
                    self.send(&format!("OK HELLO BINARY {version}\n"))?;
                    return Ok(Some(Exit::Handoff));
                }
                self.send_err(&format!(
                    "unsupported binary wire version {version} (supported: {})",
                    datacell_storage::binio::WIRE_VERSION
                ))?;
            }
            Command::Schema(stream) => {
                let schema = self.shared.lock_engine().catalog().schema_of(&stream);
                match schema {
                    Ok(s) => {
                        let mut bytes = Vec::new();
                        datacell_storage::binio::encode_schema(&mut bytes, &s);
                        self.send(&format!(
                            "OK SCHEMA {stream} {}\n",
                            crate::protocol::encode_hex(&bytes)
                        ))?;
                    }
                    Err(e) => self.send_engine_err(&EngineError::from(e))?,
                }
            }
            Command::Ping => self.send("PONG\n")?,
            Command::Quit => {
                self.send("OK BYE\n")?;
                return Ok(Some(Exit::Closed));
            }
            Command::Shutdown => {
                // Flag first, ack second: a client that saw `OK SHUTDOWN`
                // must observe `shutdown_requested()` as true.
                self.shared.request_shutdown();
                self.send("OK SHUTDOWN\n")?;
                return Ok(Some(Exit::Shutdown));
            }
            Command::Stop => self.send_err("STOP is only valid while subscribed")?,
            Command::Exec(sql) => self.exec(&sql)?,
            Command::Register { sql, mode } => {
                let registered = {
                    let mut engine = self.shared.lock_engine();
                    match mode {
                        Some(m) => engine.register_query_with_mode(&sql, m),
                        None => engine.register_query(&sql),
                    }
                };
                match registered {
                    Ok(id) => {
                        self.shared.notify_work();
                        self.send(&format!("OK QUERY {id}\n"))?;
                    }
                    Err(e) => self.send_err(&e.to_string())?,
                }
            }
            Command::Deregister(id) => {
                let res = self.shared.lock_engine().deregister_query(id);
                match res {
                    Ok(()) => self.send(&format!("OK DEREGISTERED {id}\n"))?,
                    Err(e) => self.send_err(&e.to_string())?,
                }
            }
            Command::Push(stream) => self.push(&stream)?,
            Command::Subscribe { query, limit, after } => {
                return self.subscribe(query, limit, after)
            }
            Command::Stats => self.stats_report(false)?,
            Command::StatsDetail => self.stats_report(true)?,
            Command::Metrics => {
                let text = self.shared.lock_engine().metrics_text();
                self.send_framed("METRICS", text)?;
            }
            Command::ExplainAnalyze(id) => {
                let rendered = self.shared.lock_engine().explain_analyze(id);
                match rendered {
                    Ok(text) => self.send_framed("ANALYZE", text)?,
                    Err(e) => self.send_err(&e.to_string())?,
                }
            }
            Command::TraceDump(n) => self.trace_report(n)?,
        }
        Ok(None)
    }

    /// Send a multi-line report framed as `<tag> <line-count>`.
    fn send_framed(&mut self, tag: &str, mut body: String) -> io::Result<()> {
        if !body.is_empty() && !body.ends_with('\n') {
            body.push('\n');
        }
        let lines = body.lines().count();
        self.send(&format!("{tag} {lines}\n{body}"))
    }

    fn exec(&mut self, sql: &str) -> io::Result<()> {
        let outcome = {
            let mut engine = self.shared.lock_engine();
            let outcome = engine.execute(sql);
            // INSERT into a stream can enable factories: evaluate
            // synchronously so results are on subscriber queues before the
            // client sees the reply (ingest-synchronous semantics).
            if matches!(outcome, Ok(ExecOutcome::Inserted(_))) {
                engine.run_until_idle().ok();
            }
            outcome
        };
        match outcome {
            Ok(ExecOutcome::Created(name)) => self.send(&format!("OK CREATED {name}\n")),
            Ok(ExecOutcome::Dropped(name)) => self.send(&format!("OK DROPPED {name}\n")),
            Ok(ExecOutcome::Inserted(n)) => {
                self.count_pushed(n as u64);
                self.shared.notify_work();
                self.send(&format!("OK INSERTED {n}\n"))
            }
            Ok(ExecOutcome::Rows { names, chunk }) => {
                let mut reply =
                    format!("ROWS {} {}\n", chunk.len(), encode_names(&names));
                for row in chunk.rows() {
                    reply.push_str(&encode_row(&row));
                    reply.push('\n');
                }
                self.send(&reply)
            }
            Err(e) => self.send_engine_err(&e),
        }
    }

    /// The socket receptor: read CSV rows until [`PUSH_END`], then append
    /// them to the stream's basket in one batch and evaluate to quiescence
    /// before acknowledging — so a subsequent `SUBSCRIBE` read on another
    /// connection observes everything this batch produced.
    fn push(&mut self, stream: &str) -> io::Result<()> {
        let schema = self.shared.lock_engine().catalog().schema_of(stream);
        let mut rows: Vec<Row> = Vec::new();
        let mut bad: Option<String> = None;
        loop {
            // In-frame deadline: a producer that stalls mid-block (between
            // `PUSH` and `END`) must not pin the session forever. The
            // deadline restarts with every row received.
            let deadline = Instant::now() + self.shared.tuning.push_frame_timeout;
            let line = match self.next_input(Some(deadline))? {
                Input::Line(l) => l,
                Input::TimedOut => {
                    // Nothing was applied; the reader is still line-synced,
                    // so the session survives. Any stragglers of the
                    // abandoned block will bounce off parse_command.
                    return self.send_err(&format!(
                        "PUSH {stream}: no END within {:?}; batch discarded",
                        self.shared.tuning.push_frame_timeout
                    ));
                }
                Input::Overlong => {
                    // An oversize row poisons the batch but not the
                    // session: keep consuming through END, then ERR.
                    if bad.is_none() {
                        bad = Some(format!("row {}: {OVERLONG_MSG}", rows.len() + 1));
                    }
                    continue;
                }
                // Connection died mid-batch: nothing was applied.
                Input::Closed => return Ok(()),
            };
            if line.trim().eq_ignore_ascii_case(PUSH_END) {
                break;
            }
            if bad.is_some() {
                continue; // keep consuming the block to stay in sync
            }
            match &schema {
                Ok(s) => match decode_typed_row(&line, s) {
                    Ok(r) => rows.push(r),
                    Err(e) => bad = Some(format!("row {}: {}", rows.len() + 1, e.0)),
                },
                Err(_) => bad = Some(String::new()), // reported below
            }
        }
        if let Err(e) = schema {
            return self.send_err(&EngineError::from(e).to_string());
        }
        if let Some(msg) = bad {
            return self.send_err(&msg);
        }
        let pushed = {
            let mut engine = self.shared.lock_engine();
            match engine.push_rows(stream, &rows) {
                Ok(n) => {
                    engine.run_until_idle().ok();
                    Ok(n)
                }
                Err(e) => Err(e),
            }
        };
        match pushed {
            Ok(n) => {
                self.count_pushed(n as u64);
                self.shared.notify_work();
                self.send(&format!("OK PUSHED {n}\n"))
            }
            Err(e) => self.send_engine_err(&e),
        }
    }

    /// Streaming mode: the connection becomes this query's emitter,
    /// reading from the query's server-side replay ring by cursor. A plain
    /// `SUBSCRIBE` starts at "future chunks only"; `AFTER <epoch> <seq>`
    /// resumes a previous incarnation of the subscription.
    fn subscribe(
        &mut self,
        query: u64,
        limit: Option<u64>,
        after: Option<(u64, u64)>,
    ) -> io::Result<Option<Exit>> {
        let prepared = {
            let engine = self.shared.lock_engine();
            engine.output_names(query).map(|names| (names, engine.obs().clone()))
        };
        let (names, obs) = match prepared {
            Ok(pair) => pair,
            Err(e) => {
                self.send_engine_err(&e)?;
                return Ok(None);
            }
        };
        let mut cursor = match self.shared.attach_subscriber(query, after) {
            Ok((cursor, _next_seq)) => cursor,
            Err(e) => {
                self.send_engine_err(&e)?;
                return Ok(None);
            }
        };
        self.send(&format!(
            "OK SUBSCRIBED {query} {} {} {}\n",
            self.shared.epoch,
            cursor + 1,
            encode_names(&names)
        ))?;

        self.writer.set_read_timeout(Some(STREAM_POLL))?;
        let mut counters = (0u64, 0u64); // (chunks, rows)
        let exit = loop {
            if self.shared.is_shutdown() {
                // Final drain: chunks of already-acknowledged batches must
                // still reach the client before the stream ends.
                self.forward_ring(query, &obs, &mut cursor, limit, &mut counters)?;
                break Some(Exit::Shutdown);
            }
            // 1. Client input: STOP, connection close, or garbage. The
            //    STREAM_POLL read timeout paces the loop.
            match self.reader.poll_line()? {
                ReadLine::Eof => break Some(Exit::Closed),
                ReadLine::Overlong => self.send_err(OVERLONG_MSG)?,
                ReadLine::Line(l) => match parse_command(&l) {
                    Ok(Command::Stop) => {
                        self.forward_ring(query, &obs, &mut cursor, limit, &mut counters)?;
                        break None;
                    }
                    _ => self.send_err("only STOP is accepted while subscribed")?,
                },
                ReadLine::Idle => {}
            }
            // 2. Ring output: forward everything retained past the cursor.
            let (limit_hit, closed) =
                self.forward_ring(query, &obs, &mut cursor, limit, &mut counters)?;
            if limit_hit {
                break None;
            }
            if closed {
                // Deregistered or engine shutdown: the ring is drained and
                // no more chunks can arrive — end the stream politely.
                break None;
            }
        };
        let (chunks, rows) = counters;
        self.stats.chunks_delivered += chunks;
        self.stats.rows_delivered += rows;
        self.shared.stats.chunks_delivered.fetch_add(chunks, Ordering::Relaxed);
        self.shared.stats.rows_delivered.fetch_add(rows, Ordering::Relaxed);
        self.writer.set_read_timeout(Some(COMMAND_POLL))?;
        // Every stream end — including server shutdown — is announced with
        // OK STOPPED so a blocked client sees a clean end-of-stream rather
        // than a bare EOF.
        self.send(&format!("OK STOPPED {chunks} {rows}\n"))?;
        Ok(exit)
        // The ring (and its engine tap) deliberately survives this
        // session: that retained tail is what a reconnecting client
        // resumes from.
    }

    /// Forward every retained chunk past `cursor`, updating the cursor
    /// and the `(chunks, rows)` counters. Returns `(limit_reached,
    /// ring_closed_and_drained)`.
    fn forward_ring(
        &mut self,
        query: u64,
        obs: &EngineObs,
        cursor: &mut u64,
        limit: Option<u64>,
        counters: &mut (u64, u64),
    ) -> io::Result<(bool, bool)> {
        loop {
            let budget = match limit {
                Some(l) if counters.0 >= l => return Ok((true, false)),
                Some(l) => (l - counters.0) as usize,
                None => usize::MAX,
            };
            let (batch, closed) = self.shared.fetch_ring(query, *cursor, budget);
            if batch.is_empty() {
                return Ok((false, closed));
            }
            for (seq, chunk) in batch {
                self.send_chunk(obs, query, seq, &chunk)?;
                *cursor = seq;
                counters.0 += 1;
                counters.1 += chunk.len() as u64;
            }
        }
    }

    /// Write one `CHUNK` frame, then close the lifecycle latency chain:
    /// the chunk's ingest stamp (the arrival tick of its newest
    /// contributing tuple) to "bytes handed to the socket" is the
    /// wire-delivery latency. Replayed chunks arrive stamp-stripped from
    /// the ring, so re-deliveries never pollute the histogram.
    fn send_chunk(
        &mut self,
        obs: &EngineObs,
        query: u64,
        seq: u64,
        chunk: &Chunk,
    ) -> io::Result<()> {
        self.send(&encode_chunk(query, seq, chunk))?;
        if let Some(arrived) = chunk.stamp().instant() {
            let us = arrived.elapsed().as_micros().min(u64::MAX as u128) as u64;
            obs.record_wire_delivery_us(us);
        }
        Ok(())
    }

    /// The `STATS` / `STATS DETAIL` report: engine sections (detail adds
    /// the analyze table and latency percentiles), engine uptime, the
    /// server-wide counters, and this session's own counters.
    fn stats_report(&mut self, detail: bool) -> io::Result<()> {
        let (engine_report, uptime) = {
            let engine = self.shared.lock_engine();
            let text = if detail { engine.stats_detail() } else { engine.stats().render() };
            (text, engine.uptime())
        };
        let mut report = engine_report;
        report.push_str(&format!("uptime: {:.1}s\n", uptime.as_secs_f64()));
        report.push_str(&self.shared.stats.render());
        report.push_str(&format!(
            "== session ==\n\
             commands: {} ({} errors)\n\
             ingest: {} rows pushed\n\
             egress: {} chunks / {} rows delivered\n",
            self.stats.commands,
            self.stats.errors,
            self.stats.rows_pushed,
            self.stats.chunks_delivered,
            self.stats.rows_delivered,
        ));
        self.send_framed("STATS", report)
    }

    /// Drain the engine's flight recorder into a `TRACE` frame, one event
    /// per line (details folded to keep the line framing intact).
    fn trace_report(&mut self, n: Option<usize>) -> io::Result<()> {
        let events = self.shared.lock_engine().trace_events(n);
        let mut body = String::new();
        for e in &events {
            body.push_str(&format!(
                "#{} +{}us {} {}\n",
                e.seq,
                e.at_us,
                e.kind,
                e.detail.replace(['\n', '\r'], "; ")
            ));
        }
        self.send_framed("TRACE", body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_reader_splits_and_survives_partials() {
        // A reader that yields data in awkward slices with interspersed
        // timeouts, to prove partial lines are never lost.
        struct Chunked {
            parts: Vec<io::Result<Vec<u8>>>,
        }
        impl Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.parts.is_empty() {
                    return Ok(0);
                }
                match self.parts.remove(0) {
                    Ok(bytes) => {
                        buf[..bytes.len()].copy_from_slice(&bytes);
                        Ok(bytes.len())
                    }
                    Err(e) => Err(e),
                }
            }
        }
        let timeout = || Err(io::Error::new(io::ErrorKind::WouldBlock, "t"));
        let mut r = LineReader::new(Chunked {
            parts: vec![
                Ok(b"PI".to_vec()),
                timeout(),
                Ok(b"NG\r\nEX".to_vec()),
                timeout(),
                Ok(b"EC 1\ntail".to_vec()),
            ],
        });
        assert_eq!(r.poll_line().unwrap(), ReadLine::Idle);
        assert_eq!(r.poll_line().unwrap(), ReadLine::Line("PING".into()));
        assert_eq!(r.poll_line().unwrap(), ReadLine::Idle);
        assert_eq!(r.poll_line().unwrap(), ReadLine::Line("EXEC 1".into()));
        // EOF flushes the unterminated tail as a final line.
        assert_eq!(r.poll_line().unwrap(), ReadLine::Line("tail".into()));
        assert_eq!(r.poll_line().unwrap(), ReadLine::Eof);
    }

    #[test]
    fn line_reader_skips_unbounded_lines_and_resyncs() {
        // An oversize line followed by a normal one: the reader reports
        // Overlong once, discards through the newline, and produces the
        // next line intact — bounded memory throughout.
        struct Oversize {
            sent: usize,
            total: usize,
        }
        impl Read for Oversize {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.sent >= self.total {
                    let tail = b"\nPING\n";
                    buf[..tail.len()].copy_from_slice(tail);
                    self.sent = usize::MAX;
                    return Ok(tail.len());
                }
                buf.fill(b'x');
                self.sent += buf.len();
                Ok(buf.len())
            }
        }
        let mut r = LineReader::new(Oversize { sent: 0, total: 3 << 20 });
        assert_eq!(r.poll_line().unwrap(), ReadLine::Overlong);
        assert_eq!(r.poll_line().unwrap(), ReadLine::Line("PING".into()));
    }

    #[test]
    fn line_reader_reports_overlong_final_line_on_eof() {
        // Feed > MAX_LINE then EOF: one Overlong, then Eof.
        struct Limited {
            remaining: usize,
        }
        impl Read for Limited {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.remaining == 0 {
                    return Ok(0);
                }
                let n = buf.len().min(self.remaining);
                buf[..n].fill(b'y');
                self.remaining -= n;
                Ok(n)
            }
        }
        let mut r = LineReader::new(Limited { remaining: 2 << 20 });
        assert_eq!(r.poll_line().unwrap(), ReadLine::Overlong);
        assert_eq!(r.poll_line().unwrap(), ReadLine::Eof);
    }
}
