//! Per-query replay rings: the server-side half of reconnect-with-resume.
//!
//! Every subscribed query gets one [`ReplayRing`], fed by an internal
//! *tap* emitter ([`datacell_core::DataCell::subscribe`]) that the server
//! keeps alive across client disconnects. The ring assigns each result
//! chunk a monotonically increasing **sequence number** (scoped to one
//! server incarnation, identified by its *epoch*) and retains the most
//! recent `capacity` chunks. A session streams by cursor: "give me every
//! retained chunk with `seq > cursor`" — so a client that reconnects with
//! `AFTER <epoch> <seq>` resumes exactly where it left off, as long as
//! the gap fits in the ring.
//!
//! Latency accounting contract (see `emitter.rs` in `datacell-core`):
//! a chunk's ingest stamp is consumed by the **first** delivery — the
//! fetch that advances the ring's stamp watermark keeps the stamp (the
//! session records wire-delivery latency from it), every later fetch of
//! the same chunk (a replay to a reconnecting or second subscriber)
//! clears it, so stale arrival ticks never pollute the
//! `datacell_wire_delivery_us` histogram.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use datacell_core::Emitter;
use datacell_storage::{Chunk, IngestStamp};

use crate::frame::encode_chunk_frame;

/// One retained chunk plus its lazily built wire frame.
struct Entry {
    seq: u64,
    chunk: Chunk,
    /// Encode-once cache: the binary `CHUNK` frame for this entry. The
    /// frame embeds only `(query, seq)` — both identical for every
    /// subscriber of the query within one epoch — so a single encoding
    /// fans out to all of them (the cache key is effectively
    /// `(query, epoch, seq)`; query and epoch are fixed per ring).
    frame: Option<Arc<Vec<u8>>>,
}

/// One binary `CHUNK` frame ready for delivery to a subscriber.
pub struct FrameDelivery {
    /// Delivery sequence number (the client's resume cursor).
    pub seq: u64,
    /// The complete wire frame (header included), shared across
    /// subscribers.
    pub bytes: Arc<Vec<u8>>,
    /// Result rows inside the chunk (stats accounting).
    pub rows: u64,
    /// Arrival tick of the chunk's newest contributing tuple — present
    /// only on the first delivery (replays never re-sample latency).
    pub stamp: Option<Instant>,
    /// Whether the frame came from the encode-once cache.
    pub cached: bool,
}

/// One query's retained result tail, with delivery sequence numbers.
pub struct ReplayRing {
    tap: Emitter,
    buf: VecDeque<Entry>,
    /// Sequence number the next produced chunk will get (first is 1).
    next_seq: u64,
    /// Highest sequence number already delivered with its stamp intact.
    stamped_floor: u64,
    capacity: usize,
}

impl ReplayRing {
    /// Wrap a tap emitter; retain at most `capacity` chunks.
    pub fn new(tap: Emitter, capacity: usize) -> ReplayRing {
        ReplayRing {
            tap,
            buf: VecDeque::new(),
            next_seq: 1,
            stamped_floor: 0,
            capacity: capacity.max(1),
        }
    }

    /// Pull everything buffered on the tap into the ring, assigning
    /// sequence numbers and evicting the oldest chunks beyond capacity.
    pub fn drain_tap(&mut self) {
        while let Some(chunk) = self.tap.try_next() {
            self.buf.push_back(Entry { seq: self.next_seq, chunk, frame: None });
            self.next_seq += 1;
            while self.buf.len() > self.capacity {
                // Evicted undelivered chunks die with their stamps: no
                // latency sample, same as an emitter overflow drop.
                self.buf.pop_front();
            }
        }
    }

    /// Sequence number the next produced chunk will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Oldest sequence number still retained (== `next_seq` when empty).
    pub fn oldest_retained(&self) -> u64 {
        self.buf.front().map_or(self.next_seq, |e| e.seq)
    }

    /// Whether the engine closed the tap (query deregistered / shutdown)
    /// — no further chunks will ever arrive.
    pub fn is_closed(&self) -> bool {
        self.tap.is_closed()
    }

    /// Clone out up to `max` retained chunks with `seq > cursor`, oldest
    /// first. The first delivery of a chunk keeps its ingest stamp;
    /// replays get it stripped (see the module docs).
    pub fn fetch_after(&mut self, cursor: u64, max: usize) -> Vec<(u64, Chunk)> {
        let mut out = Vec::new();
        for e in &self.buf {
            if e.seq <= cursor {
                continue;
            }
            if out.len() >= max {
                break;
            }
            let mut chunk = e.chunk.clone();
            if e.seq > self.stamped_floor {
                self.stamped_floor = e.seq;
            } else {
                chunk.set_stamp(IngestStamp::default());
            }
            out.push((e.seq, chunk));
        }
        out
    }

    /// Binary-mode counterpart of [`ReplayRing::fetch_after`]: up to `max`
    /// wire-ready `CHUNK` frames with `seq > cursor`, oldest first. Each
    /// chunk is encoded **at most once** per ring lifetime; later fetches
    /// (other subscribers, replays) share the cached `Arc` bytes. Stamp
    /// semantics match the text path: only the fetch that first advances
    /// the stamp watermark carries the arrival tick.
    ///
    /// A chunk whose frame exceeds the wire cap is skipped (it cannot be
    /// framed; the cursor advances past it with the rest of the batch).
    pub fn fetch_frames_after(
        &mut self,
        query: u64,
        cursor: u64,
        max: usize,
    ) -> Vec<FrameDelivery> {
        let mut out = Vec::new();
        for e in self.buf.iter_mut() {
            if e.seq <= cursor {
                continue;
            }
            if out.len() >= max {
                break;
            }
            let cached = e.frame.is_some();
            let bytes = match &e.frame {
                Some(b) => Arc::clone(b),
                None => match encode_chunk_frame(query, e.seq, &e.chunk) {
                    Ok(encoded) => {
                        let arc = Arc::new(encoded);
                        e.frame = Some(Arc::clone(&arc));
                        arc
                    }
                    Err(_) => continue,
                },
            };
            let stamp = if e.seq > self.stamped_floor {
                self.stamped_floor = e.seq;
                e.chunk.stamp().instant()
            } else {
                None
            };
            out.push(FrameDelivery {
                seq: e.seq,
                bytes,
                rows: e.chunk.len() as u64,
                stamp,
                cached,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datacell_core::EmitterSender;
    use datacell_storage::Bat;
    use std::time::Instant;

    fn chunk(v: i64) -> Chunk {
        Chunk::new(vec![Bat::from_ints(vec![v])])
            .expect("one-column chunk")
            .with_stamp(IngestStamp::at(Instant::now()))
    }

    fn ring(capacity: usize) -> (EmitterSender, ReplayRing) {
        let (tx, rx) = datacell_core::emitter::channel(0, None);
        (tx, ReplayRing::new(rx, capacity))
    }

    #[test]
    fn sequences_are_monotonic_and_cursor_fetch_is_exact() {
        let (tx, mut ring) = ring(16);
        for v in 1..=4 {
            tx.send(chunk(v)).expect("send");
        }
        ring.drain_tap();
        assert_eq!(ring.next_seq(), 5);
        assert_eq!(ring.oldest_retained(), 1);
        let all: Vec<u64> = ring.fetch_after(0, usize::MAX).iter().map(|(s, _)| *s).collect();
        assert_eq!(all, vec![1, 2, 3, 4]);
        let tail: Vec<u64> = ring.fetch_after(2, usize::MAX).iter().map(|(s, _)| *s).collect();
        assert_eq!(tail, vec![3, 4]);
        assert!(ring.fetch_after(4, usize::MAX).is_empty());
    }

    #[test]
    fn capacity_evicts_oldest() {
        let (tx, mut ring) = ring(2);
        for v in 1..=5 {
            tx.send(chunk(v)).expect("send");
        }
        ring.drain_tap();
        assert_eq!(ring.oldest_retained(), 4);
        let got: Vec<u64> = ring.fetch_after(0, usize::MAX).iter().map(|(s, _)| *s).collect();
        assert_eq!(got, vec![4, 5], "a cursor before the floor gets what is left");
    }

    #[test]
    fn replays_are_stamp_stripped() {
        let (tx, mut ring) = ring(8);
        tx.send(chunk(1)).expect("send");
        tx.send(chunk(2)).expect("send");
        ring.drain_tap();
        // First delivery: stamps intact (latency chain closes here).
        let first = ring.fetch_after(0, usize::MAX);
        assert!(first.iter().all(|(_, c)| c.stamp().instant().is_some()));
        // Replay to a reconnecting subscriber: stamps stripped.
        let replay = ring.fetch_after(0, usize::MAX);
        assert!(replay.iter().all(|(_, c)| c.stamp().instant().is_none()));
        // A genuinely new chunk keeps its stamp even after the replay.
        tx.send(chunk(3)).expect("send");
        ring.drain_tap();
        let next = ring.fetch_after(2, usize::MAX);
        assert_eq!(next.len(), 1);
        assert!(next[0].1.stamp().instant().is_some());
    }

    #[test]
    fn fetch_respects_max() {
        let (tx, mut ring) = ring(16);
        for v in 1..=4 {
            tx.send(chunk(v)).expect("send");
        }
        ring.drain_tap();
        let got: Vec<u64> = ring.fetch_after(0, 2).iter().map(|(s, _)| *s).collect();
        assert_eq!(got, vec![1, 2]);
        // Chunks beyond the budget were not touched: their first-delivery
        // stamps are still pending.
        let rest = ring.fetch_after(2, usize::MAX);
        assert!(rest.iter().all(|(_, c)| c.stamp().instant().is_some()));
    }

    #[test]
    fn frames_are_encoded_once_and_shared() {
        let (tx, mut ring) = ring(8);
        tx.send(chunk(1)).expect("send");
        tx.send(chunk(2)).expect("send");
        ring.drain_tap();
        // First subscriber: every frame is a cache miss, stamps intact.
        let first = ring.fetch_frames_after(9, 0, usize::MAX);
        assert_eq!(first.len(), 2);
        assert!(first.iter().all(|f| !f.cached));
        assert!(first.iter().all(|f| f.stamp.is_some()));
        assert!(first.iter().all(|f| f.rows == 1));
        // Second subscriber: same bytes (pointer-equal Arc), no stamps.
        let second = ring.fetch_frames_after(9, 0, usize::MAX);
        assert!(second.iter().all(|f| f.cached));
        assert!(second.iter().all(|f| f.stamp.is_none()));
        for (a, b) in first.iter().zip(&second) {
            assert!(Arc::ptr_eq(&a.bytes, &b.bytes), "encode-once violated");
        }
        // The frames decode back to the retained chunks.
        let (tag, payload) = {
            let mut fb = crate::frame::FrameBuf::new();
            fb.push_bytes(&first[0].bytes);
            fb.next_frame().expect("frame").expect("whole")
        };
        match crate::frame::decode_frame(tag, &payload).expect("decode") {
            crate::frame::Frame::Chunk { query, seq, chunk } => {
                assert_eq!((query, seq), (9, 1));
                assert_eq!(chunk.len(), 1);
            }
            other => panic!("unexpected frame {other:?}"),
        }
        // Text and frame fetches share the stamp watermark.
        tx.send(chunk(3)).expect("send");
        ring.drain_tap();
        let text = ring.fetch_after(2, usize::MAX);
        assert!(text[0].1.stamp().instant().is_some());
        let replay = ring.fetch_frames_after(9, 2, usize::MAX);
        assert!(replay[0].stamp.is_none(), "text fetch consumed the stamp");
    }

    #[test]
    fn closed_tap_is_visible() {
        let (tx, mut ring) = ring(4);
        tx.send(chunk(1)).expect("send");
        drop(tx);
        assert!(ring.is_closed());
        ring.drain_tap();
        assert_eq!(ring.fetch_after(0, usize::MAX).len(), 1, "buffered chunks still drain");
    }
}
