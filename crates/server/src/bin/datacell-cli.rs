//! `datacell-cli` — interactive / scripted wire-protocol session.
//!
//! ```text
//! datacell-cli [--addr HOST:PORT] [--fail-on-err]
//! ```
//!
//! Reads protocol lines from stdin and forwards them verbatim; prints
//! every server line to stdout. Blank lines and `#` comments are skipped,
//! so a scripted session can be a readable heredoc. On stdin EOF a `QUIT`
//! is sent automatically (unless the script already quit). With
//! `--fail-on-err` the exit status is 1 if the server ever answered
//! `ERR`.

use std::io::{BufRead, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use datacell_server::session::{LineReader, ReadLine};

fn main() {
    let mut addr = "127.0.0.1:4321".to_string();
    let mut fail_on_err = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr requires a value");
                    std::process::exit(2);
                }
            },
            "--fail-on-err" => fail_on_err = true,
            other => {
                eprintln!("usage: datacell-cli [--addr HOST:PORT] [--fail-on-err]");
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    stream.set_nodelay(true).ok();
    let saw_err = Arc::new(AtomicBool::new(false));

    // Reader thread: print every server line until the connection closes.
    let printer = {
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("datacell-cli: cannot clone socket: {e}");
                std::process::exit(1);
            }
        };
        let saw_err = saw_err.clone();
        std::thread::spawn(move || {
            let mut reader = LineReader::new(stream);
            loop {
                match reader.poll_line() {
                    Ok(ReadLine::Line(l)) => {
                        if l.starts_with("ERR ") {
                            saw_err.store(true, Ordering::Relaxed);
                        }
                        println!("{l}");
                    }
                    Ok(ReadLine::Overlong) => {
                        saw_err.store(true, Ordering::Relaxed);
                        eprintln!("datacell-cli: server line exceeded 1 MiB, skipped");
                    }
                    Ok(ReadLine::Idle) => {}
                    Ok(ReadLine::Eof) | Err(_) => break,
                }
            }
            std::io::stdout().flush().ok();
        })
    };

    let mut writer = stream;
    let stdin = std::io::stdin();
    let mut sent_quit = false;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let upper = trimmed.to_ascii_uppercase();
        if upper == "QUIT" || upper == "SHUTDOWN" {
            sent_quit = true;
        }
        if writer.write_all(format!("{line}\n").as_bytes()).is_err() {
            break;
        }
    }
    if !sent_quit {
        let _ = writer.write_all(b"QUIT\n");
    }
    // The server closes the connection after QUIT/SHUTDOWN; the printer
    // thread drains the remaining replies and exits on EOF.
    printer.join().ok();

    if fail_on_err && saw_err.load(Ordering::Relaxed) {
        std::process::exit(1);
    }
}
