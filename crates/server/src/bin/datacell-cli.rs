//! `datacell-cli` — interactive / scripted wire-protocol session.
//!
//! ```text
//! datacell-cli [--addr HOST:PORT] [--fail-on-err] [--binary]
//! ```
//!
//! Reads protocol lines from stdin and forwards them verbatim; prints
//! every server line to stdout. Blank lines and `#` comments are skipped,
//! so a scripted session can be a readable heredoc. On stdin EOF a `QUIT`
//! is sent automatically (unless the script already quit). With
//! `--fail-on-err` the exit status is 1 if the server ever answered
//! `ERR`.
//!
//! `--binary` negotiates `HELLO BINARY 1` after connecting and speaks
//! length-prefixed frames on the wire: stdin lines travel as TEXT
//! frames, and incoming CHUNK frames are printed in the same
//! `CHUNK <id> <n> <seq>` + CSV-rows form the text protocol uses — a
//! scripted session's expected output is identical in both modes.

use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use datacell_server::frame::{self, Frame, FrameBuf};
use datacell_server::protocol;
use datacell_server::session::{LineReader, ReadLine};

fn main() {
    let mut addr = "127.0.0.1:4321".to_string();
    let mut fail_on_err = false;
    let mut binary = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("--addr requires a value");
                    std::process::exit(2);
                }
            },
            "--fail-on-err" => fail_on_err = true,
            "--binary" => binary = true,
            other => {
                eprintln!("usage: datacell-cli [--addr HOST:PORT] [--fail-on-err] [--binary]");
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let stream = match TcpStream::connect(&addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            std::process::exit(1);
        }
    };
    stream.set_nodelay(true).ok();
    let saw_err = Arc::new(AtomicBool::new(false));

    // `--binary`: negotiate frames while the wire is still line-oriented,
    // before the printer thread attaches. Bytes the handshake reader
    // over-read are already frames and carry over into the frame buffer.
    let mut leftover: Vec<u8> = Vec::new();
    if binary {
        let hello = format!("HELLO BINARY {}\n", datacell_storage::binio::WIRE_VERSION);
        let reply = stream
            .try_clone()
            .map_err(|e| e.to_string())
            .and_then(|clone| {
                (&stream).write_all(hello.as_bytes()).map_err(|e| e.to_string())?;
                let mut reader = LineReader::new(clone);
                loop {
                    match reader.poll_line().map_err(|e| e.to_string())? {
                        ReadLine::Line(l) => {
                            leftover = reader.take_buffered();
                            return Ok(l);
                        }
                        ReadLine::Idle => {}
                        ReadLine::Overlong => return Err("overlong HELLO reply".into()),
                        ReadLine::Eof => return Err("connection closed during HELLO".into()),
                    }
                }
            });
        match reply {
            Ok(l) if l == format!("OK HELLO BINARY {}", datacell_storage::binio::WIRE_VERSION) => {}
            Ok(l) => {
                eprintln!("datacell-cli: binary negotiation refused: {l}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("datacell-cli: binary negotiation failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("datacell-cli: cannot clone socket: {e}");
            std::process::exit(1);
        }
    };

    // Reader thread: print every server line until the connection closes.
    // In binary mode frames are decoded and printed in the text protocol's
    // shape (CHUNK header + CSV rows), so scripted expectations hold in
    // both modes.
    let printer = {
        let saw_err = saw_err.clone();
        std::thread::spawn(move || {
            if binary {
                print_frames(reader_stream, leftover, &saw_err);
            } else {
                print_lines(reader_stream, &saw_err);
            }
            std::io::stdout().flush().ok();
        })
    };

    let mut writer = stream;
    let stdin = std::io::stdin();
    let mut sent_quit = false;
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let upper = trimmed.to_ascii_uppercase();
        if upper == "QUIT" || upper == "SHUTDOWN" {
            sent_quit = true;
        }
        let wire = if binary {
            frame::encode_text(&line)
        } else {
            format!("{line}\n").into_bytes()
        };
        if writer.write_all(&wire).is_err() {
            break;
        }
    }
    if !sent_quit {
        let quit =
            if binary { frame::encode_text("QUIT") } else { b"QUIT\n".to_vec() };
        let _ = writer.write_all(&quit);
    }
    // The server closes the connection after QUIT/SHUTDOWN; the printer
    // thread drains the remaining replies and exits on EOF.
    printer.join().ok();

    if fail_on_err && saw_err.load(Ordering::Relaxed) {
        std::process::exit(1);
    }
}

/// Text mode: one server line per stdout line.
fn print_lines(stream: TcpStream, saw_err: &AtomicBool) {
    let mut reader = LineReader::new(stream);
    loop {
        match reader.poll_line() {
            Ok(ReadLine::Line(l)) => {
                if l.starts_with("ERR ") {
                    saw_err.store(true, Ordering::Relaxed);
                }
                println!("{l}");
            }
            Ok(ReadLine::Overlong) => {
                saw_err.store(true, Ordering::Relaxed);
                eprintln!("datacell-cli: server line exceeded 1 MiB, skipped");
            }
            Ok(ReadLine::Idle) => {}
            Ok(ReadLine::Eof) | Err(_) => break,
        }
    }
}

/// Binary mode: decode frames, print TEXT payload lines verbatim and
/// CHUNK frames re-rendered in the text protocol's CSV shape.
fn print_frames(mut stream: TcpStream, leftover: Vec<u8>, saw_err: &AtomicBool) {
    let mut fbuf = FrameBuf::new();
    fbuf.push_bytes(&leftover);
    let mut buf = [0u8; 64 * 1024];
    loop {
        loop {
            match fbuf.next_frame() {
                Ok(Some((tag, payload))) => match frame::decode_frame(tag, &payload) {
                    Ok(Frame::Text(t)) => {
                        for l in t.lines() {
                            if l.starts_with("ERR ") {
                                saw_err.store(true, Ordering::Relaxed);
                            }
                            println!("{l}");
                        }
                    }
                    Ok(Frame::Chunk { query, seq, chunk }) => {
                        print!("{}", protocol::encode_chunk(query, seq, &chunk));
                    }
                    Ok(Frame::Push { .. }) => {
                        saw_err.store(true, Ordering::Relaxed);
                        eprintln!("datacell-cli: unexpected PUSH frame from server");
                        return;
                    }
                    Err(e) => {
                        saw_err.store(true, Ordering::Relaxed);
                        eprintln!("datacell-cli: bad frame from server: {}", e.0);
                        return;
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    // An untrusted length field cannot be resynced.
                    saw_err.store(true, Ordering::Relaxed);
                    eprintln!("datacell-cli: frame stream desynced: {}", e.0);
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => fbuf.push_bytes(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
}
