//! `datacell-server` — the DataCell daemon.
//!
//! ```text
//! datacell-server [--addr HOST:PORT] [--workers N] [--emitter-capacity N]
//!                 [--incremental] [--init FILE]
//!                 [--wal-dir DIR] [--fsync always|never|every=N]
//!                 [--memory-budget BYTES] [--shed-policy reject|drop-oldest|pause]
//! ```
//!
//! Prints `LISTENING <addr>` once the socket is bound (port 0 picks an
//! ephemeral port — scripts scrape the line to learn it), then serves
//! until a session issues `SHUTDOWN`.
//!
//! With `--wal-dir` the engine is durable: DDL, continuous queries,
//! ingested batches and per-fire positions are write-ahead logged; on
//! restart over the same directory the server recovers everything (the
//! `--init` script is then skipped) and subscriptions continue exactly.
//! A graceful `SHUTDOWN` checkpoints (catalog snapshot + fsync).
//!
//! `--memory-budget` caps the bytes pinned in baskets and result queues;
//! over budget, pushes are shed per `--shed-policy` (`reject` answers
//! `OVERLOADED <retry-after-ms>` on the wire). The `DATACELL_FAULT_PLAN`
//! environment variable arms the seeded fault-injection harness (e.g.
//! `seed=7;wal_fsync:p=0.01:eio`) — chaos drills against a real daemon.

use std::io::Write;
use std::time::Duration;

use datacell_core::{
    DataCellConfig, FaultPlan, Faults, MemoryBudget, ShedPolicy, SyncPolicy, WalConfig,
};
use datacell_server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: datacell-server [--addr HOST:PORT] [--workers N] \
         [--emitter-capacity N] [--incremental] [--init FILE] \
         [--wal-dir DIR] [--fsync always|never|every=N] \
         [--memory-budget BYTES] [--shed-policy reject|drop-oldest|pause]\n\
         env: DATACELL_FAULT_PLAN=<seeded fault plan> arms fault injection"
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig { addr: "127.0.0.1:4321".into(), ..Default::default() };
    let mut budget_bytes: Option<usize> = None;
    let mut shed_policy = ShedPolicy::Reject;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => {
                config.engine.workers =
                    value("--workers").parse().unwrap_or_else(|_| usage())
            }
            "--emitter-capacity" => {
                // 0 = unbounded (matches DataCellConfig's None).
                let n: usize = value("--emitter-capacity").parse().unwrap_or_else(|_| usage());
                config.engine.emitter_capacity = if n == 0 { None } else { Some(n) };
            }
            "--incremental" => {
                config.engine.default_mode = DataCellConfig::incremental().default_mode
            }
            "--wal-dir" => {
                let dir = value("--wal-dir");
                let sync = config.engine.wal.as_ref().map(|w| w.sync);
                let mut wal = WalConfig::at(dir);
                if let Some(sync) = sync {
                    wal.sync = sync; // --fsync may precede --wal-dir
                }
                config.engine.wal = Some(wal);
            }
            "--fsync" => {
                let policy: SyncPolicy = value("--fsync").parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                match &mut config.engine.wal {
                    Some(wal) => wal.sync = policy,
                    // Remember the policy until --wal-dir arrives.
                    None => {
                        config.engine.wal = Some(WalConfig {
                            sync: policy,
                            ..WalConfig::at(std::path::PathBuf::new())
                        })
                    }
                }
            }
            "--memory-budget" => {
                budget_bytes = Some(value("--memory-budget").parse().unwrap_or_else(|_| usage()))
            }
            "--shed-policy" => {
                shed_policy = match value("--shed-policy").as_str() {
                    "reject" => ShedPolicy::Reject,
                    "drop-oldest" => ShedPolicy::DropOldest,
                    "pause" => ShedPolicy::PauseReceptors,
                    other => {
                        eprintln!("unknown shed policy {other:?}");
                        usage()
                    }
                }
            }
            "--init" => {
                let path = value("--init");
                match std::fs::read_to_string(&path) {
                    Ok(script) => config.init_script = Some(script),
                    Err(e) => {
                        eprintln!("--init {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }

    if config.engine.wal.as_ref().is_some_and(|w| w.dir.as_os_str().is_empty()) {
        eprintln!("--fsync requires --wal-dir");
        usage();
    }
    if let Some(bytes) = budget_bytes {
        config.engine.memory_budget = Some(MemoryBudget::pinned_bytes(bytes, shed_policy));
    }
    if let Ok(spec) = std::env::var("DATACELL_FAULT_PLAN") {
        if !spec.is_empty() {
            match FaultPlan::parse(&spec) {
                Ok(plan) => {
                    eprintln!("datacell-server: fault injection armed: {spec}");
                    config.engine.faults = Faults::enabled(plan);
                }
                Err(e) => {
                    eprintln!("DATACELL_FAULT_PLAN: {e}");
                    std::process::exit(2);
                }
            }
        }
    }

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().ok();

    // Serve until some session issues SHUTDOWN.
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let stats = server.shutdown();
    println!(
        "shutdown: {} sessions, {} commands, {} rows in, {} chunks out",
        stats.sessions_opened, stats.commands, stats.rows_pushed, stats.chunks_delivered
    );
}
